#include "engine/catalog.h"

#include "common/string_util.h"

namespace jackpine::engine {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  const std::string key = ToLowerAscii(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(StrFormat("table '%s'", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Table* Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(ToLowerAscii(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLowerAscii(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  const std::string key = ToLowerAscii(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound(
        StrFormat("table '%s'", std::string(name).c_str()));
  }
  return Status::Ok();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace jackpine::engine
