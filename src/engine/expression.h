// Bound (name-resolved) expressions and their evaluator.
//
// The planner binds each AST expression once per query against the FROM
// tables: column references become (table, column) slots, function names
// resolve to registry entries, and constant subtrees are folded eagerly so
// that e.g. ST_GeomFromText('POLYGON(...)') literals are parsed exactly once
// per query, not once per row (DESIGN.md decision #3).

#ifndef JACKPINE_ENGINE_EXPRESSION_H_
#define JACKPINE_ENGINE_EXPRESSION_H_

#include <string>
#include <vector>

#include "engine/functions.h"
#include "engine/sql_ast.h"
#include "engine/table.h"

namespace jackpine::engine {

struct BindingSlot {
  size_t table_index = 0;
  size_t column_index = 0;
};

// Resolves column names against the FROM clause.
class Binder {
 public:
  Binder(std::vector<const Table*> tables, std::vector<std::string> aliases);

  Result<BindingSlot> ResolveColumn(std::string_view qualifier,
                                    std::string_view column) const;

  size_t NumTables() const { return tables_.size(); }
  const Table* table(size_t i) const { return tables_[i]; }
  const std::string& alias(size_t i) const { return aliases_[i]; }

 private:
  std::vector<const Table*> tables_;
  std::vector<std::string> aliases_;
};

class BoundExpr {
 public:
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,
    kCall,       // fn != nullptr: scalar; fn == nullptr: aggregate
    kBinary,
    kUnary,
    kStar,       // only inside COUNT(*)
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  BindingSlot slot;
  const FunctionDef* fn = nullptr;
  std::string call_name;  // canonical name for calls (incl. aggregates)
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  std::vector<BoundExpr> children;

  bool IsAggregate() const {
    return kind == Kind::kCall && fn == nullptr;
  }
  // True if the subtree references no columns (and no aggregates).
  bool IsConstant() const;
  // True if the subtree references any column of table `table_index`.
  bool ReferencesTable(size_t table_index) const;
  // True if any node in the subtree is an aggregate call.
  bool ContainsAggregate() const;
};

// One current row per FROM table.
struct RowView {
  const Row* rows[2] = {nullptr, nullptr};
};

// Binds and constant-folds `expr`. Aggregate calls are allowed only when
// `allow_aggregates` (select list / order by), never inside their own args.
Result<BoundExpr> BindExpr(const Expr& expr, const Binder& binder,
                           const EvalContext& ctx, bool allow_aggregates);

// Evaluates a bound expression against the current rows. Aggregate nodes are
// an error here (the executor computes them separately).
Result<Value> EvalBound(const BoundExpr& expr, const RowView& rows,
                        const EvalContext& ctx);

// A display name for an unaliased select item ("st_area", "count", ...).
std::string DisplayName(const Expr& expr);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_EXPRESSION_H_
