// Abstract syntax tree for the pinedb SQL dialect.
//
// Supported statements (enough for the full Jackpine workload):
//   SELECT <items> FROM t1 [alias] [, t2 [alias]] [WHERE expr]
//          [GROUP BY expr, ...] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//   EXPLAIN SELECT ...
//   CREATE TABLE name (col TYPE, ...)
//   INSERT INTO name VALUES (expr, ...) [, (...)]*
//   CREATE SPATIAL INDEX ON table (column)
//   DROP SPATIAL INDEX ON table (column)
// Aggregates (COUNT/SUM/AVG/MIN/MAX) are allowed with or without GROUP BY;
// with GROUP BY, non-aggregate outputs are evaluated on an arbitrary row of
// the group (the traditional MySQL behaviour), so group-key expressions are
// the only outputs that are deterministic across engines.

#ifndef JACKPINE_ENGINE_SQL_AST_H_
#define JACKPINE_ENGINE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "engine/value.h"

namespace jackpine::engine {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

struct Expr {
  enum class Kind : uint8_t {
    kLiteral,
    kColumnRef,
    kStar,  // the '*' inside COUNT(*)
    kFunctionCall,
    kBinary,
    kUnary,
  };

  Kind kind = Kind::kLiteral;

  Value literal;                 // kLiteral
  std::string table_qualifier;  // kColumnRef, may be empty
  std::string column;           // kColumnRef
  std::string function;         // kFunctionCall (original spelling)
  std::vector<ExprPtr> children;  // call args; binary: [lhs, rhs]; unary: [x]
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(std::string qualifier, std::string column);
  static ExprPtr MakeStar();
  static ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
};

struct SelectItem {
  bool star = false;  // bare '*' in the select list
  ExprPtr expr;       // when !star
  std::string alias;  // may be empty
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct ExplainStatement {
  SelectStatement select;
  // EXPLAIN ANALYZE: execute the select and annotate the plan with the
  // measured trace instead of describing the plan alone.
  bool analyze = false;
};

struct CreateTableStatement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> columns;  // name, type
};

struct InsertStatement {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;
};

struct CreateIndexStatement {
  std::string table;
  std::string column;
};

struct DropIndexStatement {
  std::string table;
  std::string column;
};

using Statement =
    std::variant<SelectStatement, ExplainStatement, CreateTableStatement,
                 InsertStatement, CreateIndexStatement, DropIndexStatement>;

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_SQL_AST_H_
