// In-memory heap table with optional per-geometry-column spatial indexes.

#ifndef JACKPINE_ENGINE_TABLE_H_
#define JACKPINE_ENGINE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "index/spatial_index.h"

namespace jackpine::engine {

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }

  // Appends a row after schema validation. Maintains any existing spatial
  // indexes incrementally.
  Status Append(Row row);

  // Replaces row `i` after schema validation. Spatial indexes on the table
  // are rebuilt (bulk) since the old envelope must leave the index; today
  // only WAL replay (storage/) reaches this, where indexes are rebuilt once
  // at the end anyway.
  Status UpdateRow(size_t i, Row row);

  // Removes row `i`. Row ids above `i` shift down, so every spatial index
  // on the table is rebuilt (bulk).
  Status DeleteRow(size_t i);

  // Builds (or rebuilds, bulk-loading) a spatial index on `column`; the
  // column must be GEOMETRY. `incremental` = true exercises one-at-a-time
  // insertion instead of bulk load (the E6 fill-policy ablation).
  Status BuildSpatialIndex(size_t column, index::IndexKind kind,
                           bool incremental = false);

  void DropSpatialIndex(size_t column);

  // The index on `column`, or nullptr.
  const index::SpatialIndex* GetSpatialIndex(size_t column) const;

  // Columns carrying a spatial index, ascending — what a checkpoint
  // snapshot persists so recovery can rebuild the same indexes.
  std::vector<size_t> IndexedColumns() const;

 private:
  // Bulk-rebuilds every index with its existing kind after an in-place row
  // mutation invalidated the positional row ids.
  Status RebuildIndexesAfterMutation();

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::map<size_t, std::unique_ptr<index::SpatialIndex>> indexes_;
};

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_TABLE_H_
