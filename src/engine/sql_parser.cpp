#include "engine/sql_parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "engine/sql_lexer.h"

namespace jackpine::engine {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumn(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

ExprPtr Expr::MakeCall(std::string function, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunctionCall;
  e->function = std::move(function);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (Peek().IsWord("SELECT")) {
      JACKPINE_ASSIGN_OR_RETURN(SelectStatement s, ParseSelect());
      JACKPINE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(s));
    }
    if (Peek().IsWord("EXPLAIN")) {
      Advance();
      bool analyze = false;
      if (Peek().IsWord("ANALYZE")) {
        Advance();
        analyze = true;
      }
      JACKPINE_ASSIGN_OR_RETURN(SelectStatement s, ParseSelect());
      JACKPINE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(ExplainStatement{std::move(s), analyze});
    }
    if (Peek().IsWord("CREATE")) {
      Advance();
      if (Peek().IsWord("TABLE")) {
        Advance();
        JACKPINE_ASSIGN_OR_RETURN(CreateTableStatement s, ParseCreateTable());
        JACKPINE_RETURN_IF_ERROR(ExpectEnd());
        return Statement(std::move(s));
      }
      if (Peek().IsWord("SPATIAL")) {
        Advance();
        JACKPINE_RETURN_IF_ERROR(ExpectWord("INDEX"));
        JACKPINE_RETURN_IF_ERROR(ExpectWord("ON"));
        JACKPINE_ASSIGN_OR_RETURN(CreateIndexStatement s, ParseIndexTarget());
        JACKPINE_RETURN_IF_ERROR(ExpectEnd());
        return Statement(std::move(s));
      }
      return Err("expected TABLE or SPATIAL INDEX after CREATE");
    }
    if (Peek().IsWord("DROP")) {
      Advance();
      JACKPINE_RETURN_IF_ERROR(ExpectWord("SPATIAL"));
      JACKPINE_RETURN_IF_ERROR(ExpectWord("INDEX"));
      JACKPINE_RETURN_IF_ERROR(ExpectWord("ON"));
      JACKPINE_ASSIGN_OR_RETURN(CreateIndexStatement s, ParseIndexTarget());
      JACKPINE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(DropIndexStatement{s.table, s.column});
    }
    if (Peek().IsWord("INSERT")) {
      Advance();
      JACKPINE_RETURN_IF_ERROR(ExpectWord("INTO"));
      JACKPINE_ASSIGN_OR_RETURN(InsertStatement s, ParseInsert());
      JACKPINE_RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(s));
    }
    return Err("expected SELECT, CREATE, DROP or INSERT");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("SQL at offset %zu (near '%s'): %s", Peek().offset,
                  Peek().text.c_str(), what.c_str()));
  }

  bool ConsumeWord(std::string_view word) {
    if (Peek().IsWord(word)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectWord(std::string_view word) {
    if (!ConsumeWord(word)) {
      return Err(StrFormat("expected %s", std::string(word).c_str()));
    }
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) {
      return Err(StrFormat("expected '%s'", std::string(sym).c_str()));
    }
    return Status::Ok();
  }
  Status ExpectEnd() {
    ConsumeSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err("expected identifier");
    }
    return Advance().text;
  }

  // --- Expressions (precedence climbing) ---------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    JACKPINE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsWord("OR")) {
      Advance();
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    JACKPINE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsWord("AND")) {
      Advance();
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsWord("NOT")) {
      Advance();
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    JACKPINE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
        {"!=", BinaryOp::kNe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (Peek().IsSymbol(m.sym)) {
        Advance();
        JACKPINE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::MakeBinary(m.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    JACKPINE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const BinaryOp op =
          Advance().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    JACKPINE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") ||
           Peek().IsSymbol("%")) {
      const std::string sym = Advance().text;
      const BinaryOp op = sym == "*"   ? BinaryOp::kMul
                          : sym == "/" ? BinaryOp::kDiv
                                       : BinaryOp::kMod;
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNeg, std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      Advance();
      if (tok.text.find_first_of(".eE") == std::string::npos) {
        return Expr::MakeLiteral(
            Value::Int(std::strtoll(tok.text.c_str(), nullptr, 10)));
      }
      return Expr::MakeLiteral(
          Value::Real(std::strtod(tok.text.c_str(), nullptr)));
    }
    if (tok.kind == TokenKind::kString) {
      Advance();
      return Expr::MakeLiteral(Value::Str(tok.text));
    }
    if (tok.IsSymbol("(")) {
      Advance();
      JACKPINE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      JACKPINE_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (tok.kind == TokenKind::kIdentifier) {
      if (tok.IsWord("TRUE")) {
        Advance();
        return Expr::MakeLiteral(Value::Bool(true));
      }
      if (tok.IsWord("FALSE")) {
        Advance();
        return Expr::MakeLiteral(Value::Bool(false));
      }
      if (tok.IsWord("NULL")) {
        Advance();
        return Expr::MakeLiteral(Value::MakeNull());
      }
      const std::string name = Advance().text;
      if (Peek().IsSymbol("(")) {
        Advance();
        std::vector<ExprPtr> args;
        if (Peek().IsSymbol("*")) {
          Advance();
          args.push_back(Expr::MakeStar());
        } else if (!Peek().IsSymbol(")")) {
          do {
            JACKPINE_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (ConsumeSymbol(","));
        }
        JACKPINE_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::MakeCall(name, std::move(args));
      }
      if (Peek().IsSymbol(".")) {
        Advance();
        JACKPINE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        return Expr::MakeColumn(name, std::move(col));
      }
      return Expr::MakeColumn("", name);
    }
    return Err("expected expression");
  }

  // --- Statements ----------------------------------------------------------

  Result<SelectStatement> ParseSelect() {
    JACKPINE_RETURN_IF_ERROR(ExpectWord("SELECT"));
    SelectStatement stmt;
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.star = true;
      } else {
        JACKPINE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeWord("AS")) {
          JACKPINE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   !Peek().IsWord("FROM")) {
          item.alias = Advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
    } while (ConsumeSymbol(","));

    JACKPINE_RETURN_IF_ERROR(ExpectWord("FROM"));
    do {
      TableRef ref;
      JACKPINE_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
      ref.alias = ref.table;
      if (ConsumeWord("AS")) {
        JACKPINE_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !Peek().IsWord("WHERE") && !Peek().IsWord("GROUP") &&
                 !Peek().IsWord("ORDER") && !Peek().IsWord("LIMIT")) {
        ref.alias = Advance().text;
      }
      stmt.from.push_back(std::move(ref));
    } while (ConsumeSymbol(","));

    if (ConsumeWord("WHERE")) {
      JACKPINE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeWord("GROUP")) {
      JACKPINE_RETURN_IF_ERROR(ExpectWord("BY"));
      do {
        JACKPINE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeWord("ORDER")) {
      JACKPINE_RETURN_IF_ERROR(ExpectWord("BY"));
      do {
        OrderItem item;
        JACKPINE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeWord("DESC")) {
          item.ascending = false;
        } else {
          ConsumeWord("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeWord("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) return Err("expected LIMIT count");
      stmt.limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  Result<CreateTableStatement> ParseCreateTable() {
    CreateTableStatement stmt;
    JACKPINE_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    JACKPINE_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      JACKPINE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      JACKPINE_ASSIGN_OR_RETURN(std::string type, ExpectIdentifier());
      stmt.columns.emplace_back(std::move(col), std::move(type));
    } while (ConsumeSymbol(","));
    JACKPINE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<InsertStatement> ParseInsert() {
    InsertStatement stmt;
    JACKPINE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    JACKPINE_RETURN_IF_ERROR(ExpectWord("VALUES"));
    do {
      JACKPINE_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        JACKPINE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (ConsumeSymbol(","));
      JACKPINE_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (ConsumeSymbol(","));
    return stmt;
  }

  Result<CreateIndexStatement> ParseIndexTarget() {
    CreateIndexStatement stmt;
    JACKPINE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    JACKPINE_RETURN_IF_ERROR(ExpectSymbol("("));
    JACKPINE_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    JACKPINE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  JACKPINE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseStatement();
}

}  // namespace jackpine::engine
