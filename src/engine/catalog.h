// The table catalog of a pinedb database.

#ifndef JACKPINE_ENGINE_CATALOG_H_
#define JACKPINE_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/table.h"

namespace jackpine::engine {

class Catalog {
 public:
  // Fails with AlreadyExists on a duplicate name (case-insensitive).
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  // nullptr when absent.
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;

 private:
  // Keyed by lower-cased name.
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_CATALOG_H_
