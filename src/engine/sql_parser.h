// Recursive-descent parser for the pinedb SQL dialect; see sql_ast.h for the
// supported grammar.

#ifndef JACKPINE_ENGINE_SQL_PARSER_H_
#define JACKPINE_ENGINE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "engine/sql_ast.h"

namespace jackpine::engine {

// Parses exactly one statement (a trailing ';' is allowed).
Result<Statement> ParseSql(std::string_view sql);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_SQL_PARSER_H_
