// Token-stream SQL normalization: the one canonical spelling of a statement
// that both the result cache (cache/cache_key.h) and the fingerprint
// statistics plane (obs/statements.h) key on.
//
// Two spellings of the same statement must map to one fingerprint, so the
// canonical form is built from the token stream, not the raw text:
// whitespace collapses to single spaces, `--` and `/* */` comments vanish,
// identifiers and keywords fold to lower case (safe because catalog and
// function lookup are both case-insensitive — see engine/catalog.cpp), and
// string/numeric literals are preserved verbatim (`'Main St'` and
// `'main st'` are different predicates; we deliberately do not canonicalise
// `1.0` vs `1.00` — a spurious distinction costs one redundant cache entry,
// never a wrong answer).
//
// NormalizeSqlText works for *any* statement that tokenizes (SELECT, DML,
// DDL, EXPLAIN — the stats plane fingerprints them all); the cache layers a
// stricter parse-based cacheability check on top. Statements that do not
// even tokenize still need a fingerprint — an error storm from one malformed
// client is exactly what pg_stat_statements-style accounting must surface —
// so SqlFingerprint falls back to a whitespace-trimmed form of the raw text.

#ifndef JACKPINE_ENGINE_SQL_NORMALIZE_H_
#define JACKPINE_ENGINE_SQL_NORMALIZE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace jackpine::engine {

// Canonical single-line form of the statement: tokens joined by single
// spaces, identifiers lower-cased, literals verbatim (string literals
// re-quoted with '' escapes so the canonical text is itself valid SQL).
// nullopt when the input does not tokenize.
std::optional<std::string> NormalizeSqlText(std::string_view sql);

// The statement fingerprint: NormalizeSqlText when the input tokenizes,
// otherwise the raw text with leading/trailing ASCII whitespace stripped and
// interior whitespace runs collapsed — never empty for non-blank input, so
// every query (including garbage that errors) lands in exactly one
// statistics bucket.
std::string SqlFingerprint(std::string_view sql);

// Stable 64-bit FNV-1a over the fingerprint text, for compact ids in logs
// and flight-recorder entries.
uint64_t FingerprintHash(std::string_view fingerprint);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_SQL_NORMALIZE_H_
