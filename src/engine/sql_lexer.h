// SQL tokenizer for pinedb's SELECT/CREATE/INSERT dialect.

#ifndef JACKPINE_ENGINE_SQL_LEXER_H_
#define JACKPINE_ENGINE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace jackpine::engine {

enum class TokenKind : uint8_t {
  kIdentifier,  // unquoted word (keywords included; parser decides)
  kNumber,      // integer or decimal literal (text preserved)
  kString,      // single-quoted string, quotes stripped, '' unescaped
  kSymbol,      // punctuation / operator, in `text`
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  // Case-insensitive keyword/identifier check.
  bool IsWord(std::string_view word) const;
};

// Tokenizes `sql`; the returned vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_SQL_LEXER_H_
