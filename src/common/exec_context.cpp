#include "common/exec_context.h"

#include "common/string_util.h"

namespace jackpine {

ExecContext::ExecContext(const ExecLimits& limits)
    : unlimited_(limits.Unlimited()),
      max_rows_(limits.max_rows),
      max_result_bytes_(limits.max_result_bytes),
      cancel_(limits.cancel),
      trace_(limits.trace) {
  if (limits.deadline_s > 0.0) {
    has_deadline_ = true;
    deadline_s_ = limits.deadline_s;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(limits.deadline_s));
  }
}

Status ExecContext::Fail(Status status) {
  failed_ = true;
  failure_ = status;
  return status;
}

Status ExecContext::Check() {
  if (unlimited_) return Status::Ok();
  if (failed_) return failure_;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return Fail(Status::Cancelled("query cancelled"));
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Fail(Status::DeadlineExceeded(
        StrFormat("query exceeded %.3fs deadline", deadline_s_)));
  }
  return Status::Ok();
}

Status ExecContext::ChargeRows(uint64_t n) {
  if (unlimited_) return Status::Ok();
  if (failed_) return failure_;
  rows_charged_ += n;
  if (max_rows_ > 0 && rows_charged_ > max_rows_) {
    return Fail(Status::ResourceExhausted(
        StrFormat("query materialised more than %llu rows",
                  static_cast<unsigned long long>(max_rows_))));
  }
  return Status::Ok();
}

Status ExecContext::ChargeBytes(uint64_t n) {
  if (unlimited_) return Status::Ok();
  if (failed_) return failure_;
  bytes_charged_ += n;
  if (max_result_bytes_ > 0 && bytes_charged_ > max_result_bytes_) {
    return Fail(Status::ResourceExhausted(
        StrFormat("query result exceeded %llu byte budget",
                  static_cast<unsigned long long>(max_result_bytes_))));
  }
  return Status::Ok();
}

}  // namespace jackpine
