// Deterministic pseudo-random number generation.
//
// All synthetic data in jackpine (the TIGER-like generator, property-test
// fixtures, workload sampling) is derived from Rng so that a (seed, scale)
// pair fully determines a dataset, making benchmark runs reproducible across
// machines and runs.

#ifndef JACKPINE_COMMON_RANDOM_H_
#define JACKPINE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jackpine {

// xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
// std::mt19937 — guaranteed to produce identical streams on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box–Muller.
  double NextGaussian();

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p = 0.5);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative and not all zero.
  size_t NextWeighted(const std::vector<double>& weights);

  // Forks an independent stream; the child stream is a pure function of this
  // generator's state, so forking is itself deterministic.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace jackpine

#endif  // JACKPINE_COMMON_RANDOM_H_
