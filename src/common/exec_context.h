// Per-query execution context: deadline, cooperative cancellation, and
// row/memory budgets (DESIGN.md "Fault model").
//
// One ExecContext is created per query execution and threaded from the
// runner's RunConfig through client::Statement into the engine, where the
// executor's row loops call CheckTick() at row granularity. A query that
// overruns returns kDeadlineExceeded / kCancelled / kResourceExhausted
// instead of running unbounded, so a single hung query (an unindexed spatial
// cross join, say) cannot take the whole suite down.
//
// The context is NOT thread-safe for concurrent charging: each executing
// query owns its own ExecContext. The cancellation flag is the one shared
// piece — it is an atomic owned outside the context so that another thread
// (a watchdog, a Ctrl-C handler) can flip it while the query runs.

#ifndef JACKPINE_COMMON_EXEC_CONTEXT_H_
#define JACKPINE_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace jackpine::obs {
struct QueryTrace;
class SpanRecorder;
}  // namespace jackpine::obs

namespace jackpine {

// The immutable knobs an ExecContext is built from; lives in RunConfig and
// client::Statement so every execution gets a fresh context with the same
// limits. Zero means "unlimited" for every field.
struct ExecLimits {
  double deadline_s = 0.0;       // wall-clock budget per execution
  uint64_t max_rows = 0;         // materialised (matched) row budget
  uint64_t max_result_bytes = 0; // approximate result memory budget
  // Shared cooperative cancellation flag; may be null. Setting it to true
  // aborts every execution holding a context built from these limits.
  std::shared_ptr<std::atomic<bool>> cancel;
  // Optional stage/pipeline trace sink (obs/trace.h); not a limit, so it
  // does not affect Unlimited(). The pointee must outlive the execution.
  obs::QueryTrace* trace = nullptr;
  // Optional span sink plus propagated trace context (obs/span.h): when
  // `spans` is set and trace_id is nonzero, the driver layers record
  // send/recv/attempt/engine-stage spans under parent_span_id, all sharing
  // trace_id. Like `trace`, not limits — Unlimited() ignores them. The
  // recorder must outlive the execution.
  obs::SpanRecorder* spans = nullptr;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  bool Unlimited() const {
    return deadline_s <= 0.0 && max_rows == 0 && max_result_bytes == 0 &&
           cancel == nullptr;
  }
};

class ExecContext {
 public:
  // An unlimited context: every check passes and nothing is charged.
  ExecContext() = default;

  // Starts the deadline clock now.
  explicit ExecContext(const ExecLimits& limits);

  // Full check: cancellation flag first (cheapest, and the most urgent
  // signal), then the deadline. Budgets are checked by the Charge* calls.
  Status Check();

  // Counter-gated Check(): samples the clock only every kCheckInterval
  // calls, so per-row checking in tight scan loops costs an increment and a
  // branch, not a clock_gettime. A cancelled/expired context keeps failing
  // on every subsequent call (the state latches).
  Status CheckTick() {
    if (unlimited_) return Status::Ok();
    if (++tick_ % kCheckInterval != 0 && !failed_) return Status::Ok();
    return Check();
  }

  // Charges `n` materialised rows against the row budget.
  Status ChargeRows(uint64_t n);

  // Charges approximate bytes against the memory budget.
  Status ChargeBytes(uint64_t n);

  uint64_t rows_charged() const { return rows_charged_; }
  uint64_t bytes_charged() const { return bytes_charged_; }

  // The trace sink carried in from ExecLimits (null when tracing is off).
  obs::QueryTrace* trace() const { return trace_; }
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

  // How many clock samples CheckTick() skips between real deadline checks.
  // 256 keeps the overhead invisible next to predicate evaluation while
  // bounding deadline overshoot to 256 row evaluations.
  static constexpr uint64_t kCheckInterval = 256;

 private:
  Status Fail(Status status);

  bool unlimited_ = true;
  bool failed_ = false;
  Status failure_;  // latched first failure, re-returned on every check
  uint64_t tick_ = 0;
  uint64_t rows_charged_ = 0;
  uint64_t bytes_charged_ = 0;
  uint64_t max_rows_ = 0;
  uint64_t max_result_bytes_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  double deadline_s_ = 0.0;
  std::shared_ptr<std::atomic<bool>> cancel_;
  obs::QueryTrace* trace_ = nullptr;
};

}  // namespace jackpine

#endif  // JACKPINE_COMMON_EXEC_CONTEXT_H_
