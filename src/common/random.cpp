#include "common/random.h"

#include <cassert>
#include <cmath>

namespace jackpine {
namespace {

// splitmix64, used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace jackpine
