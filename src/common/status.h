// Lightweight error-handling primitives used throughout jackpine.
//
// The project does not use exceptions (per the style guide): fallible
// operations return Status, and fallible value-producing operations return
// Result<T>. Both are cheap to move and carry a human-readable message.

#ifndef JACKPINE_COMMON_STATUS_H_
#define JACKPINE_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace jackpine {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  // Fault-tolerant execution (see DESIGN.md "Fault model"): a query ran past
  // its deadline, was cancelled cooperatively, blew a row/memory budget, or
  // hit a transient infrastructure failure (the only retryable code).
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
  // Durable storage (see DESIGN.md "Durability"): recovery found the on-disk
  // state unrecoverable (mid-log corruption, an unreadable snapshot), or the
  // storage layer latched fail-stop after a write/fsync failure. Never
  // retryable — silent partial recovery is the one outcome this code exists
  // to prevent.
  kDataLoss,
};

// True for errors that a retry with backoff can plausibly fix (kUnavailable).
// Deadline/budget violations are deterministic for a given query and config,
// so retrying them only wastes the remaining suite time.
bool IsTransient(StatusCode code);

class Status;

// Overload taxonomy (DESIGN.md "Fault model", overload semantics). Both
// shapes carry a retry-after hint, which is what distinguishes them from
// their plain counterparts:
//  - a *shed* is kResourceExhausted + retry_after_ms: a server's admission
//    control refused the work but explicitly invites a later retry;
//  - a *breaker fast-fail* is kUnavailable + retry_after_ms: the client's
//    own circuit breaker refused to touch the transport at all.
bool IsShed(const Status& status);
bool IsBreakerFastFail(const Status& status);

// What the retry loop may retry: transient transport failures and explicit
// sheds. Everything else is deterministic for the given query and config.
bool IsRetryable(const Status& status);

// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error outcome. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Retry pacing hint: "do not retry sooner than this many milliseconds".
  // Zero means no hint. Attached by load-shedding servers (the wire Error
  // frame carries it) and by client-side circuit breakers; honoured by the
  // runner's retry backoff so shed clients spread out instead of stampeding.
  uint32_t retry_after_ms() const { return retry_after_ms_; }
  Status& set_retry_after_ms(uint32_t ms) {
    retry_after_ms_ = ms;
    return *this;
  }

  // "OK" or "<CodeName>: <message>", plus the retry hint when one is set.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  uint32_t retry_after_ms_ = 0;
};

// A value or an error. Access to value() requires ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  // Returns the contained value or `fallback` on error. The rvalue overload
  // moves out of the Result, so `std::move(r).value_or(x)` does not copy a
  // large contained value (geometry blobs, whole result sets).
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? *std::move(value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace jackpine

// Propagates a non-OK Status from an expression that yields Status.
#define JACKPINE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::jackpine::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (false)

// Evaluates a Result-yielding expression, propagating errors, else binding
// the value to `lhs`.
#define JACKPINE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto JACKPINE_CONCAT_(_res_, __LINE__) = (expr);          \
  if (!JACKPINE_CONCAT_(_res_, __LINE__).ok())              \
    return JACKPINE_CONCAT_(_res_, __LINE__).status();      \
  lhs = std::move(JACKPINE_CONCAT_(_res_, __LINE__)).value()

#define JACKPINE_CONCAT_INNER_(a, b) a##b
#define JACKPINE_CONCAT_(a, b) JACKPINE_CONCAT_INNER_(a, b)

#endif  // JACKPINE_COMMON_STATUS_H_
