// Small string helpers shared by the SQL front end and the report writer.

#ifndef JACKPINE_COMMON_STRING_UTIL_H_
#define JACKPINE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace jackpine {

// ASCII-only case conversions (SQL identifiers are ASCII).
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Strips leading and trailing whitespace.
std::string_view StripAscii(std::string_view s);

// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace jackpine

#endif  // JACKPINE_COMMON_STRING_UTIL_H_
