// Wall-clock timing used by the benchmark harness.

#ifndef JACKPINE_COMMON_STOPWATCH_H_
#define JACKPINE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace jackpine {

// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction / last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedNanos() const;
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jackpine

#endif  // JACKPINE_COMMON_STOPWATCH_H_
