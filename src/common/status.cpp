#include "common/status.h"

namespace jackpine {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

bool IsShed(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.retry_after_ms() > 0;
}

bool IsBreakerFastFail(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.retry_after_ms() > 0;
}

bool IsRetryable(const Status& status) {
  return IsTransient(status.code()) || IsShed(status);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  if (retry_after_ms_ > 0) {
    out += " [retry after ";
    out += std::to_string(retry_after_ms_);
    out += "ms]";
  }
  return out;
}

}  // namespace jackpine
