// The no-index baseline (pine-scan): every query scans all entries.

#ifndef JACKPINE_INDEX_LINEAR_SCAN_H_
#define JACKPINE_INDEX_LINEAR_SCAN_H_

#include <vector>

#include "index/spatial_index.h"

namespace jackpine::index {

class LinearScanIndex final : public SpatialIndex {
 public:
  void Insert(const geom::Envelope& box, int64_t id) override {
    entries_.push_back(IndexEntry{box, id});
  }
  void BulkLoad(std::vector<IndexEntry> entries) override {
    entries_ = std::move(entries);
  }
  void Query(const geom::Envelope& window, std::vector<int64_t>* out,
             ProbeStats* probe = nullptr) const override;
  void Nearest(const geom::Coord& p, size_t k,
               std::vector<int64_t>* out) const override;
  size_t size() const override { return entries_.size(); }
  std::string Name() const override { return "scan"; }
  IndexKind kind() const override { return IndexKind::kNone; }

 private:
  std::vector<IndexEntry> entries_;
};

}  // namespace jackpine::index

#endif  // JACKPINE_INDEX_LINEAR_SCAN_H_
