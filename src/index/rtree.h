// R-tree with quadratic-split insertion and Sort-Tile-Recursive bulk load.

#ifndef JACKPINE_INDEX_RTREE_H_
#define JACKPINE_INDEX_RTREE_H_

#include <memory>
#include <vector>

#include "index/spatial_index.h"

namespace jackpine::index {

class RTree final : public SpatialIndex {
 public:
  // Node capacities follow Guttman's defaults scaled for cache lines.
  explicit RTree(size_t max_entries = 16);
  ~RTree() override;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void Insert(const geom::Envelope& box, int64_t id) override;
  void BulkLoad(std::vector<IndexEntry> entries) override;
  void Query(const geom::Envelope& window, std::vector<int64_t>* out,
             ProbeStats* probe = nullptr) const override;
  void Nearest(const geom::Coord& p, size_t k,
               std::vector<int64_t>* out) const override;
  size_t size() const override { return size_; }
  std::string Name() const override { return "rtree"; }
  IndexKind kind() const override { return IndexKind::kRtree; }

  // Structural statistics for the index-structure benchmarks (E8).
  int Height() const;
  size_t NodeCount() const;

 private:
  struct Node;

  Node* ChooseLeaf(Node* node, const geom::Envelope& box) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  Node* BuildStr(std::vector<IndexEntry>* entries, int* height);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
};

}  // namespace jackpine::index

#endif  // JACKPINE_INDEX_RTREE_H_
