#include "index/linear_scan.h"

#include <algorithm>

#include "index/grid_index.h"
#include "index/rtree.h"

namespace jackpine::index {

void LinearScanIndex::Query(const geom::Envelope& window,
                            std::vector<int64_t>* out,
                            ProbeStats* probe) const {
  if (probe != nullptr) probe->nodes_visited += entries_.size();
  for (const IndexEntry& e : entries_) {
    if (e.box.Intersects(window)) out->push_back(e.id);
  }
}

void LinearScanIndex::Nearest(const geom::Coord& p, size_t k,
                              std::vector<int64_t>* out) const {
  if (k == 0) return;
  std::vector<std::pair<double, int64_t>> best;
  best.reserve(entries_.size());
  for (const IndexEntry& e : entries_) {
    best.emplace_back(e.box.DistanceTo(p), e.id);
  }
  const size_t take = std::min(best.size(), k);
  std::partial_sort(best.begin(), best.begin() + static_cast<ptrdiff_t>(take),
                    best.end());
  for (size_t i = 0; i < take; ++i) out->push_back(best[i].second);
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kNone:
      return "none";
    case IndexKind::kRtree:
      return "rtree";
    case IndexKind::kGrid:
      return "grid";
  }
  return "unknown";
}

std::unique_ptr<SpatialIndex> MakeSpatialIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kNone:
      return std::make_unique<LinearScanIndex>();
    case IndexKind::kRtree:
      return std::make_unique<RTree>();
    case IndexKind::kGrid:
      return std::make_unique<GridIndex>();
  }
  return std::make_unique<LinearScanIndex>();
}

}  // namespace jackpine::index
