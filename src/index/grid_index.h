// Uniform grid spatial index (the pine-grid SUT's structure).
//
// The extent is fixed at the first BulkLoad (or grows lazily under Insert by
// rebuilding). Each entry is registered in every cell its MBR overlaps, so
// query results are deduplicated with a stamp array.

#ifndef JACKPINE_INDEX_GRID_INDEX_H_
#define JACKPINE_INDEX_GRID_INDEX_H_

#include <vector>

#include "index/spatial_index.h"

namespace jackpine::index {

class GridIndex final : public SpatialIndex {
 public:
  // `target_per_cell` controls the resolution chosen at bulk load.
  explicit GridIndex(double target_per_cell = 4.0);

  void Insert(const geom::Envelope& box, int64_t id) override;
  void BulkLoad(std::vector<IndexEntry> entries) override;
  void Query(const geom::Envelope& window, std::vector<int64_t>* out,
             ProbeStats* probe = nullptr) const override;
  void Nearest(const geom::Coord& p, size_t k,
               std::vector<int64_t>* out) const override;
  size_t size() const override { return entries_.size(); }
  std::string Name() const override { return "grid"; }
  IndexKind kind() const override { return IndexKind::kGrid; }

  size_t CellsX() const { return nx_; }
  size_t CellsY() const { return ny_; }

 private:
  void Rebuild();
  void Register(size_t entry_index);
  void CellRange(const geom::Envelope& box, size_t* x0, size_t* y0, size_t* x1,
                 size_t* y1) const;

  double target_per_cell_;
  geom::Envelope extent_;
  size_t nx_ = 0;
  size_t ny_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  std::vector<IndexEntry> entries_;
  std::vector<std::vector<uint32_t>> cells_;  // indexes into entries_
  mutable std::vector<uint32_t> stamp_;
  mutable uint32_t stamp_gen_ = 0;
};

}  // namespace jackpine::index

#endif  // JACKPINE_INDEX_GRID_INDEX_H_
