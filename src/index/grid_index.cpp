#include "index/grid_index.h"

#include <algorithm>
#include <cmath>

namespace jackpine::index {

using geom::Coord;
using geom::Envelope;

GridIndex::GridIndex(double target_per_cell)
    : target_per_cell_(std::max(0.5, target_per_cell)) {}

void GridIndex::CellRange(const Envelope& box, size_t* x0, size_t* y0,
                          size_t* x1, size_t* y1) const {
  auto clampx = [this](double v) {
    const double c = std::floor((v - extent_.min_x()) / cell_w_);
    return static_cast<size_t>(
        std::clamp(c, 0.0, static_cast<double>(nx_ - 1)));
  };
  auto clampy = [this](double v) {
    const double c = std::floor((v - extent_.min_y()) / cell_h_);
    return static_cast<size_t>(
        std::clamp(c, 0.0, static_cast<double>(ny_ - 1)));
  };
  *x0 = clampx(box.min_x());
  *x1 = clampx(box.max_x());
  *y0 = clampy(box.min_y());
  *y1 = clampy(box.max_y());
}

void GridIndex::Register(size_t entry_index) {
  size_t x0, y0, x1, y1;
  CellRange(entries_[entry_index].box, &x0, &y0, &x1, &y1);
  for (size_t y = y0; y <= y1; ++y) {
    for (size_t x = x0; x <= x1; ++x) {
      cells_[y * nx_ + x].push_back(static_cast<uint32_t>(entry_index));
    }
  }
}

void GridIndex::Rebuild() {
  extent_ = Envelope();
  for (const IndexEntry& e : entries_) extent_.ExpandToInclude(e.box);
  if (extent_.IsNull()) {
    nx_ = ny_ = 0;
    cells_.clear();
    return;
  }
  const double n_cells =
      std::max(1.0, static_cast<double>(entries_.size()) / target_per_cell_);
  const double aspect =
      extent_.Height() > 0 ? extent_.Width() / extent_.Height() : 1.0;
  nx_ = static_cast<size_t>(
      std::max(1.0, std::round(std::sqrt(n_cells * std::max(aspect, 1e-6)))));
  ny_ = static_cast<size_t>(std::max<double>(
      1.0, std::ceil(n_cells / static_cast<double>(nx_))));
  cell_w_ = std::max(extent_.Width() / static_cast<double>(nx_), 1e-12);
  cell_h_ = std::max(extent_.Height() / static_cast<double>(ny_), 1e-12);
  cells_.assign(nx_ * ny_, {});
  stamp_.assign(entries_.size(), 0);
  stamp_gen_ = 0;
  for (size_t i = 0; i < entries_.size(); ++i) Register(i);
}

void GridIndex::Insert(const Envelope& box, int64_t id) {
  entries_.push_back(IndexEntry{box, id});
  stamp_.push_back(0);
  if (cells_.empty() || !extent_.Contains(box) ||
      entries_.size() >
          static_cast<size_t>(target_per_cell_ * static_cast<double>(
                                                      cells_.size()) *
                              4.0)) {
    Rebuild();
  } else {
    Register(entries_.size() - 1);
  }
}

void GridIndex::BulkLoad(std::vector<IndexEntry> entries) {
  entries_ = std::move(entries);
  Rebuild();
}

void GridIndex::Query(const Envelope& window, std::vector<int64_t>* out,
                      ProbeStats* probe) const {
  if (cells_.empty()) return;
  if (!window.Intersects(extent_)) return;
  size_t x0, y0, x1, y1;
  CellRange(window, &x0, &y0, &x1, &y1);
  ++stamp_gen_;
  if (probe != nullptr) {
    probe->nodes_visited += static_cast<uint64_t>(x1 - x0 + 1) * (y1 - y0 + 1);
  }
  for (size_t y = y0; y <= y1; ++y) {
    for (size_t x = x0; x <= x1; ++x) {
      for (uint32_t idx : cells_[y * nx_ + x]) {
        if (stamp_[idx] == stamp_gen_) continue;
        stamp_[idx] = stamp_gen_;
        if (entries_[idx].box.Intersects(window)) {
          out->push_back(entries_[idx].id);
        }
      }
    }
  }
}

void GridIndex::Nearest(const Coord& p, size_t k,
                        std::vector<int64_t>* out) const {
  if (k == 0 || entries_.empty()) return;
  // A uniform grid has no hierarchical distance bound, so k-NN degrades to a
  // scan over the stored MBRs. This is deliberately faithful to the
  // structure: the R-tree's best-first search is what makes pine-rtree win
  // the reverse-geocoding scenario (see EXPERIMENTS.md).
  std::vector<std::pair<double, int64_t>> best;
  best.reserve(entries_.size());
  for (const IndexEntry& e : entries_) {
    best.emplace_back(e.box.DistanceTo(p), e.id);
  }
  const size_t take = std::min(best.size(), k);
  std::partial_sort(best.begin(), best.begin() + static_cast<ptrdiff_t>(take),
                    best.end());
  for (size_t i = 0; i < take; ++i) out->push_back(best[i].second);
}

}  // namespace jackpine::index
