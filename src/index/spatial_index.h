// The spatial index abstraction that differentiates the systems under test:
// pine-rtree (R-tree), pine-grid (uniform grid), pine-scan (none).
//
// Indexes store (MBR, row id) pairs and answer window (range) queries and
// k-nearest-neighbour queries over the MBRs. Exact geometry refinement is
// the query executor's job, per the filter-and-refine design decision in
// DESIGN.md.

#ifndef JACKPINE_INDEX_SPATIAL_INDEX_H_
#define JACKPINE_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geom/envelope.h"

namespace jackpine::index {

struct IndexEntry {
  geom::Envelope box;
  int64_t id = 0;
};

// The kinds the engine can be configured with.
enum class IndexKind : uint8_t { kNone, kRtree, kGrid };

// Per-probe instrumentation (obs tracing). "Nodes" is the structure's own
// unit of traversal work: R-tree nodes popped, grid cells inspected, or
// entries scanned for the linear fallback — the comparable cost axis across
// the systems under test.
struct ProbeStats {
  uint64_t nodes_visited = 0;
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  // Inserts one entry.
  virtual void Insert(const geom::Envelope& box, int64_t id) = 0;

  // Replaces the index contents with `entries`, using the structure's bulk
  // loading strategy where it has one.
  virtual void BulkLoad(std::vector<IndexEntry> entries) = 0;

  // Appends the ids of all entries whose box intersects `window`.
  // Order is unspecified. When `probe` is non-null the implementation
  // accumulates (never resets) its traversal counters there.
  virtual void Query(const geom::Envelope& window, std::vector<int64_t>* out,
                     ProbeStats* probe = nullptr) const = 0;

  // Appends up to `k` entry ids in ascending order of MBR distance to `p`.
  virtual void Nearest(const geom::Coord& p, size_t k,
                       std::vector<int64_t>* out) const = 0;

  virtual size_t size() const = 0;

  // Diagnostic name ("rtree", "grid", "scan").
  virtual std::string Name() const = 0;

  // The configuration kind that builds this structure — what a rebuild
  // after in-place row mutation or a recovery must recreate.
  virtual IndexKind kind() const = 0;
};

const char* IndexKindName(IndexKind kind);

// Factory. For kGrid the index sizes its cells from the first BulkLoad (or
// grows lazily under Insert).
std::unique_ptr<SpatialIndex> MakeSpatialIndex(IndexKind kind);

}  // namespace jackpine::index

#endif  // JACKPINE_INDEX_SPATIAL_INDEX_H_
