#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace jackpine::index {

using geom::Coord;
using geom::Envelope;

struct RTree::Node {
  Envelope box;
  Node* parent = nullptr;
  bool leaf = true;
  // Leaf payload.
  std::vector<IndexEntry> entries;
  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  size_t Count() const { return leaf ? entries.size() : children.size(); }

  void Recompute() {
    box = Envelope();
    if (leaf) {
      for (const IndexEntry& e : entries) box.ExpandToInclude(e.box);
    } else {
      for (const auto& c : children) box.ExpandToInclude(c->box);
    }
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries / 3)) {}

RTree::~RTree() = default;

RTree::Node* RTree::ChooseLeaf(Node* node, const Envelope& box) const {
  while (!node->leaf) {
    Node* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (const auto& child : node->children) {
      const double enlargement = child->box.EnlargementToInclude(box);
      const double area = child->box.Area();
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

namespace {

// Picks the pair of boxes wasting the most area together (quadratic seeds).
template <typename GetBox>
std::pair<size_t, size_t> PickSeeds(size_t n, const GetBox& box_of) {
  size_t si = 0, sj = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Envelope combined = box_of(i).Union(box_of(j));
      const double waste = combined.Area() - box_of(i).Area() - box_of(j).Area();
      if (waste > worst) {
        worst = waste;
        si = i;
        sj = j;
      }
    }
  }
  return {si, sj};
}

}  // namespace

void RTree::SplitNode(Node* node) {
  // Quadratic split (Guttman 1984) of an overfull node into itself + sibling.
  Node* parent = node->parent;
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  if (node->leaf) {
    std::vector<IndexEntry> all = std::move(node->entries);
    node->entries.clear();
    auto [si, sj] =
        PickSeeds(all.size(), [&](size_t i) -> const Envelope& {
          return all[i].box;
        });
    node->entries.push_back(all[si]);
    sibling->entries.push_back(all[sj]);
    Envelope box_a(all[si].box), box_b(all[sj].box);
    std::vector<IndexEntry> rest;
    for (size_t i = 0; i < all.size(); ++i) {
      if (i != si && i != sj) rest.push_back(all[i]);
    }
    for (const IndexEntry& e : rest) {
      const double da = box_a.EnlargementToInclude(e.box);
      const double db = box_b.EnlargementToInclude(e.box);
      const bool to_a =
          sibling->entries.size() >= max_entries_ - min_entries_ ||
          (node->entries.size() < max_entries_ - min_entries_ &&
           (da < db || (da == db && box_a.Area() <= box_b.Area())));
      if (to_a) {
        node->entries.push_back(e);
        box_a.ExpandToInclude(e.box);
      } else {
        sibling->entries.push_back(e);
        box_b.ExpandToInclude(e.box);
      }
    }
  } else {
    std::vector<std::unique_ptr<Node>> all = std::move(node->children);
    node->children.clear();
    auto [si, sj] =
        PickSeeds(all.size(), [&](size_t i) -> const Envelope& {
          return all[i]->box;
        });
    Envelope box_a(all[si]->box), box_b(all[sj]->box);
    std::vector<std::unique_ptr<Node>> rest;
    for (size_t i = 0; i < all.size(); ++i) {
      if (i == si) {
        node->children.push_back(std::move(all[i]));
      } else if (i == sj) {
        sibling->children.push_back(std::move(all[i]));
      } else {
        rest.push_back(std::move(all[i]));
      }
    }
    for (auto& c : rest) {
      const double da = box_a.EnlargementToInclude(c->box);
      const double db = box_b.EnlargementToInclude(c->box);
      const bool to_a =
          sibling->children.size() >= max_entries_ - min_entries_ ||
          (node->children.size() < max_entries_ - min_entries_ &&
           (da < db || (da == db && box_a.Area() <= box_b.Area())));
      if (to_a) {
        box_a.ExpandToInclude(c->box);
        node->children.push_back(std::move(c));
      } else {
        box_b.ExpandToInclude(c->box);
        sibling->children.push_back(std::move(c));
      }
    }
    for (auto& c : node->children) c->parent = node;
    for (auto& c : sibling->children) c->parent = sibling.get();
  }

  node->Recompute();
  sibling->Recompute();

  if (parent == nullptr) {
    // Grow a new root.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->Recompute();
    root_ = std::move(new_root);
  } else {
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    if (parent->Count() > max_entries_) SplitNode(parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  for (Node* n = node; n != nullptr; n = n->parent) n->Recompute();
}

void RTree::Insert(const Envelope& box, int64_t id) {
  Node* leaf = ChooseLeaf(root_.get(), box);
  leaf->entries.push_back(IndexEntry{box, id});
  ++size_;
  AdjustUpward(leaf);
  if (leaf->entries.size() > max_entries_) SplitNode(leaf);
}

RTree::Node* RTree::BuildStr(std::vector<IndexEntry>* entries, int* height) {
  // Sort-Tile-Recursive: sort by x, tile into vertical slices, sort each
  // slice by y, pack leaves, then build upper levels the same way.
  const size_t n = entries->size();
  const size_t per_leaf = max_entries_;
  const auto num_leaves =
      static_cast<size_t>(std::ceil(static_cast<double>(n) / per_leaf));
  const auto slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));

  std::sort(entries->begin(), entries->end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return a.box.Center().x < b.box.Center().x;
            });

  std::vector<std::unique_ptr<Node>> leaves;
  const size_t per_slice = (n + slices - 1) / slices;
  for (size_t s = 0; s * per_slice < n; ++s) {
    const size_t lo = s * per_slice;
    const size_t hi = std::min(n, lo + per_slice);
    std::sort(entries->begin() + static_cast<ptrdiff_t>(lo),
              entries->begin() + static_cast<ptrdiff_t>(hi),
              [](const IndexEntry& a, const IndexEntry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = lo; i < hi; i += per_leaf) {
      auto leaf = std::make_unique<Node>();
      for (size_t j = i; j < std::min(hi, i + per_leaf); ++j) {
        leaf->entries.push_back((*entries)[j]);
      }
      leaf->Recompute();
      leaves.push_back(std::move(leaf));
    }
  }

  *height = 1;
  while (leaves.size() > 1) {
    // Pack the current level into parents, STR again on node centres.
    std::sort(leaves.begin(), leaves.end(),
              [](const auto& a, const auto& b) {
                return a->box.Center().x < b->box.Center().x;
              });
    const size_t level_n = leaves.size();
    const auto level_nodes = static_cast<size_t>(
        std::ceil(static_cast<double>(level_n) / max_entries_));
    const auto level_slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(level_nodes))));
    const size_t level_per_slice = (level_n + level_slices - 1) / level_slices;
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t s = 0; s * level_per_slice < level_n; ++s) {
      const size_t lo = s * level_per_slice;
      const size_t hi = std::min(level_n, lo + level_per_slice);
      std::sort(leaves.begin() + static_cast<ptrdiff_t>(lo),
                leaves.begin() + static_cast<ptrdiff_t>(hi),
                [](const auto& a, const auto& b) {
                  return a->box.Center().y < b->box.Center().y;
                });
      for (size_t i = lo; i < hi; i += max_entries_) {
        auto parent = std::make_unique<Node>();
        parent->leaf = false;
        for (size_t j = i; j < std::min(hi, i + max_entries_); ++j) {
          leaves[j]->parent = parent.get();
          parent->children.push_back(std::move(leaves[j]));
        }
        parent->Recompute();
        parents.push_back(std::move(parent));
      }
    }
    leaves = std::move(parents);
    ++*height;
  }
  if (leaves.empty()) return nullptr;
  Node* root = leaves.front().release();
  return root;
}

void RTree::BulkLoad(std::vector<IndexEntry> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }
  int height = 0;
  Node* root = BuildStr(&entries, &height);
  root_.reset(root);
  root_->parent = nullptr;
}

void RTree::Query(const Envelope& window, std::vector<int64_t>* out,
                  ProbeStats* probe) const {
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (probe != nullptr) ++probe->nodes_visited;
    if (!node->box.Intersects(window)) continue;
    if (node->leaf) {
      for (const IndexEntry& e : node->entries) {
        if (e.box.Intersects(window)) out->push_back(e.id);
      }
    } else {
      for (const auto& child : node->children) {
        if (child->box.Intersects(window)) stack.push_back(child.get());
      }
    }
  }
}

void RTree::Nearest(const Coord& p, size_t k, std::vector<int64_t>* out) const {
  if (k == 0 || size_ == 0) return;
  // Best-first branch and bound over MBR distances.
  struct QueueItem {
    double dist;
    const Node* node;    // nullptr for entry items
    IndexEntry entry{};  // valid when node == nullptr
    bool operator>(const QueueItem& other) const { return dist > other.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({root_->box.DistanceTo(p), root_.get()});
  while (!pq.empty() && out->size() < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out->push_back(item.entry.id);
      continue;
    }
    if (item.node->leaf) {
      for (const IndexEntry& e : item.node->entries) {
        pq.push({e.box.DistanceTo(p), nullptr, e});
      }
    } else {
      for (const auto& child : item.node->children) {
        pq.push({child->box.DistanceTo(p), child.get()});
      }
    }
  }
}

int RTree::Height() const {
  int h = 1;
  for (const Node* n = root_.get(); !n->leaf; n = n->children.front().get()) {
    ++h;
  }
  return h;
}

size_t RTree::NodeCount() const {
  size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->leaf) {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return count;
}

}  // namespace jackpine::index
