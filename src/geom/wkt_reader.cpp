#include "geom/wkt_reader.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace jackpine::geom {

namespace {

// Recursive-descent WKT tokenizer/parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Geometry> Parse() {
    JACKPINE_ASSIGN_OR_RETURN(Geometry g, ParseGeometry());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Err("trailing characters after geometry");
    }
    return g;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("WKT at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Reads an identifier-like word ([A-Za-z]+), uppercased.
  std::string ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           std::isalpha(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    return ToUpperAscii(input_.substr(start, pos_ - start));
  }

  // True if the next word is EMPTY (consumes it).
  bool ConsumeEmpty() {
    SkipSpace();
    size_t save = pos_;
    if (ReadWord() == "EMPTY") return true;
    pos_ = save;
    return false;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const char* begin = input_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Status(StatusCode::kParseError, "expected number");
    pos_ += static_cast<size_t>(end - begin);
    return v;
  }

  Result<Coord> ParseCoord() {
    JACKPINE_ASSIGN_OR_RETURN(double x, ParseNumber());
    JACKPINE_ASSIGN_OR_RETURN(double y, ParseNumber());
    return Coord{x, y};
  }

  // "(c, c, ...)"
  Result<std::vector<Coord>> ParseCoordSeq() {
    if (!ConsumeChar('(')) return Err("expected '('");
    std::vector<Coord> pts;
    do {
      JACKPINE_ASSIGN_OR_RETURN(Coord c, ParseCoord());
      pts.push_back(c);
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')'");
    return pts;
  }

  Result<Geometry> ParsePointBody() {
    if (ConsumeEmpty()) return Geometry::MakeEmpty(GeometryType::kPoint);
    if (!ConsumeChar('(')) return Err("expected '(' after POINT");
    JACKPINE_ASSIGN_OR_RETURN(Coord c, ParseCoord());
    if (!ConsumeChar(')')) return Err("expected ')' after POINT coordinates");
    return Geometry::MakePoint(c);
  }

  Result<Geometry> ParseLineStringBody() {
    if (ConsumeEmpty()) return Geometry::MakeEmpty(GeometryType::kLineString);
    JACKPINE_ASSIGN_OR_RETURN(std::vector<Coord> pts, ParseCoordSeq());
    return Geometry::MakeLineString(std::move(pts));
  }

  Result<Geometry> ParsePolygonBody() {
    if (ConsumeEmpty()) return Geometry::MakeEmpty(GeometryType::kPolygon);
    if (!ConsumeChar('(')) return Err("expected '(' after POLYGON");
    std::vector<Ring> rings;
    do {
      JACKPINE_ASSIGN_OR_RETURN(std::vector<Coord> ring, ParseCoordSeq());
      rings.push_back(std::move(ring));
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')' after POLYGON rings");
    Ring shell = std::move(rings.front());
    rings.erase(rings.begin());
    return Geometry::MakePolygon(std::move(shell), std::move(rings));
  }

  Result<Geometry> ParseMultiPointBody() {
    if (ConsumeEmpty()) return Geometry::MakeEmpty(GeometryType::kMultiPoint);
    if (!ConsumeChar('(')) return Err("expected '(' after MULTIPOINT");
    std::vector<Geometry> parts;
    do {
      // Accept both "(1 2)" and bare "1 2".
      if (ConsumeChar('(')) {
        JACKPINE_ASSIGN_OR_RETURN(Coord c, ParseCoord());
        if (!ConsumeChar(')')) return Err("expected ')' in MULTIPOINT element");
        parts.push_back(Geometry::MakePoint(c));
      } else {
        JACKPINE_ASSIGN_OR_RETURN(Coord c, ParseCoord());
        parts.push_back(Geometry::MakePoint(c));
      }
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')' after MULTIPOINT");
    return Geometry::MakeMultiPoint(std::move(parts));
  }

  Result<Geometry> ParseMultiLineStringBody() {
    if (ConsumeEmpty()) {
      return Geometry::MakeEmpty(GeometryType::kMultiLineString);
    }
    if (!ConsumeChar('(')) return Err("expected '(' after MULTILINESTRING");
    std::vector<Geometry> parts;
    do {
      JACKPINE_ASSIGN_OR_RETURN(std::vector<Coord> pts, ParseCoordSeq());
      JACKPINE_ASSIGN_OR_RETURN(Geometry line,
                                Geometry::MakeLineString(std::move(pts)));
      parts.push_back(std::move(line));
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')' after MULTILINESTRING");
    return Geometry::MakeMultiLineString(std::move(parts));
  }

  Result<Geometry> ParseMultiPolygonBody() {
    if (ConsumeEmpty()) return Geometry::MakeEmpty(GeometryType::kMultiPolygon);
    if (!ConsumeChar('(')) return Err("expected '(' after MULTIPOLYGON");
    std::vector<Geometry> parts;
    do {
      JACKPINE_ASSIGN_OR_RETURN(Geometry poly, ParsePolygonBody());
      parts.push_back(std::move(poly));
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')' after MULTIPOLYGON");
    return Geometry::MakeMultiPolygon(std::move(parts));
  }

  Result<Geometry> ParseCollectionBody() {
    if (ConsumeEmpty()) {
      return Geometry::MakeEmpty(GeometryType::kGeometryCollection);
    }
    if (!ConsumeChar('(')) {
      return Err("expected '(' after GEOMETRYCOLLECTION");
    }
    std::vector<Geometry> parts;
    do {
      JACKPINE_ASSIGN_OR_RETURN(Geometry g, ParseGeometry());
      parts.push_back(std::move(g));
    } while (ConsumeChar(','));
    if (!ConsumeChar(')')) return Err("expected ')' after GEOMETRYCOLLECTION");
    return Geometry::MakeCollection(std::move(parts));
  }

  Result<Geometry> ParseGeometry() {
    const std::string tag = ReadWord();
    if (tag == "POINT") return ParsePointBody();
    if (tag == "LINESTRING") return ParseLineStringBody();
    if (tag == "POLYGON") return ParsePolygonBody();
    if (tag == "MULTIPOINT") return ParseMultiPointBody();
    if (tag == "MULTILINESTRING") return ParseMultiLineStringBody();
    if (tag == "MULTIPOLYGON") return ParseMultiPolygonBody();
    if (tag == "GEOMETRYCOLLECTION") return ParseCollectionBody();
    return Err(StrFormat("unknown geometry tag '%s'", tag.c_str()));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Geometry> WktReader::Read(std::string_view wkt) const {
  return Parser(wkt).Parse();
}

}  // namespace jackpine::geom
