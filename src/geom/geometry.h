// The geometry object model: an immutable, cheaply-copyable value type
// covering the seven OGC Simple Features types used by the benchmark.
//
// Design notes:
//  - A Geometry is a shared pointer to an immutable payload, so copying a
//    geometry (e.g., through the query engine's Value type) is O(1).
//  - Polygon rings are stored closed (first coordinate == last coordinate)
//    with the shell in counter-clockwise orientation and holes clockwise;
//    the factory functions normalise orientation and closure.
//  - Multi-part geometries store their parts as Geometry values, making
//    traversal uniform across MultiX and GeometryCollection.
//  - Construction that can fail (too few points, unclosed ring, NaN
//    coordinates) goes through Result-returning factories.

#ifndef JACKPINE_GEOM_GEOMETRY_H_
#define JACKPINE_GEOM_GEOMETRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/coord.h"
#include "geom/envelope.h"

namespace jackpine::geom {

enum class GeometryType : uint8_t {
  kPoint = 1,
  kLineString = 2,
  kPolygon = 3,
  kMultiPoint = 4,
  kMultiLineString = 5,
  kMultiPolygon = 6,
  kGeometryCollection = 7,
};

// "POINT", "LINESTRING", ... (the WKT tag).
const char* GeometryTypeName(GeometryType type);

// A closed ring of coordinates. Validity (closure, >= 4 points) is enforced
// by the Polygon factory.
using Ring = std::vector<Coord>;

struct PolygonData {
  Ring shell;
  std::vector<Ring> holes;
};

class Geometry {
 public:
  // Default-constructed geometry is an empty GeometryCollection.
  Geometry();

  // --- Factories ------------------------------------------------------

  static Geometry MakePoint(double x, double y);
  static Geometry MakePoint(const Coord& c) { return MakePoint(c.x, c.y); }

  // An empty geometry of the given type (WKT "POINT EMPTY" etc.).
  static Geometry MakeEmpty(GeometryType type);

  // Requires >= 2 points, all finite.
  static Result<Geometry> MakeLineString(std::vector<Coord> points);

  // Shell and holes must each have >= 4 points and be closed (first == last);
  // a ring whose endpoints differ is closed automatically. Orientation is
  // normalised (shell CCW, holes CW). Self-intersection is NOT checked here;
  // see Validate().
  static Result<Geometry> MakePolygon(Ring shell, std::vector<Ring> holes = {});

  // Convenience: the rectangle of `e` as a polygon (empty polygon if null).
  static Geometry MakeRectangle(const Envelope& e);

  // Parts must all be of the element type (enforced).
  static Result<Geometry> MakeMultiPoint(std::vector<Geometry> points);
  static Result<Geometry> MakeMultiLineString(std::vector<Geometry> lines);
  static Result<Geometry> MakeMultiPolygon(std::vector<Geometry> polygons);
  static Geometry MakeCollection(std::vector<Geometry> parts);

  // Builds a collection-typed geometry without element-type checking; used
  // by the checked MakeMulti* factories and the overlay code.
  static Geometry MakeCollectionOfType(GeometryType type,
                                       std::vector<Geometry> parts);

  // --- Inspection -----------------------------------------------------

  GeometryType type() const;
  bool IsEmpty() const;

  // Topological dimension: 0 points, 1 lines, 2 polygons; for collections the
  // max over parts; -1 for empty geometries.
  int Dimension() const;

  // Total number of coordinates (rings count their closing point).
  size_t NumPoints() const;

  // Cached bounding rectangle; null for empty geometries.
  const Envelope& envelope() const;

  // True for Point/LineString/Polygon.
  bool IsSimpleType() const;
  // True for MultiX / GeometryCollection.
  bool IsCollectionType() const;

  // --- Typed access (caller must check type()) ------------------------

  // Valid iff type() == kPoint and !IsEmpty().
  const Coord& AsPoint() const;
  // Valid iff type() == kLineString.
  const std::vector<Coord>& AsLineString() const;
  // Valid iff type() == kPolygon.
  const PolygonData& AsPolygon() const;
  // Valid iff IsCollectionType().
  const std::vector<Geometry>& Parts() const;

  // Flattens collections into their non-empty simple-type leaves. A simple
  // geometry yields itself (if non-empty).
  std::vector<Geometry> Leaves() const;

  // --- Semantics ------------------------------------------------------

  // Exact structural equality: same type, same coordinates in same order.
  // (Topological equality lives in topo::Equals.)
  bool ExactlyEquals(const Geometry& other) const;

  // Checks structural validity beyond what factories enforce: finite
  // coordinates, ring self-intersection, holes inside shell.
  Status Validate() const;

  // 64-bit structural hash (used for cross-SUT result checksums).
  uint64_t Hash() const;

  // WKT rendering (delegates to WktWriter with default precision).
  std::string ToWkt() const;

 private:
  struct Payload;
  explicit Geometry(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}

  std::shared_ptr<const Payload> payload_;
};

// Orientation helpers used by the polygon factory and the overlay code.
// Signed area of a ring: positive when counter-clockwise.
double SignedRingArea(const Ring& ring);
bool IsCcw(const Ring& ring);

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_GEOMETRY_H_
