// GeoJSON (RFC 7946) serialisation of geometries.
//
// The benchmark itself speaks WKT/WKB; GeoJSON output exists because the
// map-browsing scenario's real-world counterpart feeds web clients, and it
// backs the ST_AsGeoJSON SQL function.

#ifndef JACKPINE_GEOM_GEOJSON_H_
#define JACKPINE_GEOM_GEOJSON_H_

#include <string>

#include "geom/geometry.h"

namespace jackpine::geom {

// Renders `g` as a GeoJSON geometry object, e.g.
// {"type":"Point","coordinates":[1,2]}. Empty geometries render with empty
// coordinate arrays (an empty point becomes an empty GeometryCollection,
// since GeoJSON has no empty-point form).
std::string ToGeoJson(const Geometry& g, int precision = 9);

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_GEOJSON_H_
