#include "geom/wkt_writer.h"

#include <cstdio>

namespace jackpine::geom {

WktWriter::WktWriter(int precision) : precision_(precision) {}

std::string WktWriter::Write(const Geometry& geometry) const {
  std::string out;
  WriteGeometry(geometry, &out);
  return out;
}

void WktWriter::WriteCoord(const Coord& c, std::string* out) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g %.*g", precision_, c.x, precision_,
                c.y);
  *out += buf;
}

void WktWriter::WriteCoordSeq(const std::vector<Coord>& pts,
                              std::string* out) const {
  *out += '(';
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) *out += ", ";
    WriteCoord(pts[i], out);
  }
  *out += ')';
}

void WktWriter::WritePolygonBody(const PolygonData& poly,
                                 std::string* out) const {
  *out += '(';
  WriteCoordSeq(poly.shell, out);
  for (const Ring& hole : poly.holes) {
    *out += ", ";
    WriteCoordSeq(hole, out);
  }
  *out += ')';
}

void WktWriter::WriteGeometry(const Geometry& g, std::string* out) const {
  *out += GeometryTypeName(g.type());
  if (g.IsEmpty()) {
    *out += " EMPTY";
    return;
  }
  *out += ' ';
  switch (g.type()) {
    case GeometryType::kPoint:
      *out += '(';
      WriteCoord(g.AsPoint(), out);
      *out += ')';
      return;
    case GeometryType::kLineString:
      WriteCoordSeq(g.AsLineString(), out);
      return;
    case GeometryType::kPolygon:
      WritePolygonBody(g.AsPolygon(), out);
      return;
    case GeometryType::kMultiPoint: {
      *out += '(';
      const std::vector<Geometry>& parts = g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += '(';
        WriteCoord(parts[i].AsPoint(), out);
        *out += ')';
      }
      *out += ')';
      return;
    }
    case GeometryType::kMultiLineString: {
      *out += '(';
      const std::vector<Geometry>& parts = g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ", ";
        WriteCoordSeq(parts[i].AsLineString(), out);
      }
      *out += ')';
      return;
    }
    case GeometryType::kMultiPolygon: {
      *out += '(';
      const std::vector<Geometry>& parts = g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ", ";
        WritePolygonBody(parts[i].AsPolygon(), out);
      }
      *out += ')';
      return;
    }
    case GeometryType::kGeometryCollection: {
      *out += '(';
      const std::vector<Geometry>& parts = g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ", ";
        WriteGeometry(parts[i], out);
      }
      *out += ')';
      return;
    }
  }
}

}  // namespace jackpine::geom
