// Well-Known Binary serialisation (little-endian, 2-D, OGC geometry codes).
//
// pinedb's in-memory heap stores parsed Geometry values directly; WKB is the
// client round-trip format (ST_AsBinary) and the interchange format for
// external tooling.

#ifndef JACKPINE_GEOM_WKB_H_
#define JACKPINE_GEOM_WKB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::geom {

// Serialises to little-endian WKB. Empty point encodes as NaN coordinates
// (the PostGIS convention); other empty geometries encode with zero parts.
std::string ToWkb(const Geometry& geometry);

// Parses WKB produced by ToWkb or any conforming little/big-endian writer.
Result<Geometry> FromWkb(std::string_view wkb);

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_WKB_H_
