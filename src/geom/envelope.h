// Axis-aligned bounding rectangle (MBR).
//
// Envelopes drive the filter step of every spatial predicate, the R-tree and
// grid indexes, and the MBR-only predicate semantics of the `pine-mbr` SUT.

#ifndef JACKPINE_GEOM_ENVELOPE_H_
#define JACKPINE_GEOM_ENVELOPE_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/coord.h"

namespace jackpine::geom {

// A closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
// A default-constructed Envelope is "null" (empty): it contains nothing and
// expanding it by a point makes it that point.
class Envelope {
 public:
  Envelope() = default;
  Envelope(double min_x, double min_y, double max_x, double max_y)
      : min_x_(std::min(min_x, max_x)),
        min_y_(std::min(min_y, max_y)),
        max_x_(std::max(min_x, max_x)),
        max_y_(std::max(min_y, max_y)) {}
  explicit Envelope(const Coord& c) : Envelope(c.x, c.y, c.x, c.y) {}
  Envelope(const Coord& a, const Coord& b)
      : Envelope(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                 std::max(a.y, b.y)) {}

  bool IsNull() const { return min_x_ > max_x_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double Width() const { return IsNull() ? 0.0 : max_x_ - min_x_; }
  double Height() const { return IsNull() ? 0.0 : max_y_ - min_y_; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }
  Coord Center() const {
    return {(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
  }

  // Grows this envelope to cover `c` / `other`.
  void ExpandToInclude(const Coord& c);
  void ExpandToInclude(const Envelope& other);

  // Grows by `margin` on every side (negative shrinks; may become null).
  Envelope Expanded(double margin) const;

  bool Contains(const Coord& c) const {
    return !IsNull() && c.x >= min_x_ && c.x <= max_x_ && c.y >= min_y_ &&
           c.y <= max_y_;
  }
  // True if `other` lies entirely inside this envelope (boundary allowed).
  bool Contains(const Envelope& other) const {
    return !IsNull() && !other.IsNull() && other.min_x_ >= min_x_ &&
           other.max_x_ <= max_x_ && other.min_y_ >= min_y_ &&
           other.max_y_ <= max_y_;
  }
  bool Intersects(const Envelope& other) const {
    return !IsNull() && !other.IsNull() && other.min_x_ <= max_x_ &&
           other.max_x_ >= min_x_ && other.min_y_ <= max_y_ &&
           other.max_y_ >= min_y_;
  }
  // Rectangles share boundary but no interior.
  bool Touches(const Envelope& other) const;

  // The overlap rectangle; null if disjoint.
  Envelope Intersection(const Envelope& other) const;

  // Smallest envelope covering both.
  Envelope Union(const Envelope& other) const;

  // Increase in area if this envelope were expanded to include `other`
  // (the R-tree's insertion heuristic).
  double EnlargementToInclude(const Envelope& other) const;

  // Minimum distance between the two rectangles (0 when intersecting).
  double DistanceTo(const Envelope& other) const;
  double DistanceTo(const Coord& c) const;

  std::string ToString() const;

  friend bool operator==(const Envelope& a, const Envelope& b) {
    if (a.IsNull() && b.IsNull()) return true;
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

 private:
  double min_x_ = std::numeric_limits<double>::infinity();
  double min_y_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  double max_y_ = -std::numeric_limits<double>::infinity();
};

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_ENVELOPE_H_
