#include "geom/geometry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"
#include "geom/wkt_writer.h"

namespace jackpine::geom {

namespace {

bool AllFinite(const std::vector<Coord>& pts) {
  for (const Coord& c : pts) {
    if (!std::isfinite(c.x) || !std::isfinite(c.y)) return false;
  }
  return true;
}

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 0xff51afd7ed558ccdULL;
}

uint64_t HashDouble(double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

uint64_t HashCoords(uint64_t h, const std::vector<Coord>& pts) {
  for (const Coord& c : pts) {
    h = HashMix(h, HashDouble(c.x));
    h = HashMix(h, HashDouble(c.y));
  }
  return h;
}

}  // namespace

const char* GeometryTypeName(GeometryType type) {
  switch (type) {
    case GeometryType::kPoint:
      return "POINT";
    case GeometryType::kLineString:
      return "LINESTRING";
    case GeometryType::kPolygon:
      return "POLYGON";
    case GeometryType::kMultiPoint:
      return "MULTIPOINT";
    case GeometryType::kMultiLineString:
      return "MULTILINESTRING";
    case GeometryType::kMultiPolygon:
      return "MULTIPOLYGON";
    case GeometryType::kGeometryCollection:
      return "GEOMETRYCOLLECTION";
  }
  return "UNKNOWN";
}

double SignedRingArea(const Ring& ring) {
  // Shoelace formula. Works for closed rings (first == last) and tolerates
  // unclosed input by wrapping around.
  if (ring.size() < 3) return 0.0;
  double area2 = 0.0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    area2 += ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
  }
  if (ring.front() != ring.back()) {
    area2 += ring.back().x * ring.front().y - ring.front().x * ring.back().y;
  }
  return area2 / 2.0;
}

bool IsCcw(const Ring& ring) { return SignedRingArea(ring) > 0.0; }

struct Geometry::Payload {
  GeometryType type = GeometryType::kGeometryCollection;
  bool empty = true;
  Envelope envelope;

  // Exactly one of these is meaningful, selected by `type`.
  Coord point{};
  std::vector<Coord> line;
  PolygonData polygon;
  std::vector<Geometry> parts;
};

Geometry::Geometry() {
  static const std::shared_ptr<const Payload> kEmpty =
      std::make_shared<const Payload>();
  payload_ = kEmpty;
}

Geometry Geometry::MakePoint(double x, double y) {
  auto p = std::make_shared<Payload>();
  p->type = GeometryType::kPoint;
  p->empty = false;
  p->point = {x, y};
  p->envelope = Envelope(p->point);
  return Geometry(std::move(p));
}

Geometry Geometry::MakeEmpty(GeometryType type) {
  auto p = std::make_shared<Payload>();
  p->type = type;
  p->empty = true;
  return Geometry(std::move(p));
}

Result<Geometry> Geometry::MakeLineString(std::vector<Coord> points) {
  if (points.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("LineString needs >= 2 points, got %zu", points.size()));
  }
  if (!AllFinite(points)) {
    return Status::InvalidArgument("LineString has non-finite coordinate");
  }
  auto p = std::make_shared<Payload>();
  p->type = GeometryType::kLineString;
  p->empty = false;
  for (const Coord& c : points) p->envelope.ExpandToInclude(c);
  p->line = std::move(points);
  return Geometry(std::move(p));
}

namespace {

// Closes the ring if needed and enforces minimum size.
Status NormalizeRing(Ring* ring, bool want_ccw) {
  if (!AllFinite(*ring)) {
    return Status::InvalidArgument("ring has non-finite coordinate");
  }
  if (!ring->empty() && ring->front() != ring->back()) {
    ring->push_back(ring->front());
  }
  if (ring->size() < 4) {
    return Status::InvalidArgument(
        StrFormat("ring needs >= 4 points (closed), got %zu", ring->size()));
  }
  if (IsCcw(*ring) != want_ccw) {
    std::reverse(ring->begin(), ring->end());
  }
  return Status::Ok();
}

}  // namespace

Result<Geometry> Geometry::MakePolygon(Ring shell, std::vector<Ring> holes) {
  JACKPINE_RETURN_IF_ERROR(NormalizeRing(&shell, /*want_ccw=*/true));
  for (Ring& hole : holes) {
    JACKPINE_RETURN_IF_ERROR(NormalizeRing(&hole, /*want_ccw=*/false));
  }
  auto p = std::make_shared<Payload>();
  p->type = GeometryType::kPolygon;
  p->empty = false;
  for (const Coord& c : shell) p->envelope.ExpandToInclude(c);
  p->polygon.shell = std::move(shell);
  p->polygon.holes = std::move(holes);
  return Geometry(std::move(p));
}

Geometry Geometry::MakeRectangle(const Envelope& e) {
  if (e.IsNull()) return MakeEmpty(GeometryType::kPolygon);
  Ring shell = {{e.min_x(), e.min_y()},
                {e.max_x(), e.min_y()},
                {e.max_x(), e.max_y()},
                {e.min_x(), e.max_y()},
                {e.min_x(), e.min_y()}};
  auto result = MakePolygon(std::move(shell));
  assert(result.ok());
  return std::move(result).value();
}

namespace {

Result<Geometry> MakeMulti(GeometryType multi_type, GeometryType element_type,
                           std::vector<Geometry> parts) {
  for (const Geometry& g : parts) {
    if (g.type() != element_type) {
      return Status::InvalidArgument(
          StrFormat("%s part must be %s, got %s", GeometryTypeName(multi_type),
                    GeometryTypeName(element_type), GeometryTypeName(g.type())));
    }
  }
  if (parts.empty()) return Geometry::MakeEmpty(multi_type);
  return Geometry::MakeCollectionOfType(multi_type, std::move(parts));
}

}  // namespace

Result<Geometry> Geometry::MakeMultiPoint(std::vector<Geometry> points) {
  return MakeMulti(GeometryType::kMultiPoint, GeometryType::kPoint,
                   std::move(points));
}

Result<Geometry> Geometry::MakeMultiLineString(std::vector<Geometry> lines) {
  return MakeMulti(GeometryType::kMultiLineString, GeometryType::kLineString,
                   std::move(lines));
}

Result<Geometry> Geometry::MakeMultiPolygon(std::vector<Geometry> polygons) {
  return MakeMulti(GeometryType::kMultiPolygon, GeometryType::kPolygon,
                   std::move(polygons));
}

Geometry Geometry::MakeCollection(std::vector<Geometry> parts) {
  return MakeCollectionOfType(GeometryType::kGeometryCollection,
                              std::move(parts));
}

Geometry Geometry::MakeCollectionOfType(GeometryType type,
                                        std::vector<Geometry> parts) {
  auto p = std::make_shared<Payload>();
  p->type = type;
  p->empty = true;
  for (const Geometry& g : parts) {
    if (!g.IsEmpty()) p->empty = false;
    p->envelope.ExpandToInclude(g.envelope());
  }
  p->parts = std::move(parts);
  return Geometry(std::move(p));
}

GeometryType Geometry::type() const { return payload_->type; }

bool Geometry::IsEmpty() const { return payload_->empty; }

int Geometry::Dimension() const {
  if (IsEmpty()) return -1;
  switch (type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return 0;
    case GeometryType::kLineString:
    case GeometryType::kMultiLineString:
      return 1;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      return 2;
    case GeometryType::kGeometryCollection: {
      int dim = -1;
      for (const Geometry& g : payload_->parts) {
        dim = std::max(dim, g.Dimension());
      }
      return dim;
    }
  }
  return -1;
}

size_t Geometry::NumPoints() const {
  switch (type()) {
    case GeometryType::kPoint:
      return IsEmpty() ? 0 : 1;
    case GeometryType::kLineString:
      return payload_->line.size();
    case GeometryType::kPolygon: {
      size_t n = payload_->polygon.shell.size();
      for (const Ring& h : payload_->polygon.holes) n += h.size();
      return n;
    }
    default: {
      size_t n = 0;
      for (const Geometry& g : payload_->parts) n += g.NumPoints();
      return n;
    }
  }
}

const Envelope& Geometry::envelope() const { return payload_->envelope; }

bool Geometry::IsSimpleType() const {
  switch (type()) {
    case GeometryType::kPoint:
    case GeometryType::kLineString:
    case GeometryType::kPolygon:
      return true;
    default:
      return false;
  }
}

bool Geometry::IsCollectionType() const { return !IsSimpleType(); }

const Coord& Geometry::AsPoint() const {
  assert(type() == GeometryType::kPoint && !IsEmpty());
  return payload_->point;
}

const std::vector<Coord>& Geometry::AsLineString() const {
  assert(type() == GeometryType::kLineString);
  return payload_->line;
}

const PolygonData& Geometry::AsPolygon() const {
  assert(type() == GeometryType::kPolygon);
  return payload_->polygon;
}

const std::vector<Geometry>& Geometry::Parts() const {
  assert(IsCollectionType());
  return payload_->parts;
}

std::vector<Geometry> Geometry::Leaves() const {
  std::vector<Geometry> out;
  if (IsSimpleType()) {
    if (!IsEmpty()) out.push_back(*this);
    return out;
  }
  for (const Geometry& g : payload_->parts) {
    std::vector<Geometry> sub = g.Leaves();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

bool Geometry::ExactlyEquals(const Geometry& other) const {
  if (payload_ == other.payload_) return true;
  if (type() != other.type() || IsEmpty() != other.IsEmpty()) return false;
  if (IsEmpty()) return true;
  switch (type()) {
    case GeometryType::kPoint:
      return AsPoint() == other.AsPoint();
    case GeometryType::kLineString:
      return AsLineString() == other.AsLineString();
    case GeometryType::kPolygon: {
      const PolygonData& a = AsPolygon();
      const PolygonData& b = other.AsPolygon();
      return a.shell == b.shell && a.holes == b.holes;
    }
    default: {
      const std::vector<Geometry>& a = Parts();
      const std::vector<Geometry>& b = other.Parts();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].ExactlyEquals(b[i])) return false;
      }
      return true;
    }
  }
}

uint64_t Geometry::Hash() const {
  uint64_t h = HashMix(0x243f6a8885a308d3ULL, static_cast<uint64_t>(type()));
  if (IsEmpty()) return h;
  switch (type()) {
    case GeometryType::kPoint:
      h = HashMix(h, HashDouble(payload_->point.x));
      h = HashMix(h, HashDouble(payload_->point.y));
      return h;
    case GeometryType::kLineString:
      return HashCoords(h, payload_->line);
    case GeometryType::kPolygon:
      h = HashCoords(h, payload_->polygon.shell);
      for (const Ring& hole : payload_->polygon.holes) h = HashCoords(h, hole);
      return h;
    default:
      for (const Geometry& g : payload_->parts) h = HashMix(h, g.Hash());
      return h;
  }
}

namespace {

// Proper (interior) intersection test between segments ab and cd, used for
// the O(n^2) ring self-intersection check in Validate(). Shared endpoints of
// adjacent segments are excluded by the caller.
bool SegmentsCross(const Coord& a, const Coord& b, const Coord& c,
                   const Coord& d) {
  auto cross = [](const Coord& o, const Coord& p, const Coord& q) {
    return (p.x - o.x) * (q.y - o.y) - (p.y - o.y) * (q.x - o.x);
  };
  const double d1 = cross(c, d, a);
  const double d2 = cross(c, d, b);
  const double d3 = cross(a, b, c);
  const double d4 = cross(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  return false;
}

Status ValidateRing(const Ring& ring) {
  if (ring.size() < 4 || ring.front() != ring.back()) {
    return Status::InvalidArgument("ring not closed");
  }
  const size_t n = ring.size() - 1;  // distinct segments
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // Adjacent segments (and the first/last wrap pair) share an endpoint.
      if (j == i + 1 || (i == 0 && j == n - 1)) continue;
      if (SegmentsCross(ring[i], ring[i + 1], ring[j], ring[j + 1])) {
        return Status::InvalidArgument("ring self-intersects");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status Geometry::Validate() const {
  if (IsEmpty()) return Status::Ok();
  switch (type()) {
    case GeometryType::kPoint:
      if (!std::isfinite(payload_->point.x) ||
          !std::isfinite(payload_->point.y)) {
        return Status::InvalidArgument("point has non-finite coordinate");
      }
      return Status::Ok();
    case GeometryType::kLineString:
      if (!AllFinite(payload_->line)) {
        return Status::InvalidArgument("linestring has non-finite coordinate");
      }
      return Status::Ok();
    case GeometryType::kPolygon: {
      JACKPINE_RETURN_IF_ERROR(ValidateRing(payload_->polygon.shell));
      Envelope shell_env;
      for (const Coord& c : payload_->polygon.shell) {
        shell_env.ExpandToInclude(c);
      }
      for (const Ring& hole : payload_->polygon.holes) {
        JACKPINE_RETURN_IF_ERROR(ValidateRing(hole));
        Envelope hole_env;
        for (const Coord& c : hole) hole_env.ExpandToInclude(c);
        if (!shell_env.Contains(hole_env)) {
          return Status::InvalidArgument("hole escapes shell envelope");
        }
      }
      return Status::Ok();
    }
    default:
      for (const Geometry& g : payload_->parts) {
        JACKPINE_RETURN_IF_ERROR(g.Validate());
      }
      return Status::Ok();
  }
}

std::string Geometry::ToWkt() const { return WktWriter().Write(*this); }

}  // namespace jackpine::geom
