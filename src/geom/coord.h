// 2-D coordinate type shared by the whole geometry stack.
//
// Jackpine's datasets are planar (projected TIGER-like data), so coordinates
// are plain Cartesian doubles. Geodetic support in the original paper is a
// per-DBMS feature axis, not something the benchmark queries require; see
// DESIGN.md.

#ifndef JACKPINE_GEOM_COORD_H_
#define JACKPINE_GEOM_COORD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace jackpine::geom {

struct Coord {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Coord& a, const Coord& b) { return !(a == b); }
};

// Euclidean distance between two coordinates.
inline double DistanceBetween(const Coord& a, const Coord& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Squared Euclidean distance (avoids the sqrt when only comparing).
inline double DistanceSquared(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// Mixes the bit patterns of x and y; good enough for dedup sets.
struct CoordHash {
  size_t operator()(const Coord& c) const {
    uint64_t hx, hy;
    static_assert(sizeof(double) == sizeof(uint64_t));
    __builtin_memcpy(&hx, &c.x, sizeof(hx));
    __builtin_memcpy(&hy, &c.y, sizeof(hy));
    uint64_t h = hx * 0x9e3779b97f4a7c15ULL;
    h ^= hy + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_COORD_H_
