// Well-Known Text parsing.

#ifndef JACKPINE_GEOM_WKT_READER_H_
#define JACKPINE_GEOM_WKT_READER_H_

#include <string_view>

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::geom {

// Parses OGC WKT into Geometry values. Accepts EMPTY forms, both
// "MULTIPOINT ((1 2), (3 4))" and the legacy "MULTIPOINT (1 2, 3 4)"
// spelling, and arbitrary whitespace. Rejects trailing garbage.
class WktReader {
 public:
  Result<Geometry> Read(std::string_view wkt) const;
};

// Convenience free function: parse or die is not provided; callers handle
// the Result. This is used pervasively by the SQL planner to evaluate
// ST_GeomFromText literals.
inline Result<Geometry> GeometryFromWkt(std::string_view wkt) {
  return WktReader().Read(wkt);
}

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_WKT_READER_H_
