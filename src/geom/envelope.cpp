#include "geom/envelope.h"

#include "common/string_util.h"

namespace jackpine::geom {

void Envelope::ExpandToInclude(const Coord& c) {
  min_x_ = std::min(min_x_, c.x);
  min_y_ = std::min(min_y_, c.y);
  max_x_ = std::max(max_x_, c.x);
  max_y_ = std::max(max_y_, c.y);
}

void Envelope::ExpandToInclude(const Envelope& other) {
  if (other.IsNull()) return;
  min_x_ = std::min(min_x_, other.min_x_);
  min_y_ = std::min(min_y_, other.min_y_);
  max_x_ = std::max(max_x_, other.max_x_);
  max_y_ = std::max(max_y_, other.max_y_);
}

Envelope Envelope::Expanded(double margin) const {
  if (IsNull()) return Envelope();
  const double nx0 = min_x_ - margin;
  const double ny0 = min_y_ - margin;
  const double nx1 = max_x_ + margin;
  const double ny1 = max_y_ + margin;
  if (nx0 > nx1 || ny0 > ny1) return Envelope();
  Envelope e;
  e.min_x_ = nx0;
  e.min_y_ = ny0;
  e.max_x_ = nx1;
  e.max_y_ = ny1;
  return e;
}

bool Envelope::Touches(const Envelope& other) const {
  if (!Intersects(other)) return false;
  const bool edge_x = other.min_x_ == max_x_ || other.max_x_ == min_x_;
  const bool edge_y = other.min_y_ == max_y_ || other.max_y_ == min_y_;
  return edge_x || edge_y;
}

Envelope Envelope::Intersection(const Envelope& other) const {
  if (!Intersects(other)) return Envelope();
  Envelope e;
  e.min_x_ = std::max(min_x_, other.min_x_);
  e.min_y_ = std::max(min_y_, other.min_y_);
  e.max_x_ = std::min(max_x_, other.max_x_);
  e.max_y_ = std::min(max_y_, other.max_y_);
  return e;
}

Envelope Envelope::Union(const Envelope& other) const {
  Envelope e = *this;
  e.ExpandToInclude(other);
  return e;
}

double Envelope::EnlargementToInclude(const Envelope& other) const {
  if (IsNull()) return other.Area();
  return Union(other).Area() - Area();
}

double Envelope::DistanceTo(const Envelope& other) const {
  if (Intersects(other)) return 0.0;
  double dx = 0.0;
  if (other.max_x_ < min_x_) {
    dx = min_x_ - other.max_x_;
  } else if (other.min_x_ > max_x_) {
    dx = other.min_x_ - max_x_;
  }
  double dy = 0.0;
  if (other.max_y_ < min_y_) {
    dy = min_y_ - other.max_y_;
  } else if (other.min_y_ > max_y_) {
    dy = other.min_y_ - max_y_;
  }
  return std::hypot(dx, dy);
}

double Envelope::DistanceTo(const Coord& c) const {
  return DistanceTo(Envelope(c));
}

std::string Envelope::ToString() const {
  if (IsNull()) return "Env[null]";
  return StrFormat("Env[%g..%g, %g..%g]", min_x_, max_x_, min_y_, max_y_);
}

}  // namespace jackpine::geom
