// Well-Known Text serialisation.

#ifndef JACKPINE_GEOM_WKT_WRITER_H_
#define JACKPINE_GEOM_WKT_WRITER_H_

#include <string>

#include "geom/geometry.h"

namespace jackpine::geom {

// Renders geometries in OGC WKT, e.g. "POLYGON ((0 0, 10 0, 10 10, 0 0))".
// Numbers use shortest round-trippable formatting at the given precision.
class WktWriter {
 public:
  // `precision` is the maximum number of significant decimal digits.
  explicit WktWriter(int precision = 17);

  std::string Write(const Geometry& geometry) const;

 private:
  void WriteGeometry(const Geometry& g, std::string* out) const;
  void WriteCoord(const Coord& c, std::string* out) const;
  void WriteCoordSeq(const std::vector<Coord>& pts, std::string* out) const;
  void WritePolygonBody(const PolygonData& poly, std::string* out) const;

  int precision_;
};

}  // namespace jackpine::geom

#endif  // JACKPINE_GEOM_WKT_WRITER_H_
