#include "geom/geojson.h"

#include <cstdio>

namespace jackpine::geom {

namespace {

void AppendNumber(std::string* out, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  *out += buf;
}

void AppendCoord(std::string* out, const Coord& c, int precision) {
  *out += '[';
  AppendNumber(out, c.x, precision);
  *out += ',';
  AppendNumber(out, c.y, precision);
  *out += ']';
}

void AppendCoordArray(std::string* out, const std::vector<Coord>& pts,
                      int precision) {
  *out += '[';
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) *out += ',';
    AppendCoord(out, pts[i], precision);
  }
  *out += ']';
}

void AppendPolygonCoords(std::string* out, const PolygonData& poly,
                         int precision) {
  *out += '[';
  AppendCoordArray(out, poly.shell, precision);
  for (const Ring& hole : poly.holes) {
    *out += ',';
    AppendCoordArray(out, hole, precision);
  }
  *out += ']';
}

void AppendGeometry(std::string* out, const Geometry& g, int precision) {
  switch (g.type()) {
    case GeometryType::kPoint:
      if (g.IsEmpty()) {
        *out += R"({"type":"GeometryCollection","geometries":[]})";
        return;
      }
      *out += R"({"type":"Point","coordinates":)";
      AppendCoord(out, g.AsPoint(), precision);
      *out += '}';
      return;
    case GeometryType::kLineString:
      *out += R"({"type":"LineString","coordinates":)";
      AppendCoordArray(out, g.IsEmpty() ? std::vector<Coord>{} : g.AsLineString(),
                       precision);
      *out += '}';
      return;
    case GeometryType::kPolygon:
      *out += R"({"type":"Polygon","coordinates":)";
      if (g.IsEmpty()) {
        *out += "[]";
      } else {
        AppendPolygonCoords(out, g.AsPolygon(), precision);
      }
      *out += '}';
      return;
    case GeometryType::kMultiPoint: {
      *out += R"({"type":"MultiPoint","coordinates":[)";
      const auto& parts = g.IsEmpty() ? std::vector<Geometry>{} : g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ',';
        AppendCoord(out, parts[i].AsPoint(), precision);
      }
      *out += "]}";
      return;
    }
    case GeometryType::kMultiLineString: {
      *out += R"({"type":"MultiLineString","coordinates":[)";
      const auto& parts = g.IsEmpty() ? std::vector<Geometry>{} : g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ',';
        AppendCoordArray(out, parts[i].AsLineString(), precision);
      }
      *out += "]}";
      return;
    }
    case GeometryType::kMultiPolygon: {
      *out += R"({"type":"MultiPolygon","coordinates":[)";
      const auto& parts = g.IsEmpty() ? std::vector<Geometry>{} : g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ',';
        AppendPolygonCoords(out, parts[i].AsPolygon(), precision);
      }
      *out += "]}";
      return;
    }
    case GeometryType::kGeometryCollection: {
      *out += R"({"type":"GeometryCollection","geometries":[)";
      const auto& parts = g.IsEmpty() ? std::vector<Geometry>{} : g.Parts();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) *out += ',';
        AppendGeometry(out, parts[i], precision);
      }
      *out += "]}";
      return;
    }
  }
}

}  // namespace

std::string ToGeoJson(const Geometry& g, int precision) {
  std::string out;
  AppendGeometry(&out, g, precision);
  return out;
}

}  // namespace jackpine::geom
