#include "geom/wkb.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace jackpine::geom {

namespace {

constexpr uint8_t kLittleEndianByte = 1;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendCoord(std::string* out, const Coord& c) {
  AppendF64(out, c.x);
  AppendF64(out, c.y);
}

void AppendCoordSeq(std::string* out, const std::vector<Coord>& pts) {
  AppendU32(out, static_cast<uint32_t>(pts.size()));
  for (const Coord& c : pts) AppendCoord(out, c);
}

void WriteGeometry(std::string* out, const Geometry& g);

void WriteHeader(std::string* out, GeometryType type) {
  out->push_back(static_cast<char>(kLittleEndianByte));
  AppendU32(out, static_cast<uint32_t>(type));
}

void WriteGeometry(std::string* out, const Geometry& g) {
  WriteHeader(out, g.type());
  switch (g.type()) {
    case GeometryType::kPoint:
      if (g.IsEmpty()) {
        AppendF64(out, std::numeric_limits<double>::quiet_NaN());
        AppendF64(out, std::numeric_limits<double>::quiet_NaN());
      } else {
        AppendCoord(out, g.AsPoint());
      }
      return;
    case GeometryType::kLineString:
      AppendCoordSeq(out, g.IsEmpty() ? std::vector<Coord>{} : g.AsLineString());
      return;
    case GeometryType::kPolygon: {
      if (g.IsEmpty()) {
        AppendU32(out, 0);
        return;
      }
      const PolygonData& poly = g.AsPolygon();
      AppendU32(out, static_cast<uint32_t>(1 + poly.holes.size()));
      AppendCoordSeq(out, poly.shell);
      for (const Ring& hole : poly.holes) AppendCoordSeq(out, hole);
      return;
    }
    default: {
      const std::vector<Geometry>& parts = g.Parts();
      AppendU32(out, static_cast<uint32_t>(parts.size()));
      for (const Geometry& part : parts) WriteGeometry(out, part);
      return;
    }
  }
}

// Bounded little/big-endian reader over the WKB byte stream.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<Geometry> ReadGeometry() {
    JACKPINE_ASSIGN_OR_RETURN(uint8_t endian, ReadByte());
    if (endian > 1) return Err("bad byte-order marker");
    big_endian_ = (endian == 0);
    JACKPINE_ASSIGN_OR_RETURN(uint32_t code, ReadU32());
    // Mask off common SRID/Z flags; 2-D only.
    code &= 0xff;
    switch (static_cast<GeometryType>(code)) {
      case GeometryType::kPoint: {
        JACKPINE_ASSIGN_OR_RETURN(double x, ReadF64());
        JACKPINE_ASSIGN_OR_RETURN(double y, ReadF64());
        if (std::isnan(x) && std::isnan(y)) {
          return Geometry::MakeEmpty(GeometryType::kPoint);
        }
        return Geometry::MakePoint(x, y);
      }
      case GeometryType::kLineString: {
        JACKPINE_ASSIGN_OR_RETURN(std::vector<Coord> pts, ReadCoordSeq());
        if (pts.empty()) return Geometry::MakeEmpty(GeometryType::kLineString);
        return Geometry::MakeLineString(std::move(pts));
      }
      case GeometryType::kPolygon: {
        JACKPINE_ASSIGN_OR_RETURN(uint32_t nrings, ReadU32());
        if (nrings == 0) return Geometry::MakeEmpty(GeometryType::kPolygon);
        JACKPINE_ASSIGN_OR_RETURN(Ring shell, ReadCoordSeq());
        std::vector<Ring> holes;
        for (uint32_t i = 1; i < nrings; ++i) {
          JACKPINE_ASSIGN_OR_RETURN(Ring hole, ReadCoordSeq());
          holes.push_back(std::move(hole));
        }
        return Geometry::MakePolygon(std::move(shell), std::move(holes));
      }
      case GeometryType::kMultiPoint:
      case GeometryType::kMultiLineString:
      case GeometryType::kMultiPolygon:
      case GeometryType::kGeometryCollection: {
        const auto type = static_cast<GeometryType>(code);
        JACKPINE_ASSIGN_OR_RETURN(uint32_t nparts, ReadU32());
        if (nparts > data_.size()) return Err("part count exceeds input size");
        std::vector<Geometry> parts;
        parts.reserve(nparts);
        for (uint32_t i = 0; i < nparts; ++i) {
          JACKPINE_ASSIGN_OR_RETURN(Geometry part, ReadGeometry());
          parts.push_back(std::move(part));
        }
        if (parts.empty()) return Geometry::MakeEmpty(type);
        switch (type) {
          case GeometryType::kMultiPoint:
            return Geometry::MakeMultiPoint(std::move(parts));
          case GeometryType::kMultiLineString:
            return Geometry::MakeMultiLineString(std::move(parts));
          case GeometryType::kMultiPolygon:
            return Geometry::MakeMultiPolygon(std::move(parts));
          default:
            return Geometry::MakeCollection(std::move(parts));
        }
      }
      default:
        return Err(StrFormat("unknown WKB geometry code %u", code));
    }
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("WKB at offset %zu: %s", pos_, what.c_str()));
  }

  Result<uint8_t> ReadByte() {
    if (pos_ + 1 > data_.size()) return Err("truncated (byte)");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    if (pos_ + 4 > data_.size()) return Err("truncated (u32)");
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    if (big_endian_) v = __builtin_bswap32(v);
    return v;
  }

  Result<double> ReadF64() {
    if (pos_ + 8 > data_.size()) return Err("truncated (f64)");
    uint64_t bits;
    std::memcpy(&bits, data_.data() + pos_, 8);
    pos_ += 8;
    if (big_endian_) bits = __builtin_bswap64(bits);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<std::vector<Coord>> ReadCoordSeq() {
    JACKPINE_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (static_cast<uint64_t>(n) * 16 > data_.size() - pos_) {
      return Err("coordinate count exceeds input size");
    }
    std::vector<Coord> pts;
    pts.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      JACKPINE_ASSIGN_OR_RETURN(double x, ReadF64());
      JACKPINE_ASSIGN_OR_RETURN(double y, ReadF64());
      pts.push_back({x, y});
    }
    return pts;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool big_endian_ = false;
};

}  // namespace

std::string ToWkb(const Geometry& geometry) {
  std::string out;
  WriteGeometry(&out, geometry);
  return out;
}

Result<Geometry> FromWkb(std::string_view wkb) {
  Reader reader(wkb);
  JACKPINE_ASSIGN_OR_RETURN(Geometry g, reader.ReadGeometry());
  if (!reader.AtEnd()) {
    return Status::ParseError(
        StrFormat("WKB: %zu trailing bytes", wkb.size() - reader.pos()));
  }
  return g;
}

}  // namespace jackpine::geom
