#include "tigergen/csv_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"
#include "geom/wkt_reader.h"

namespace jackpine::tigergen {

namespace {

std::string CsvQuote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// Parses one CSV record (no embedded newlines in quoted fields).
std::vector<std::string> CsvSplit(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal(StrFormat("cannot open %s", path.c_str()));
  out << contents;
  if (!out) return Status::Internal(StrFormat("write failed: %s", path.c_str()));
  return Status::Ok();
}

Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, size_t expected_fields) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    std::vector<std::string> fields = CsvSplit(line);
    if (fields.size() != expected_fields) {
      return Status::ParseError(
          StrFormat("%s: expected %zu fields, got %zu", path.c_str(),
                    expected_fields, fields.size()));
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

Result<int64_t> ParseInt(const std::string& s) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str()) {
    return Status::ParseError(StrFormat("bad integer '%s'", s.c_str()));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) {
    return Status::ParseError(StrFormat("bad number '%s'", s.c_str()));
  }
  return v;
}

}  // namespace

Status SaveDatasetCsv(const TigerDataset& dataset,
                      const std::string& directory) {
  {
    std::string out = "fips,name,geom\n";
    for (const County& c : dataset.counties) {
      out += StrFormat("%lld,%s,%s\n", static_cast<long long>(c.fips),
                       CsvQuote(c.name).c_str(),
                       CsvQuote(c.geom.ToWkt()).c_str());
    }
    JACKPINE_RETURN_IF_ERROR(WriteFile(directory + "/county.csv", out));
  }
  {
    std::string out =
        "tlid,fullname,mtfcc,county,lfromadd,ltoadd,rfromadd,rtoadd,zip,"
        "geom\n";
    for (const Edge& e : dataset.edges) {
      out += StrFormat(
          "%lld,%s,%s,%lld,%lld,%lld,%lld,%lld,%lld,%s\n",
          static_cast<long long>(e.tlid), CsvQuote(e.fullname).c_str(),
          e.mtfcc.c_str(), static_cast<long long>(e.county_fips),
          static_cast<long long>(e.lfromadd), static_cast<long long>(e.ltoadd),
          static_cast<long long>(e.rfromadd), static_cast<long long>(e.rtoadd),
          static_cast<long long>(e.zip), CsvQuote(e.geom.ToWkt()).c_str());
    }
    JACKPINE_RETURN_IF_ERROR(WriteFile(directory + "/edges.csv", out));
  }
  {
    std::string out = "plid,fullname,mtfcc,county,geom\n";
    for (const PointLandmark& p : dataset.pointlm) {
      out += StrFormat("%lld,%s,%s,%lld,%s\n", static_cast<long long>(p.plid),
                       CsvQuote(p.fullname).c_str(), p.mtfcc.c_str(),
                       static_cast<long long>(p.county_fips),
                       CsvQuote(p.geom.ToWkt()).c_str());
    }
    JACKPINE_RETURN_IF_ERROR(WriteFile(directory + "/pointlm.csv", out));
  }
  {
    std::string out = "alid,fullname,mtfcc,county,geom\n";
    for (const AreaLandmark& a : dataset.arealm) {
      out += StrFormat("%lld,%s,%s,%lld,%s\n", static_cast<long long>(a.alid),
                       CsvQuote(a.fullname).c_str(), a.mtfcc.c_str(),
                       static_cast<long long>(a.county_fips),
                       CsvQuote(a.geom.ToWkt()).c_str());
    }
    JACKPINE_RETURN_IF_ERROR(WriteFile(directory + "/arealm.csv", out));
  }
  {
    std::string out = "awid,fullname,mtfcc,county,areasqm,geom\n";
    for (const AreaWater& w : dataset.areawater) {
      out += StrFormat("%lld,%s,%s,%lld,%.10g,%s\n",
                       static_cast<long long>(w.awid),
                       CsvQuote(w.fullname).c_str(), w.mtfcc.c_str(),
                       static_cast<long long>(w.county_fips), w.areasqm,
                       CsvQuote(w.geom.ToWkt()).c_str());
    }
    JACKPINE_RETURN_IF_ERROR(WriteFile(directory + "/areawater.csv", out));
  }
  return Status::Ok();
}

Result<TigerDataset> LoadDatasetCsv(const std::string& directory) {
  TigerDataset ds;

  JACKPINE_ASSIGN_OR_RETURN(auto county_rows,
                            ReadCsv(directory + "/county.csv", 3));
  for (const auto& f : county_rows) {
    County c;
    JACKPINE_ASSIGN_OR_RETURN(c.fips, ParseInt(f[0]));
    c.name = f[1];
    JACKPINE_ASSIGN_OR_RETURN(c.geom, geom::GeometryFromWkt(f[2]));
    ds.extent.ExpandToInclude(c.geom.envelope());
    ds.counties.push_back(std::move(c));
  }

  JACKPINE_ASSIGN_OR_RETURN(auto edge_rows,
                            ReadCsv(directory + "/edges.csv", 10));
  for (const auto& f : edge_rows) {
    Edge e;
    JACKPINE_ASSIGN_OR_RETURN(e.tlid, ParseInt(f[0]));
    e.fullname = f[1];
    e.mtfcc = f[2];
    JACKPINE_ASSIGN_OR_RETURN(e.county_fips, ParseInt(f[3]));
    JACKPINE_ASSIGN_OR_RETURN(e.lfromadd, ParseInt(f[4]));
    JACKPINE_ASSIGN_OR_RETURN(e.ltoadd, ParseInt(f[5]));
    JACKPINE_ASSIGN_OR_RETURN(e.rfromadd, ParseInt(f[6]));
    JACKPINE_ASSIGN_OR_RETURN(e.rtoadd, ParseInt(f[7]));
    JACKPINE_ASSIGN_OR_RETURN(e.zip, ParseInt(f[8]));
    JACKPINE_ASSIGN_OR_RETURN(e.geom, geom::GeometryFromWkt(f[9]));
    ds.extent.ExpandToInclude(e.geom.envelope());
    ds.edges.push_back(std::move(e));
  }

  JACKPINE_ASSIGN_OR_RETURN(auto point_rows,
                            ReadCsv(directory + "/pointlm.csv", 5));
  for (const auto& f : point_rows) {
    PointLandmark p;
    JACKPINE_ASSIGN_OR_RETURN(p.plid, ParseInt(f[0]));
    p.fullname = f[1];
    p.mtfcc = f[2];
    JACKPINE_ASSIGN_OR_RETURN(p.county_fips, ParseInt(f[3]));
    JACKPINE_ASSIGN_OR_RETURN(p.geom, geom::GeometryFromWkt(f[4]));
    ds.extent.ExpandToInclude(p.geom.envelope());
    ds.pointlm.push_back(std::move(p));
  }

  JACKPINE_ASSIGN_OR_RETURN(auto area_rows,
                            ReadCsv(directory + "/arealm.csv", 5));
  for (const auto& f : area_rows) {
    AreaLandmark a;
    JACKPINE_ASSIGN_OR_RETURN(a.alid, ParseInt(f[0]));
    a.fullname = f[1];
    a.mtfcc = f[2];
    JACKPINE_ASSIGN_OR_RETURN(a.county_fips, ParseInt(f[3]));
    JACKPINE_ASSIGN_OR_RETURN(a.geom, geom::GeometryFromWkt(f[4]));
    ds.extent.ExpandToInclude(a.geom.envelope());
    ds.arealm.push_back(std::move(a));
  }

  JACKPINE_ASSIGN_OR_RETURN(auto water_rows,
                            ReadCsv(directory + "/areawater.csv", 6));
  for (const auto& f : water_rows) {
    AreaWater w;
    JACKPINE_ASSIGN_OR_RETURN(w.awid, ParseInt(f[0]));
    w.fullname = f[1];
    w.mtfcc = f[2];
    JACKPINE_ASSIGN_OR_RETURN(w.county_fips, ParseInt(f[3]));
    JACKPINE_ASSIGN_OR_RETURN(w.areasqm, ParseDouble(f[4]));
    JACKPINE_ASSIGN_OR_RETURN(w.geom, geom::GeometryFromWkt(f[5]));
    ds.extent.ExpandToInclude(w.geom.envelope());
    ds.areawater.push_back(std::move(w));
  }

  // Reconstruct urban-centre anchors from point-landmark density on a coarse
  // grid (scenario probes only need plausible hot spots).
  if (!ds.pointlm.empty() && !ds.extent.IsNull()) {
    constexpr int kCells = 8;
    std::map<int, std::pair<int, geom::Coord>> cells;  // cell -> count, sum
    for (const PointLandmark& p : ds.pointlm) {
      const geom::Coord c = p.geom.AsPoint();
      const int cx = std::min(
          kCells - 1, static_cast<int>((c.x - ds.extent.min_x()) /
                                       std::max(ds.extent.Width(), 1e-12) *
                                       kCells));
      const int cy = std::min(
          kCells - 1, static_cast<int>((c.y - ds.extent.min_y()) /
                                       std::max(ds.extent.Height(), 1e-12) *
                                       kCells));
      auto& [count, sum] = cells[cy * kCells + cx];
      ++count;
      sum.x += c.x;
      sum.y += c.y;
    }
    std::vector<std::pair<int, geom::Coord>> ranked;
    for (auto& [cell, entry] : cells) {
      (void)cell;
      ranked.emplace_back(entry.first,
                          geom::Coord{entry.second.x / entry.first,
                                      entry.second.y / entry.first});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t i = 0; i < std::min<size_t>(4, ranked.size()); ++i) {
      ds.urban_centers.push_back(ranked[i].second);
    }
  }
  if (ds.urban_centers.empty() && !ds.extent.IsNull()) {
    ds.urban_centers.push_back(ds.extent.Center());
  }
  return ds;
}

}  // namespace jackpine::tigergen
