// Synthetic TIGER/Line-style dataset generator.
//
// The paper loads US Census TIGER/Line shapefiles for Texas (counties, all
// edges/roads, point landmarks, area landmarks, hydrography). Real TIGER
// data is a download/licensing gate for a self-contained reproduction, so
// this module generates a dataset with the same table schema and the
// statistical properties the benchmark queries exercise:
//   - counties tile the extent and share boundaries exactly (ST_Touches has
//     non-trivial answers),
//   - roads cluster around urban centres (spatial skew) and carry address
//     ranges (geocoding interpolates along them),
//   - landmarks cluster with the roads, water bodies do not,
//   - cardinality ratios follow TIGER (edges >> landmarks >> counties).
// Everything is a pure function of (seed, scale).

#ifndef JACKPINE_TIGERGEN_TIGERGEN_H_
#define JACKPINE_TIGERGEN_TIGERGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace jackpine::tigergen {

struct TigerGenOptions {
  uint64_t seed = 42;
  // Scale 1.0 ~= 4000 road edges; counts grow linearly with scale
  // (except counties, which grow with sqrt(scale) per axis).
  double scale = 1.0;
  // Extent of the synthetic state, in projected units (think km).
  double extent = 100.0;
};

struct County {
  int64_t fips = 0;
  std::string name;
  geom::Geometry geom;  // POLYGON
};

struct Edge {
  int64_t tlid = 0;
  std::string fullname;
  std::string mtfcc;  // S1100 highway / S1200 secondary / S1400 local
  int64_t county_fips = 0;
  // TIGER-style address ranges for geocoding (left/right side of the road).
  int64_t lfromadd = 0;
  int64_t ltoadd = 0;
  int64_t rfromadd = 0;
  int64_t rtoadd = 0;
  int64_t zip = 0;
  geom::Geometry geom;  // LINESTRING
};

struct PointLandmark {
  int64_t plid = 0;
  std::string fullname;
  std::string mtfcc;  // K2543 school / K3544 place of worship / ...
  int64_t county_fips = 0;
  geom::Geometry geom;  // POINT
};

struct AreaLandmark {
  int64_t alid = 0;
  std::string fullname;
  std::string mtfcc;  // K2180 park / K2540 university / ...
  int64_t county_fips = 0;
  geom::Geometry geom;  // POLYGON
};

struct AreaWater {
  int64_t awid = 0;
  std::string fullname;
  std::string mtfcc;  // H2030 lake/pond / H3010 stream
  int64_t county_fips = 0;
  double areasqm = 0.0;
  geom::Geometry geom;  // POLYGON
};

struct TigerDataset {
  std::vector<County> counties;
  std::vector<Edge> edges;
  std::vector<PointLandmark> pointlm;
  std::vector<AreaLandmark> arealm;
  std::vector<AreaWater> areawater;
  geom::Envelope extent;
  std::vector<geom::Coord> urban_centers;

  size_t TotalRows() const {
    return counties.size() + edges.size() + pointlm.size() + arealm.size() +
           areawater.size();
  }
};

TigerDataset GenerateTiger(const TigerGenOptions& options);

}  // namespace jackpine::tigergen

#endif  // JACKPINE_TIGERGEN_TIGERGEN_H_
