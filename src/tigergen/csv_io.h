// CSV persistence for TIGER-like datasets.
//
// The generator covers the self-contained reproduction; this module is the
// adoption path for real data: a TIGER/Line extract converted to five CSV
// files (county, edges, pointlm, arealm, areawater — same columns as the
// SQL schema, geometry as WKT) round-trips through these functions and then
// loads into any SUT via core::LoadDataset.

#ifndef JACKPINE_TIGERGEN_CSV_IO_H_
#define JACKPINE_TIGERGEN_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "tigergen/tigergen.h"

namespace jackpine::tigergen {

// Writes county.csv, edges.csv, pointlm.csv, arealm.csv and areawater.csv
// into `directory` (which must exist). Each file has a header row; fields
// containing commas or quotes are double-quoted.
Status SaveDatasetCsv(const TigerDataset& dataset,
                      const std::string& directory);

// Reads a dataset previously written by SaveDatasetCsv (or hand-converted
// real data with the same headers). Extent and urban centres are
// reconstructed from the data (urban centres approximated by the densest
// point-landmark cells, which is sufficient for scenario probe placement).
Result<TigerDataset> LoadDatasetCsv(const std::string& directory);

}  // namespace jackpine::tigergen

#endif  // JACKPINE_TIGERGEN_CSV_IO_H_
