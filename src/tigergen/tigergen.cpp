#include "tigergen/tigergen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace jackpine::tigergen {

using geom::Coord;
using geom::Envelope;
using geom::Geometry;
using geom::Ring;

namespace {

constexpr const char* kStreetNames[] = {
    "Oak",    "Main",   "Cedar",  "Elm",     "Pine",    "Maple",
    "Walnut", "Sunset", "Ridge",  "Lake",    "Hill",    "River",
    "Park",   "Mill",   "Spring", "Prairie", "Meadow",  "Canyon",
    "Mesa",   "Bluff",  "Juniper", "Pecan",  "Magnolia", "Laurel"};

constexpr const char* kStreetSuffixes[] = {"St", "Ave", "Rd", "Dr", "Ln",
                                           "Blvd", "Way", "Ct"};

constexpr const char* kCountyNames[] = {
    "Travis",  "Harris",   "Bexar",   "Dallas", "Tarrant", "Collin",
    "Denton",  "Hidalgo",  "El Paso", "Fort Bend", "Montgomery", "Williamson",
    "Cameron", "Nueces",   "Brazoria", "Bell",  "Galveston", "Lubbock",
    "Webb",    "Jefferson", "McLennan", "Smith", "Brazos",  "Hays"};

constexpr const char* kLandmarkNames[] = {
    "Lincoln",   "Washington", "Jefferson", "Roosevelt", "Kennedy",
    "Riverside", "Hillcrest",  "Northside", "Lakeview",  "Central"};

// Jittered lattice: county corners live on a shared grid so that adjacent
// counties share boundary vertices exactly.
struct Lattice {
  size_t nx, ny;
  double cell;
  std::vector<Coord> points;  // (nx+1) * (ny+1)

  const Coord& At(size_t i, size_t j) const { return points[j * (nx + 1) + i]; }
};

Lattice BuildLattice(size_t nx, size_t ny, double extent, Rng* rng) {
  Lattice lat;
  lat.nx = nx;
  lat.ny = ny;
  lat.cell = extent / static_cast<double>(nx);
  const double cy = extent / static_cast<double>(ny);
  for (size_t j = 0; j <= ny; ++j) {
    for (size_t i = 0; i <= nx; ++i) {
      double x = static_cast<double>(i) * lat.cell;
      double y = static_cast<double>(j) * cy;
      // Interior lattice points get jitter; the outer frame stays straight.
      if (i > 0 && i < nx) x += rng->NextDouble(-0.25, 0.25) * lat.cell;
      if (j > 0 && j < ny) y += rng->NextDouble(-0.25, 0.25) * cy;
      lat.points.push_back({x, y});
    }
  }
  return lat;
}

Geometry CountyPolygon(const Lattice& lat, size_t i, size_t j) {
  Ring ring = {lat.At(i, j), lat.At(i + 1, j), lat.At(i + 1, j + 1),
               lat.At(i, j + 1), lat.At(i, j)};
  auto poly = Geometry::MakePolygon(std::move(ring));
  assert(poly.ok());
  return std::move(poly).value();
}

// Picks a location: with probability `urban_bias`, gaussian around an urban
// centre; otherwise uniform in the county cell.
Coord PickLocation(const Envelope& cell,
                   const std::vector<Coord>& urban_centers, double urban_bias,
                   double urban_sigma, Rng* rng) {
  if (!urban_centers.empty() && rng->NextBool(urban_bias)) {
    // Choose the nearest urban centre to this cell (weighted jitter).
    const Coord center = cell.Center();
    size_t best = 0;
    double best_d = 1e300;
    for (size_t u = 0; u < urban_centers.size(); ++u) {
      const double d = geom::DistanceSquared(center, urban_centers[u]);
      if (d < best_d) {
        best_d = d;
        best = u;
      }
    }
    const Coord& u = urban_centers[best];
    Coord c{u.x + rng->NextGaussian() * urban_sigma,
            u.y + rng->NextGaussian() * urban_sigma};
    if (cell.Contains(c)) return c;
    // Fall through to uniform if the gaussian left the county.
  }
  return {rng->NextDouble(cell.min_x(), cell.max_x()),
          rng->NextDouble(cell.min_y(), cell.max_y())};
}

// A wiggly polyline from `from` towards a random direction.
std::vector<Coord> RandomRoadPath(const Coord& from, double typical_length,
                                  const Envelope& clip, Rng* rng) {
  const int segments = static_cast<int>(rng->NextInt(2, 8));
  const double heading0 = rng->NextDouble(0.0, 2.0 * M_PI);
  const double step = typical_length / segments;
  std::vector<Coord> pts = {from};
  double heading = heading0;
  for (int s = 0; s < segments; ++s) {
    heading += rng->NextDouble(-0.5, 0.5);
    Coord next{pts.back().x + std::cos(heading) * step * rng->NextDouble(0.6, 1.4),
               pts.back().y + std::sin(heading) * step * rng->NextDouble(0.6, 1.4)};
    next.x = std::clamp(next.x, clip.min_x(), clip.max_x());
    next.y = std::clamp(next.y, clip.min_y(), clip.max_y());
    if (next != pts.back()) pts.push_back(next);
  }
  return pts;
}

// A blobby polygon: a circle with radial noise.
Geometry BlobPolygon(const Coord& center, double radius, Rng* rng) {
  const int n = static_cast<int>(rng->NextInt(8, 16));
  Ring ring;
  const double phase = rng->NextDouble(0.0, 2.0 * M_PI);
  for (int i = 0; i < n; ++i) {
    const double t = phase + 2.0 * M_PI * i / n;
    const double r = radius * rng->NextDouble(0.6, 1.3);
    ring.push_back({center.x + r * std::cos(t), center.y + r * std::sin(t)});
  }
  ring.push_back(ring.front());
  auto poly = Geometry::MakePolygon(std::move(ring));
  if (!poly.ok()) {
    // Radial construction is always simple; this is a safety net.
    return Geometry::MakeRectangle(
        Envelope(center.x - radius, center.y - radius, center.x + radius,
                 center.y + radius));
  }
  return std::move(poly).value();
}

std::string PickName(Rng* rng, const char* const* names, size_t count,
                     const char* const* suffixes, size_t suffix_count) {
  std::string out = names[rng->NextBounded(count)];
  if (suffixes != nullptr) {
    out += ' ';
    out += suffixes[rng->NextBounded(suffix_count)];
  }
  return out;
}

}  // namespace

TigerDataset GenerateTiger(const TigerGenOptions& options) {
  TigerDataset ds;
  Rng rng(options.seed);
  const double extent = options.extent;
  ds.extent = Envelope(0, 0, extent, extent);

  // --- Counties: jittered lattice tiling --------------------------------
  const auto grid_n = static_cast<size_t>(
      std::max(2.0, std::round(6.0 * std::sqrt(options.scale))));
  Rng county_rng = rng.Fork();
  const Lattice lat = BuildLattice(grid_n, grid_n, extent, &county_rng);
  for (size_t j = 0; j < grid_n; ++j) {
    for (size_t i = 0; i < grid_n; ++i) {
      County c;
      c.fips = 48001 + static_cast<int64_t>(j * grid_n + i) * 2;
      const size_t name_idx = (j * grid_n + i) % std::size(kCountyNames);
      c.name = StrFormat("%s %zu", kCountyNames[name_idx], j * grid_n + i);
      c.geom = CountyPolygon(lat, i, j);
      ds.counties.push_back(std::move(c));
    }
  }

  // --- Urban centres: spatial skew anchors ------------------------------
  Rng urban_rng = rng.Fork();
  const auto n_urban = static_cast<size_t>(
      std::max(2.0, std::round(4.0 * std::sqrt(options.scale))));
  for (size_t u = 0; u < n_urban; ++u) {
    ds.urban_centers.push_back({urban_rng.NextDouble(0.1, 0.9) * extent,
                                urban_rng.NextDouble(0.1, 0.9) * extent});
  }
  const double urban_sigma = extent * 0.04;

  // --- Roads (edges) ------------------------------------------------------
  Rng road_rng = rng.Fork();
  const auto n_local = static_cast<size_t>(3200.0 * options.scale);
  const auto n_secondary = static_cast<size_t>(600.0 * options.scale);
  const auto n_highway = static_cast<size_t>(200.0 * options.scale);
  int64_t tlid = 100000;
  int64_t house_number = 100;

  auto county_of = [&](const Coord& c) -> int64_t {
    // The lattice is regular enough that the cell index is a good first
    // guess; fall back to scanning neighbours.
    for (const County& county : ds.counties) {
      if (county.geom.envelope().Contains(c)) return county.fips;
    }
    return ds.counties.front().fips;
  };

  auto add_road = [&](const char* mtfcc, double typical_length,
                      double urban_bias) {
    const Coord anchor =
        PickLocation(ds.extent, ds.urban_centers, urban_bias, urban_sigma,
                     &road_rng);
    std::vector<Coord> path =
        RandomRoadPath(anchor, typical_length, ds.extent, &road_rng);
    auto line = Geometry::MakeLineString(std::move(path));
    if (!line.ok()) return;
    Edge e;
    e.tlid = tlid++;
    e.fullname = PickName(&road_rng, kStreetNames, std::size(kStreetNames),
                          kStreetSuffixes, std::size(kStreetSuffixes));
    e.mtfcc = mtfcc;
    e.geom = std::move(line).value();
    e.county_fips = county_of(e.geom.envelope().Center());
    // Even numbers on the left, odd on the right, 100-per-block style.
    const int64_t block = house_number;
    house_number += 100;
    if (house_number > 99000) house_number = 100;
    e.lfromadd = block;
    e.ltoadd = block + 98;
    e.rfromadd = block + 1;
    e.rtoadd = block + 99;
    e.zip = 73000 + static_cast<int64_t>(road_rng.NextBounded(999));
    ds.edges.push_back(std::move(e));
  };

  for (size_t i = 0; i < n_local; ++i) {
    add_road("S1400", extent * 0.01, /*urban_bias=*/0.75);
  }
  for (size_t i = 0; i < n_secondary; ++i) {
    add_road("S1200", extent * 0.04, /*urban_bias=*/0.5);
  }
  // Highways connect pairs of urban centres.
  for (size_t i = 0; i < n_highway; ++i) {
    const size_t a = road_rng.NextBounded(ds.urban_centers.size());
    size_t b = road_rng.NextBounded(ds.urban_centers.size());
    if (b == a) b = (b + 1) % ds.urban_centers.size();
    const Coord& ca = ds.urban_centers[a];
    const Coord& cb = ds.urban_centers[b];
    std::vector<Coord> path = {ca};
    const int hops = 6;
    for (int h = 1; h < hops; ++h) {
      const double t = static_cast<double>(h) / hops;
      path.push_back({ca.x + (cb.x - ca.x) * t +
                          road_rng.NextGaussian() * extent * 0.005,
                      ca.y + (cb.y - ca.y) * t +
                          road_rng.NextGaussian() * extent * 0.005});
    }
    path.push_back(cb);
    auto line = Geometry::MakeLineString(std::move(path));
    if (!line.ok()) continue;
    Edge e;
    e.tlid = tlid++;
    e.fullname = StrFormat("State Hwy %zu", 1 + i % 180);
    e.mtfcc = "S1100";
    e.geom = std::move(line).value();
    e.county_fips = county_of(e.geom.envelope().Center());
    e.lfromadd = e.ltoadd = e.rfromadd = e.rtoadd = 0;  // no addressing
    e.zip = 73000 + static_cast<int64_t>(road_rng.NextBounded(999));
    ds.edges.push_back(std::move(e));
  }

  // --- Point landmarks ------------------------------------------------------
  Rng pt_rng = rng.Fork();
  const auto n_pointlm = static_cast<size_t>(800.0 * options.scale);
  constexpr const char* kPointMtfcc[] = {"K2543", "K3544", "K2165", "K1231"};
  constexpr const char* kPointKinds[] = {"School", "Church", "City Hall",
                                         "Hospital"};
  for (size_t i = 0; i < n_pointlm; ++i) {
    PointLandmark p;
    p.plid = 500000 + static_cast<int64_t>(i);
    const size_t kind = pt_rng.NextBounded(std::size(kPointMtfcc));
    p.mtfcc = kPointMtfcc[kind];
    p.fullname = StrFormat(
        "%s %s",
        kLandmarkNames[pt_rng.NextBounded(std::size(kLandmarkNames))],
        kPointKinds[kind]);
    const Coord c = PickLocation(ds.extent, ds.urban_centers,
                                 /*urban_bias=*/0.7, urban_sigma, &pt_rng);
    p.geom = Geometry::MakePoint(c);
    p.county_fips = county_of(c);
    ds.pointlm.push_back(std::move(p));
  }

  // --- Area landmarks -------------------------------------------------------
  Rng area_rng = rng.Fork();
  const auto n_arealm = static_cast<size_t>(300.0 * options.scale);
  constexpr const char* kAreaMtfcc[] = {"K2180", "K2540", "K2181"};
  constexpr const char* kAreaKinds[] = {"Park", "University", "Cemetery"};
  for (size_t i = 0; i < n_arealm; ++i) {
    AreaLandmark a;
    a.alid = 700000 + static_cast<int64_t>(i);
    const size_t kind = area_rng.NextBounded(std::size(kAreaMtfcc));
    a.mtfcc = kAreaMtfcc[kind];
    a.fullname = StrFormat(
        "%s %s",
        kLandmarkNames[area_rng.NextBounded(std::size(kLandmarkNames))],
        kAreaKinds[kind]);
    const Coord c = PickLocation(ds.extent, ds.urban_centers,
                                 /*urban_bias=*/0.6, urban_sigma, &area_rng);
    a.geom = BlobPolygon(c, extent * area_rng.NextDouble(0.003, 0.012),
                         &area_rng);
    a.county_fips = county_of(c);
    ds.arealm.push_back(std::move(a));
  }

  // --- Hydrography -----------------------------------------------------------
  Rng water_rng = rng.Fork();
  const auto n_water = static_cast<size_t>(150.0 * options.scale);
  for (size_t i = 0; i < n_water; ++i) {
    AreaWater w;
    w.awid = 900000 + static_cast<int64_t>(i);
    const bool lake = water_rng.NextBool(0.8);
    w.mtfcc = lake ? "H2030" : "H3010";
    w.fullname = StrFormat(
        "%s %s",
        kLandmarkNames[water_rng.NextBounded(std::size(kLandmarkNames))],
        lake ? "Lake" : "Creek");
    // Water avoids urban cores: uniform placement.
    const Coord c{water_rng.NextDouble(0.05, 0.95) * extent,
                  water_rng.NextDouble(0.05, 0.95) * extent};
    const double radius = extent * water_rng.NextDouble(0.004, lake ? 0.03 : 0.01);
    w.geom = BlobPolygon(c, radius, &water_rng);
    w.areasqm = 0.0;  // filled below from the true area
    w.county_fips = county_of(c);
    ds.areawater.push_back(std::move(w));
  }
  for (AreaWater& w : ds.areawater) {
    // Shoelace over the shell (holes are not generated for water).
    const Ring& shell = w.geom.AsPolygon().shell;
    w.areasqm = std::abs(geom::SignedRingArea(shell)) * 1e6;
  }

  return ds;
}

}  // namespace jackpine::tigergen
