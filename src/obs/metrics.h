// The metrics registry: lock-cheap counters, gauges and fixed-bucket latency
// histograms (DESIGN.md "Observability").
//
// Design constraints, in order:
//   1. The query hot path may touch a metric at most as an atomic add —
//      never a mutex, never an allocation. Registration (name lookup) is the
//      only synchronised operation, and callers do it once, caching the
//      returned pointer.
//   2. Pointers handed out by a Registry are stable for the registry's
//      lifetime, so a Database or Server can resolve its instruments in its
//      constructor and increment them freely from any thread.
//   3. Snapshots are linearisation-free: readers see each atomic's current
//      value, which is exactly as consistent as Prometheus-style scraping
//      needs to be.
//
// Histograms use fixed bucket upper bounds (geometric by default, 1 us to
// ~100 s for latencies) and extract percentiles by linear interpolation
// within the winning bucket — the same trade every fixed-bucket metrics
// system makes: O(1) record cost, bounded memory, percentile error bounded
// by bucket width.

#ifndef JACKPINE_OBS_METRICS_H_
#define JACKPINE_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jackpine::obs {

// Monotonic counter. All operations are relaxed atomics: callers only ever
// aggregate totals, never synchronise through a counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written-value gauge (stored as double bits so Set/value stay a single
// atomic word operation).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram. Observe() is one binary search over the immutable
// bounds plus two relaxed adds — no lock, no allocation.
class Histogram {
 public:
  // `bounds` are inclusive upper bounds of the finite buckets, strictly
  // increasing; one implicit overflow bucket catches everything above the
  // last bound. An empty `bounds` falls back to DefaultLatencyBounds().
  explicit Histogram(std::vector<double> bounds = {});

  // Geometric bounds from 1 us to ~100 s (x2 per bucket), the span a spatial
  // query latency plausibly occupies.
  static std::vector<double> DefaultLatencyBounds();

  // Power-of-two bounds 1, 2, 4, ..., 2^(buckets-1): the natural shape for
  // small-integer distributions like the shard router's per-query fanout.
  static std::vector<double> PowerOfTwoBounds(size_t buckets);

  void Observe(double v);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;       // finite bucket upper bounds
    std::vector<uint64_t> buckets;    // bounds.size() + 1 (overflow last)
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    // Percentile by linear interpolation inside the winning bucket;
    // q in [0, 1]. Empty histogram yields 0.
    double Quantile(double q) const;
    double p50() const { return Quantile(0.50); }
    double p95() const { return Quantile(0.95); }
    double p99() const { return Quantile(0.99); }
  };
  Snapshot snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  // Sum accumulates as double bits under CAS; contention is per-histogram
  // and the benchmark observes latencies per query, not per row.
  std::atomic<uint64_t> sum_bits_{0};
};

// Name -> instrument registry. GetCounter/GetGauge/GetHistogram take a mutex
// once per distinct name per caller (callers cache the pointer); the
// instruments themselves are lock-free. A name keeps its first-registered
// kind: asking for the same name as a different kind returns nullptr, which
// is a programming error surfaced loudly in tests rather than a silent
// aliasing bug.
class Registry {
 public:
  // `help` becomes the Prometheus `# HELP` text; it applies only when the
  // instrument is first created (like `bounds`) and an empty help falls
  // back to a generated line naming the registry entry.
  Counter* GetCounter(const std::string& name, std::string_view help = "");
  Gauge* GetGauge(const std::string& name, std::string_view help = "");
  // `bounds` applies only when the histogram is first created.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {},
                          std::string_view help = "");

  // Numeric snapshot of every instrument, sorted by name. Counters and
  // gauges yield one entry; a histogram yields <name>.count / .mean_s /
  // .p50_s / .p95_s / .p99_s so the whole registry flattens into the same
  // (name, double) entry list the wire STATS frame and the JSON export use.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  // Aligned "name value" text rendering of Snapshot(), for \stats and logs.
  std::string Render() const;

  // Prometheus text exposition (version 0.0.4) with full instrument
  // fidelity: counters as `counter`, gauges as `gauge`, histograms as
  // `histogram` with cumulative `_bucket{le="..."}` series plus `_sum` and
  // `_count`. Every family gets a `# HELP` line before its `# TYPE`. Names
  // are sanitized (dots become underscores) and prefixed; two registry
  // names whose sanitized forms collide are de-duplicated deterministically
  // (the first in registration-name order keeps the family, later ones get
  // a numeric `_2`, `_3`, ... suffix) so the exposition never emits one
  // family twice. `build_info` prepends the jackpine_build_info /
  // jackpine_uptime_seconds preamble (RenderPromPreamble); pass false when
  // concatenating several renderings into one exposition.
  std::string RenderProm(std::string_view prefix = "jackpine_",
                         bool build_info = true) const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  // registration order

  Entry* FindLocked(const std::string& name);
};

// The process-wide registry. Engine and server instruments live here so one
// STATS scrape sees every subsystem.
Registry& GlobalRegistry();

// A metric name made Prometheus-legal: `prefix` prepended, every character
// outside [a-zA-Z0-9_:] replaced by '_' (so "server.queries" becomes
// "jackpine_server_queries").
std::string PromName(std::string_view name, std::string_view prefix);

// Prometheus exposition of a flat (name, value) entry list — the shape a
// wire Stats scrape yields, where instrument kinds are already flattened
// away, so every entry exposes as an untyped-but-annotated gauge (with a
// `# HELP` line, colliding sanitized names de-duplicated the same way
// Registry::RenderProm does). Used by `pinedb stats --prom`; for a local
// registry prefer Registry::RenderProm, which keeps counter/histogram
// typing. `build_info` as in RenderProm.
std::string RenderPromEntries(
    const std::vector<std::pair<std::string, double>>& entries,
    std::string_view prefix = "jackpine_", bool build_info = true);

// Build identity, baked in at configure time (root CMakeLists.txt passes
// JACKPINE_VERSION / JACKPINE_GIT_SHA; "unknown" outside a git checkout).
std::string_view BuildVersion();
std::string_view BuildGitSha();

// Seconds since this process initialised the obs library (static init), the
// value behind jackpine_uptime_seconds.
double ProcessUptimeSeconds();

// The exposition preamble both Render paths emit: jackpine_build_info
// {version,git_sha} (constant 1) and jackpine_uptime_seconds, each with
// HELP/TYPE lines. Exposed so composed expositions (the HTTP /metrics
// endpoint concatenates a typed registry rendering with flat server
// entries) can emit it exactly once.
std::string RenderPromPreamble(std::string_view prefix = "jackpine_");

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_METRICS_H_
