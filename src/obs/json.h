// A minimal JSON value tree: writer + strict recursive-descent parser.
//
// Exists so the benchmark can export machine-readable reports
// (benchmark_runner --json) and validate them in tests without any external
// dependency. Deliberately small: UTF-8 pass-through (no \uXXXX synthesis
// beyond what the input carries), doubles for all numbers (exact for
// integers up to 2^53 — every counter the harness exports), and objects that
// preserve insertion order so emitted documents are stable and diffable.
//
// The parser is defensive in the same way the wire decoders are: malformed
// input yields a clean kParseError naming the offset, never a crash or an
// unbounded recursion (depth is capped).

#ifndef JACKPINE_OBS_JSON_H_
#define JACKPINE_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace jackpine::obs {

class Json {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Int(int64_t v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  Json& Append(Json v);  // returns the appended element

  // Object access. Get() returns null (a shared static) for missing keys.
  const std::vector<std::pair<std::string, Json>>& items() const {
    return object_;
  }
  const Json& Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  Json& Set(std::string key, Json v);  // returns the inserted value

  // Serialises compactly (no whitespace) or with 2-space indentation.
  std::string Dump(bool pretty = false) const;

  // Strict parse of exactly one JSON document (trailing non-space rejected).
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, bool pretty, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_JSON_H_
