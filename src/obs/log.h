// Leveled structured logging: one line per event, text or JSON-lines
// (DESIGN.md "Observability").
//
// The pinedb binary and the shard router used to narrate through scattered
// fprintf(stderr, ...); this gives those call sites a shared sink with a
// level gate, a component tag, and machine-parseable key/value fields:
//
//   text:  [2026-08-09T12:00:00.123Z] WARN  server: shedding connection
//          retry_after_ms=250
//   json:  {"ts":"2026-08-09T12:00:00.123Z","level":"warn",
//          "component":"server","msg":"shedding connection",
//          "retry_after_ms":"250"}
//
// Levels gate cheaply (one relaxed atomic load before any formatting); the
// line itself is assembled off to the side and written with a single
// fwrite, so concurrent sessions never interleave partial lines. The
// global logger defaults to text at kInfo on stderr; `pinedb serve
// --log-json --log-level debug` reconfigures it at startup.

#ifndef JACKPINE_OBS_LOG_H_
#define JACKPINE_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace jackpine::obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "debug" / "info" / "warn" / "error" (case-insensitive); nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(std::string_view name);
const char* LogLevelName(LogLevel level);  // lower-case, stable

// One key/value field on a log line. Values are strings — callers format
// numbers with StrFormat, which keeps this layer allocation-simple and the
// JSON emission trivially correct.
struct LogField {
  std::string_view key;
  std::string value;
};

class Logger {
 public:
  // The process-wide logger (text, kInfo, stderr until reconfigured).
  static Logger& Global();

  void Configure(LogLevel min_level, bool json, std::FILE* sink = stderr);

  bool enabled(LogLevel level) const {
    return static_cast<uint8_t>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool json() const { return json_.load(std::memory_order_relaxed); }

  void Log(LogLevel level, std::string_view component, std::string_view msg,
           std::initializer_list<LogField> fields = {});

  // Renders the line without writing it (tests assert on exact output).
  std::string Format(LogLevel level, std::string_view component,
                     std::string_view msg,
                     std::initializer_list<LogField> fields = {}) const;

 private:
  std::atomic<uint8_t> min_level_{static_cast<uint8_t>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::mutex mu_;  // serialises sink writes only
  std::FILE* sink_ = stderr;
};

// Convenience wrappers over Logger::Global().
void LogDebug(std::string_view component, std::string_view msg,
              std::initializer_list<LogField> fields = {});
void LogInfo(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {});
void LogWarn(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {});
void LogError(std::string_view component, std::string_view msg,
              std::initializer_list<LogField> fields = {});

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_LOG_H_
