#include "obs/span.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jackpine::obs {

namespace {

std::chrono::steady_clock::time_point SpanEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// splitmix64: turns the sequential id counter into well-spread 64-bit ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string HexId(uint64_t id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

}  // namespace

double SpanNowS() { return ToSpanSeconds(std::chrono::steady_clock::now()); }

double ToSpanSeconds(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double>(tp - SpanEpoch()).count();
}

uint32_t CurrentThreadLane() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    recorder_ = other.recorder_;
    record_ = std::move(other.record_);
    other.recorder_ = nullptr;
  }
  return *this;
}

void Span::Annotate(std::string_view key, std::string_view value) {
  if (recorder_ == nullptr) return;
  if (record_.annotations.size() >= kMaxSpanAnnotations) return;
  record_.annotations.emplace_back(std::string(key), std::string(value));
}

void Span::End() {
  if (recorder_ == nullptr) return;
  SpanRecorder* recorder = recorder_;
  recorder_ = nullptr;
  record_.end_s = SpanNowS();
  recorder->Record(std::move(record_));
}

SpanRecorder::SpanRecorder(size_t capacity)
    : shard_capacity_(std::max<size_t>(1, capacity / kShards)),
      dropped_counter_(GlobalRegistry().GetCounter("obs.spans_dropped")) {
  // Salt the id sequence per recorder so the client's and a server
  // session's ids stay distinct in one merged timeline.
  id_salt_ = Mix64(reinterpret_cast<uintptr_t>(this)) ^
             Mix64(static_cast<uint64_t>(
                 std::chrono::steady_clock::now().time_since_epoch().count()));
}

uint64_t SpanRecorder::NewSpanId() {
  uint64_t id =
      Mix64(id_salt_ ^ next_id_.fetch_add(1, std::memory_order_relaxed));
  // 0 is the "no id" sentinel (untraced / no parent); skip it.
  if (id == 0) id = 1;
  return id;
}

Span SpanRecorder::StartSpan(std::string_view name, uint64_t trace_id,
                             uint64_t parent_id) {
  Span span;
  if (!enabled()) return span;
  span.recorder_ = this;
  span.record_.trace_id = trace_id;
  span.record_.span_id = NewSpanId();
  span.record_.parent_id = parent_id;
  span.record_.thread = CurrentThreadLane();
  span.record_.start_s = SpanNowS();
  span.record_.name = std::string(name);
  return span;
}

void SpanRecorder::Record(SpanRecord record) {
  if (!enabled()) return;
  if (record.thread == 0) record.thread = CurrentThreadLane();
  if (record.annotations.size() > kMaxSpanAnnotations) {
    record.annotations.resize(kMaxSpanAnnotations);
  }
  Shard& shard = shards_[std::hash<std::thread::id>{}(
                             std::this_thread::get_id()) %
                         kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.buf.size() < shard_capacity_) {
      shard.buf.push_back(std::move(record));
      return;
    }
  }
  // Full shard: drop loudly — the counter is in the global registry, so
  // `pinedb stats` and the Prometheus exposition both surface it.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  dropped_counter_->Add();
}

std::vector<SpanRecord> SpanRecorder::Drain() {
  std::vector<SpanRecord> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (SpanRecord& r : shard.buf) out.push_back(std::move(r));
    shard.buf.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_s < b.start_s;
            });
  return out;
}

size_t SpanRecorder::buffered() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    n += shard.buf.size();
  }
  return n;
}

SpanRecorder& GlobalSpanRecorder() {
  static SpanRecorder& recorder = *new SpanRecorder();
  return recorder;
}

void ShiftSpans(std::vector<SpanRecord>* spans, double offset_s,
                uint32_t process) {
  for (SpanRecord& s : *spans) {
    s.start_s -= offset_s;
    s.end_s -= offset_s;
    s.process = process;
  }
}

void RecordStageSpans(SpanRecorder* recorder, uint64_t trace_id,
                      uint64_t parent_id, double anchor_s,
                      const QueryTrace& trace) {
  if (recorder == nullptr || !recorder->enabled()) return;
  const std::pair<const char*, double> stages[] = {
      {"engine.parse", trace.parse_s},
      {"engine.plan", trace.plan_s},
      {"engine.exec", trace.exec_s},
  };
  double t = anchor_s;
  for (const auto& [name, seconds] : stages) {
    if (seconds <= 0.0) continue;
    SpanRecord r;
    r.trace_id = trace_id;
    r.span_id = recorder->NewSpanId();
    r.parent_id = parent_id;
    r.start_s = t;
    r.end_s = t + seconds;
    r.name = name;
    recorder->Record(std::move(r));
    t += seconds;
  }
}

Json SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  Json doc = Json::Object();
  doc.Set("displayTimeUnit", Json::Str("ms"));
  Json& events = doc.Set("traceEvents", Json::Array());

  // Normalize to the earliest span so the viewer opens at t=0 and
  // offset-corrected times (which may be tiny or negative relative to the
  // span epoch) stay well-formed.
  double t0 = 0.0;
  bool first = true;
  std::vector<uint32_t> processes;
  for (const SpanRecord& s : spans) {
    if (first || s.start_s < t0) t0 = s.start_s;
    first = false;
    if (std::find(processes.begin(), processes.end(), s.process) ==
        processes.end()) {
      processes.push_back(s.process);
    }
  }
  std::sort(processes.begin(), processes.end());

  for (uint32_t p : processes) {
    Json& meta = events.Append(Json::Object());
    meta.Set("name", Json::Str("process_name"));
    meta.Set("ph", Json::Str("M"));
    meta.Set("pid", Json::Int(static_cast<int64_t>(p)));
    meta.Set("tid", Json::Int(0));
    Json& args = meta.Set("args", Json::Object());
    args.Set("name", Json::Str(p == 0 ? "client" : "server"));
  }

  for (const SpanRecord& s : spans) {
    Json& ev = events.Append(Json::Object());
    ev.Set("name", Json::Str(s.name));
    ev.Set("ph", Json::Str("X"));
    ev.Set("ts", Json::Number((s.start_s - t0) * 1e6));
    ev.Set("dur", Json::Number(std::max(0.0, s.end_s - s.start_s) * 1e6));
    ev.Set("pid", Json::Int(static_cast<int64_t>(s.process)));
    ev.Set("tid", Json::Int(static_cast<int64_t>(s.thread)));
    Json& args = ev.Set("args", Json::Object());
    args.Set("trace_id", Json::Str(HexId(s.trace_id)));
    args.Set("span_id", Json::Str(HexId(s.span_id)));
    if (s.parent_id != 0) {
      args.Set("parent_id", Json::Str(HexId(s.parent_id)));
    }
    for (const auto& [key, value] : s.annotations) {
      args.Set(key, Json::Str(value));
    }
  }
  return doc;
}

}  // namespace jackpine::obs
