#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/string_util.h"

#ifndef JACKPINE_VERSION
#define JACKPINE_VERSION "unknown"
#endif
#ifndef JACKPINE_GIT_SHA
#define JACKPINE_GIT_SHA "unknown"
#endif

namespace jackpine::obs {

namespace {

// Captured at static init, which is as close to process start as a library
// can observe without main() cooperation.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

// HELP text is free-form but backslashes and newlines must be escaped in
// the 0.0.4 text format.
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Deterministic de-dup of sanitized names: `rows` must already be sorted by
// (sanitized name, source-name tiebreak). Walking in that order, the first
// holder of each sanitized form keeps the family and every later collider
// gets the lowest free _2, _3, ... suffix — the output depends only on the
// set of source names, never on registration order.
template <typename Row>
void DedupPromNames(std::vector<Row>* rows) {
  std::vector<std::string> taken;
  taken.reserve(rows->size());
  for (Row& row : *rows) {
    std::string candidate = row.name;
    size_t suffix = 2;
    while (std::find(taken.begin(), taken.end(), candidate) != taken.end()) {
      candidate = row.name + StrFormat("_%zu", suffix++);
    }
    row.name = std::move(candidate);
    taken.push_back(row.name);
  }
}

}  // namespace

std::string_view BuildVersion() { return JACKPINE_VERSION; }
std::string_view BuildGitSha() { return JACKPINE_GIT_SHA; }

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kProcessStart)
      .count();
}

std::string RenderPromPreamble(std::string_view prefix) {
  std::string out;
  const std::string build = PromName("build_info", prefix);
  const std::string uptime = PromName("uptime_seconds", prefix);
  out += StrFormat(
      "# HELP %s Build identity of this jackpine process (constant 1).\n"
      "# TYPE %s gauge\n"
      "%s{version=\"%.*s\",git_sha=\"%.*s\"} 1\n",
      build.c_str(), build.c_str(), build.c_str(),
      static_cast<int>(BuildVersion().size()), BuildVersion().data(),
      static_cast<int>(BuildGitSha().size()), BuildGitSha().data());
  out += StrFormat(
      "# HELP %s Seconds since this process started.\n"
      "# TYPE %s gauge\n"
      "%s %.9g\n",
      uptime.c_str(), uptime.c_str(), uptime.c_str(), ProcessUptimeSeconds());
  return out;
}

Histogram::Histogram(std::vector<double> bounds) {
  bounds_ = bounds.empty() ? DefaultLatencyBounds() : std::move(bounds);
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 100.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::PowerOfTwoBounds(size_t buckets) {
  std::vector<double> bounds;
  double b = 1.0;
  for (size_t i = 0; i < buckets; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t new_bits =
        std::bit_cast<uint64_t>(std::bit_cast<double>(old_bits) + v);
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based), then walk buckets.
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lower, upper) of this bucket. The overflow
      // bucket has no upper bound; report its lower bound (the histogram
      // cannot resolve further).
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lower;
      const double upper = bounds[i];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::min(std::max(into, 0.0), 1.0);
    }
    seen = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Registry::Entry* Registry::FindLocked(const std::string& name) {
  for (auto& [n, e] : entries_) {
    if (n == name) return &e;
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name,
                              std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kCounter ? e->counter.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.help = std::string(help);
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.help = std::string(help);
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kHistogram ? e->histogram.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.help = std::string(help);
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

std::vector<std::pair<std::string, double>> Registry::Snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, e] : entries_) {
      switch (e.kind) {
        case Kind::kCounter:
          out.emplace_back(name, static_cast<double>(e.counter->value()));
          break;
        case Kind::kGauge:
          out.emplace_back(name, e.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = e.histogram->snapshot();
          out.emplace_back(name + ".count", static_cast<double>(s.count));
          out.emplace_back(name + ".mean_s", s.mean());
          out.emplace_back(name + ".p50_s", s.p50());
          out.emplace_back(name + ".p95_s", s.p95());
          out.emplace_back(name + ".p99_s", s.p99());
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::Render() const {
  const auto entries = Snapshot();
  size_t width = 0;
  for (const auto& [name, value] : entries) {
    width = std::max(width, name.size());
  }
  std::string out;
  for (const auto& [name, value] : entries) {
    out += StrFormat("%-*s  %.9g\n", static_cast<int>(width), name.c_str(),
                     value);
  }
  return out;
}

std::string Registry::RenderProm(std::string_view prefix,
                                 bool build_info) const {
  // Copy the instrument pointers under the lock, render outside it: the
  // instruments are lock-free and live for the registry's lifetime.
  struct Row {
    std::string name;
    std::string source;  // the registry name, for HELP and dedup tiebreak
    std::string help;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, e] : entries_) {
      rows.push_back(Row{PromName(name, prefix), name, e.help, e.kind,
                         e.counter.get(), e.gauge.get(), e.histogram.get()});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.source < b.source;
  });
  DedupPromNames(&rows);
  std::string out;
  if (build_info) out += RenderPromPreamble(prefix);
  for (const Row& row : rows) {
    const std::string help = EscapeHelp(
        row.help.empty() ? StrFormat("jackpine metric %s", row.source.c_str())
                         : row.help);
    out += StrFormat("# HELP %s %s\n", row.name.c_str(), help.c_str());
    switch (row.kind) {
      case Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n%s %llu\n", row.name.c_str(),
                         row.name.c_str(),
                         static_cast<unsigned long long>(row.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n%s %.9g\n", row.name.c_str(),
                         row.name.c_str(), row.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = row.histogram->snapshot();
        out += StrFormat("# TYPE %s histogram\n", row.name.c_str());
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += StrFormat("%s_bucket{le=\"%.9g\"} %llu\n", row.name.c_str(),
                           s.bounds[i],
                           static_cast<unsigned long long>(cumulative));
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", row.name.c_str(),
                         static_cast<unsigned long long>(s.count));
        out += StrFormat("%s_sum %.9g\n", row.name.c_str(), s.sum);
        out += StrFormat("%s_count %llu\n", row.name.c_str(),
                         static_cast<unsigned long long>(s.count));
        break;
      }
    }
  }
  return out;
}

std::string PromName(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string RenderPromEntries(
    const std::vector<std::pair<std::string, double>>& entries,
    std::string_view prefix, bool build_info) {
  struct Row {
    std::string name;
    std::string source;
    double value;
  };
  std::vector<Row> rows;
  rows.reserve(entries.size());
  for (const auto& [name, value] : entries) {
    rows.push_back(Row{PromName(name, prefix), name, value});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.source < b.source;
  });
  DedupPromNames(&rows);
  std::string out;
  if (build_info) out += RenderPromPreamble(prefix);
  for (const Row& row : rows) {
    out += StrFormat("# HELP %s jackpine stats entry %s\n", row.name.c_str(),
                     EscapeHelp(row.source).c_str());
    out += StrFormat("# TYPE %s gauge\n%s %.9g\n", row.name.c_str(),
                     row.name.c_str(), row.value);
  }
  return out;
}

Registry& GlobalRegistry() {
  static Registry& registry = *new Registry();
  return registry;
}

}  // namespace jackpine::obs
