#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/string_util.h"

namespace jackpine::obs {

Histogram::Histogram(std::vector<double> bounds) {
  bounds_ = bounds.empty() ? DefaultLatencyBounds() : std::move(bounds);
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 100.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::PowerOfTwoBounds(size_t buckets) {
  std::vector<double> bounds;
  double b = 1.0;
  for (size_t i = 0; i < buckets; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t new_bits =
        std::bit_cast<uint64_t>(std::bit_cast<double>(old_bits) + v);
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based), then walk buckets.
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lower, upper) of this bucket. The overflow
      // bucket has no upper bound; report its lower bound (the histogram
      // cannot resolve further).
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lower;
      const double upper = bounds[i];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::min(std::max(into, 0.0), 1.0);
    }
    seen = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Registry::Entry* Registry::FindLocked(const std::string& name) {
  for (auto& [n, e] : entries_) {
    if (n == name) return &e;
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kCounter ? e->counter.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kGauge ? e->gauge.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    return e->kind == Kind::kHistogram ? e->histogram.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.emplace_back(name, std::move(e));
  return out;
}

std::vector<std::pair<std::string, double>> Registry::Snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, e] : entries_) {
      switch (e.kind) {
        case Kind::kCounter:
          out.emplace_back(name, static_cast<double>(e.counter->value()));
          break;
        case Kind::kGauge:
          out.emplace_back(name, e.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = e.histogram->snapshot();
          out.emplace_back(name + ".count", static_cast<double>(s.count));
          out.emplace_back(name + ".mean_s", s.mean());
          out.emplace_back(name + ".p50_s", s.p50());
          out.emplace_back(name + ".p95_s", s.p95());
          out.emplace_back(name + ".p99_s", s.p99());
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::Render() const {
  const auto entries = Snapshot();
  size_t width = 0;
  for (const auto& [name, value] : entries) {
    width = std::max(width, name.size());
  }
  std::string out;
  for (const auto& [name, value] : entries) {
    out += StrFormat("%-*s  %.9g\n", static_cast<int>(width), name.c_str(),
                     value);
  }
  return out;
}

std::string Registry::RenderProm(std::string_view prefix) const {
  // Copy the instrument pointers under the lock, render outside it: the
  // instruments are lock-free and live for the registry's lifetime.
  struct Row {
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, e] : entries_) {
      rows.push_back(Row{PromName(name, prefix), e.kind, e.counter.get(),
                         e.gauge.get(), e.histogram.get()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  std::string out;
  for (const Row& row : rows) {
    switch (row.kind) {
      case Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n%s %llu\n", row.name.c_str(),
                         row.name.c_str(),
                         static_cast<unsigned long long>(row.counter->value()));
        break;
      case Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n%s %.9g\n", row.name.c_str(),
                         row.name.c_str(), row.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot s = row.histogram->snapshot();
        out += StrFormat("# TYPE %s histogram\n", row.name.c_str());
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += StrFormat("%s_bucket{le=\"%.9g\"} %llu\n", row.name.c_str(),
                           s.bounds[i],
                           static_cast<unsigned long long>(cumulative));
        }
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", row.name.c_str(),
                         static_cast<unsigned long long>(s.count));
        out += StrFormat("%s_sum %.9g\n", row.name.c_str(), s.sum);
        out += StrFormat("%s_count %llu\n", row.name.c_str(),
                         static_cast<unsigned long long>(s.count));
        break;
      }
    }
  }
  return out;
}

std::string PromName(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string RenderPromEntries(
    const std::vector<std::pair<std::string, double>>& entries,
    std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : entries) {
    const std::string prom = PromName(name, prefix);
    out += StrFormat("# TYPE %s gauge\n%s %.9g\n", prom.c_str(), prom.c_str(),
                     value);
  }
  return out;
}

Registry& GlobalRegistry() {
  static Registry& registry = *new Registry();
  return registry;
}

}  // namespace jackpine::obs
