#include "obs/http_exposition.h"

#include <algorithm>

#include "common/string_util.h"
#include "net/socket.h"

namespace jackpine::obs {

namespace {

// A request head (request line + headers) larger than this is hostile, not
// a telemetry scrape.
constexpr size_t kMaxRequestBytes = 8 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  return StrFormat(
             "HTTP/1.0 %d %s\r\n"
             "Content-Type: %s\r\n"
             "Content-Length: %zu\r\n"
             "Connection: close\r\n"
             "\r\n",
             response.status, StatusText(response.status),
             response.content_type.c_str(), response.body.size()) +
         response.body;
}

}  // namespace

TelemetryServer::TelemetryServer(const Options& options) : options_(options) {
  Handle("/healthz", [] {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Create(
    const Options& options) {
  JACKPINE_ASSIGN_OR_RETURN(
      net::Listener listener,
      net::Listener::Listen(options.host, options.port));
  std::unique_ptr<TelemetryServer> server(new TelemetryServer(options));
  server->listener_ = std::make_unique<net::Listener>(std::move(listener));
  return server;
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const Options& options) {
  JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<TelemetryServer> server,
                            Create(options));
  server->StartServing();
  return server;
}

void TelemetryServer::Handle(std::string path, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [p, h] : handlers_) {
    if (p == path) {
      h = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(std::move(path), std::move(handler));
}

void TelemetryServer::StartServing() {
  if (serving_) return;
  serving_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

uint16_t TelemetryServer::port() const { return listener_->port(); }

TelemetryServer::~TelemetryServer() { Shutdown(); }

void TelemetryServer::Shutdown() {
  stopping_.store(true);
  if (listener_ != nullptr) listener_->Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  if (listener_ != nullptr) listener_->Close();
}

void TelemetryServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<net::Socket> accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;  // transient accept failure (e.g. EMFILE): keep serving
    }
    ServeOne(std::move(accepted).value());
  }
}

void TelemetryServer::ServeOne(net::Socket socket) {
  (void)socket.SetRecvTimeout(options_.io_timeout_s);
  (void)socket.SetSendTimeout(options_.io_timeout_s);

  // Read until the blank line ending the request head. Telemetry GETs have
  // no body, so everything after it is ignored.
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() > kMaxRequestBytes) return;
    Result<size_t> n = socket.Recv(buf, sizeof(buf));
    if (!n.ok() || *n == 0) {
      if (head.empty()) return;  // peer connected and said nothing
      break;  // EOF mid-head: try to parse what arrived
    }
    head.append(buf, *n);
  }

  // Request line: METHOD SP target SP version. Everything else in the head
  // (headers) is irrelevant to a fixed-route GET endpoint.
  const size_t line_end = head.find_first_of("\r\n");
  const std::string line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  HttpResponse response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const size_t query = target.find('?'); query != std::string::npos) {
      target.resize(query);
    }
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [path, h] : handlers_) {
        if (path == target) {
          handler = h;
          break;
        }
      }
    }
    if (handler) {
      response = handler();
    } else {
      response.status = 404;
      response.body = StrFormat("no route for %s\n", target.c_str());
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  (void)socket.SendAll(RenderResponse(response));
  // Socket closes on scope exit; HTTP/1.0 close-delimited semantics.
}

}  // namespace jackpine::obs
