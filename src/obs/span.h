// Distributed span tracing (DESIGN.md "Observability", span model).
//
// A Span is one timed operation on a causally-linked tree: every span
// carries a trace_id (shared by all spans of one traced query, across
// processes), its own span_id, and its parent's span_id. Timestamps are
// double seconds on the *process* timeline (SpanNowS: steady clock, epoch =
// first use in the process), so spans from two processes merge onto one
// timeline only after the clock offset between them has been estimated and
// subtracted (ShiftSpans; the remote driver estimates the offset from the
// Hello handshake timestamps).
//
// Design constraints, mirroring the metrics registry:
//   1. Recording must be cheap enough to leave on in a benchmark: starting
//      and ending a span costs two clock reads plus one short critical
//      section on a thread-sharded buffer — no allocation beyond the span's
//      own strings, no global lock.
//   2. Buffers are bounded. When a shard fills, the span is dropped and the
//      `obs.spans_dropped` counter in the global registry is incremented —
//      never a silent cap (`pinedb stats` surfaces the loss).
//   3. A disabled recorder is inert: StartSpan returns an inactive handle
//      and the only cost on the query path is one relaxed atomic load.
//
// The merged timeline exports as Chrome trace-event JSON
// (SpansToChromeTrace), loadable in chrome://tracing or https://ui.perfetto.dev.

#ifndef JACKPINE_OBS_SPAN_H_
#define JACKPINE_OBS_SPAN_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace jackpine::obs {

class Counter;
struct QueryTrace;

// Seconds since this process's span epoch (the first SpanNowS call),
// steady-clock monotonic. All SpanRecord times are on this timeline.
double SpanNowS();

// The same timeline for a time point captured elsewhere (e.g. a server's
// accept timestamp), so externally-timed phases become spans too.
double ToSpanSeconds(std::chrono::steady_clock::time_point tp);

// Small dense id for the calling thread, stable for the thread's lifetime.
// Used as the Chrome trace "tid" so per-thread lanes render separately.
uint32_t CurrentThreadLane();

// Annotations beyond this per span are dropped (bounded memory per span;
// the count is generous for key=value breadcrumbs, not a logging channel).
inline constexpr size_t kMaxSpanAnnotations = 8;

// Default recorder capacity in spans, across all shards.
inline constexpr size_t kDefaultSpanCapacity = 1 << 16;

// One finished (or synthesized) span. `process` is the logical process lane
// in the merged timeline — 0 is the recording process, the remote driver
// stamps spans shipped from the server with 1. It does not cross the wire;
// the receiver assigns it.
struct SpanRecord {
  uint64_t trace_id = 0;   // 0 = process-scoped (connect, breaker, ...)
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint32_t process = 0;
  uint32_t thread = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> annotations;
};

class SpanRecorder;

// RAII handle over an in-flight span. Default-constructed (or one started on
// a disabled recorder) it is inert: every member call is a no-op. End()
// stamps the end time and hands the record to the recorder; the destructor
// calls End() so early returns never lose a span.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  bool active() const { return recorder_ != nullptr; }
  uint64_t trace_id() const { return record_.trace_id; }
  uint64_t span_id() const { return record_.span_id; }
  double start_s() const { return record_.start_s; }

  // Attaches a key=value breadcrumb (bounded by kMaxSpanAnnotations).
  void Annotate(std::string_view key, std::string_view value);

  // Finishes the span now and records it. Idempotent.
  void End();

 private:
  friend class SpanRecorder;
  SpanRecorder* recorder_ = nullptr;
  SpanRecord record_;
};

// Bounded, thread-sharded span sink. One recorder per scope that drains
// independently: the process-wide GlobalSpanRecorder() for client-side
// spans, one per server session for the spans shipped back over the wire.
class SpanRecorder {
 public:
  explicit SpanRecorder(size_t capacity = kDefaultSpanCapacity);

  // Recording gate, checked by StartSpan and Record. Off by default: an
  // untraced run pays one relaxed load per instrumentation point.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Fresh ids. Trace and span ids come from the same per-recorder sequence,
  // mixed so ids from distinct recorders (and processes) don't collide in
  // a merged timeline.
  uint64_t NewTraceId() { return NewSpanId(); }
  uint64_t NewSpanId();

  // Starts a span now. trace_id 0 marks a process-scoped span (connection
  // lifecycle, breaker transitions) rather than a per-query one.
  Span StartSpan(std::string_view name, uint64_t trace_id = 0,
                 uint64_t parent_id = 0);

  // Records an already-built span (a synthesized engine stage, a span
  // shipped from the server). Drops — and counts the drop — when the
  // shard is full; no-op while disabled.
  void Record(SpanRecord record);

  // Removes and returns everything buffered, sorted by start time.
  std::vector<SpanRecord> Drain();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t buffered() const;

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    std::mutex mu;
    std::vector<SpanRecord> buf;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  uint64_t id_salt_;
  size_t shard_capacity_;
  std::atomic<uint64_t> dropped_{0};
  Counter* dropped_counter_;  // obs.spans_dropped in the global registry
  std::array<Shard, kShards> shards_;
};

// The process-wide recorder (client instrumentation, breaker transitions,
// benchmark_runner --trace-out). Disabled until someone turns it on.
SpanRecorder& GlobalSpanRecorder();

// Shifts every span onto the receiver's timeline (t -= offset_s, the offset
// estimated from the Hello handshake) and stamps the process lane.
void ShiftSpans(std::vector<SpanRecord>* spans, double offset_s,
                uint32_t process);

// Synthesizes sequential engine-stage child spans (engine.parse / plan /
// exec) from a query's stage times, anchored at `anchor_s` under
// `parent_id`. Stages with zero recorded time are omitted. This is how the
// executor's QueryTrace stage clock becomes spans without re-instrumenting
// the engine.
void RecordStageSpans(SpanRecorder* recorder, uint64_t trace_id,
                      uint64_t parent_id, double anchor_s,
                      const QueryTrace& trace);

// Chrome trace-event JSON document ({"traceEvents": [...]}) of a merged
// span list: one "X" (complete) event per span in microseconds relative to
// the earliest span, pid = process lane, tid = thread lane, trace/span ids
// and annotations under "args", plus process_name metadata so the viewer
// labels the client and server tracks.
Json SpansToChromeTrace(const std::vector<SpanRecord>& spans);

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_SPAN_H_
