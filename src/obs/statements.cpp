#include "obs/statements.h"

#include <algorithm>
#include <cstddef>

namespace jackpine::obs {

static_assert(static_cast<size_t>(StatusCode::kDataLoss) <
                  StatementStats::kStatusCodes,
              "errors_by_code array is smaller than the StatusCode enum");

namespace {

// Same FNV-1a the engine's FingerprintHash uses; duplicated here because
// jackpine_obs sits below jackpine_engine in the library graph and a shard
// choice only needs *a* stable hash, not *the* fingerprint hash.
uint64_t ShardHash(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

struct StatementStats::Entry {
  uint64_t calls = 0;
  uint64_t errors = 0;
  std::array<uint64_t, kStatusCodes> errors_by_code{};
  Histogram latency;  // default geometric latency bounds
  uint64_t rows_examined = 0;
  uint64_t rows_returned = 0;
  uint64_t result_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
};

struct StatementStats::Shard {
  mutable std::mutex mu;
  // Sorted-by-fingerprint vector: shards are small (capacity/shards entries)
  // and the deterministic-eviction scan wants ordered iteration anyway.
  std::vector<std::pair<std::string, std::unique_ptr<Entry>>> entries;
};

StatementStats::StatementStats() : StatementStats(Options()) {}

StatementStats::~StatementStats() = default;

StatementStats::StatementStats(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.shards > options_.capacity) options_.shards = options_.capacity;
  per_shard_capacity_ =
      (options_.capacity + options_.shards - 1) / options_.shards;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.registry != nullptr) {
    recorded_counter_ = options_.registry->GetCounter("statements.recorded");
    evicted_counter_ = options_.registry->GetCounter("statements.evicted");
    tracked_gauge_ = options_.registry->GetGauge("statements.tracked");
  }
}

StatementStats::Shard& StatementStats::ShardFor(
    std::string_view fingerprint) const {
  return *shards_[ShardHash(fingerprint) % shards_.size()];
}

void StatementStats::Record(std::string_view fingerprint,
                            const StatementUpdate& update) {
  if (fingerprint.empty()) return;
  Shard& shard = ShardFor(fingerprint);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_t pos = static_cast<size_t>(
        std::lower_bound(
            shard.entries.begin(), shard.entries.end(), fingerprint,
            [](const auto& e, std::string_view fp) { return e.first < fp; }) -
        shard.entries.begin());
    if (pos == shard.entries.size() || shard.entries[pos].first != fingerprint) {
      if (shard.entries.size() >= per_shard_capacity_) {
        // Deterministic eviction: fewest calls loses; among equals the
        // lexicographically-largest fingerprint goes, so the survivor set
        // depends only on the update sequence.
        size_t victim = 0;
        for (size_t i = 1; i < shard.entries.size(); ++i) {
          if (shard.entries[i].second->calls <
                  shard.entries[victim].second->calls ||
              (shard.entries[i].second->calls ==
                   shard.entries[victim].second->calls &&
               shard.entries[i].first > shard.entries[victim].first)) {
            victim = i;
          }
        }
        shard.entries.erase(shard.entries.begin() +
                            static_cast<ptrdiff_t>(victim));
        if (victim < pos) --pos;
        evicted_.fetch_add(1, std::memory_order_relaxed);
        if (evicted_counter_ != nullptr) evicted_counter_->Add();
      }
      shard.entries.emplace(shard.entries.begin() + static_cast<ptrdiff_t>(pos),
                            std::string(fingerprint),
                            std::make_unique<Entry>());
    }
    Entry& e = *shard.entries[pos].second;
    e.calls += 1;
    if (update.code != StatusCode::kOk) {
      e.errors += 1;
      const size_t idx = static_cast<size_t>(update.code);
      if (idx < kStatusCodes) e.errors_by_code[idx] += 1;
    }
    e.latency.Observe(update.latency_s);
    e.rows_examined += update.rows_examined;
    e.rows_returned += update.rows_returned;
    e.result_bytes += update.result_bytes;
    if (update.cache_hit) e.cache_hits += 1;
    if (update.coalesced) e.coalesced += 1;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (recorded_counter_ != nullptr) recorded_counter_->Add();
  if (tracked_gauge_ != nullptr) {
    tracked_gauge_->Set(static_cast<double>(tracked()));
  }
}

std::vector<StatementStats::Row> StatementStats::Snapshot() const {
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [fingerprint, entry] : shard->entries) {
      Row row;
      row.fingerprint = fingerprint;
      row.calls = entry->calls;
      row.errors = entry->errors;
      row.errors_by_code = entry->errors_by_code;
      row.latency = entry->latency.snapshot();
      row.rows_examined = entry->rows_examined;
      row.rows_returned = entry->rows_returned;
      row.result_bytes = entry->result_bytes;
      row.cache_hits = entry->cache_hits;
      row.coalesced = entry->coalesced;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.calls != b.calls) return a.calls > b.calls;
    return a.fingerprint < b.fingerprint;
  });
  return rows;
}

std::vector<StatementStats::Row> StatementStats::TopK(size_t k) const {
  std::vector<Row> rows = Snapshot();
  if (k > 0 && rows.size() > k) rows.resize(k);
  return rows;
}

size_t StatementStats::tracked() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

Json StatementStats::RowsToJson(const std::vector<Row>& rows) {
  Json array = Json::Array();
  for (const Row& row : rows) {
    Json& r = array.Append(Json::Object());
    r.Set("fingerprint", Json::Str(row.fingerprint));
    r.Set("calls", Json::Int(static_cast<int64_t>(row.calls)));
    r.Set("errors", Json::Int(static_cast<int64_t>(row.errors)));
    Json by_code = Json::Object();
    for (size_t i = 0; i < kStatusCodes; ++i) {
      if (row.errors_by_code[i] == 0) continue;
      by_code.Set(StatusCodeName(static_cast<StatusCode>(i)),
                  Json::Int(static_cast<int64_t>(row.errors_by_code[i])));
    }
    r.Set("errors_by_code", std::move(by_code));
    r.Set("total_latency_s", Json::Number(row.latency.sum));
    r.Set("mean_latency_s", Json::Number(row.latency.mean()));
    r.Set("p50_latency_s", Json::Number(row.latency.p50()));
    r.Set("p95_latency_s", Json::Number(row.latency.p95()));
    r.Set("rows_examined", Json::Int(static_cast<int64_t>(row.rows_examined)));
    r.Set("rows_returned", Json::Int(static_cast<int64_t>(row.rows_returned)));
    r.Set("result_bytes", Json::Int(static_cast<int64_t>(row.result_bytes)));
    r.Set("cache_hits", Json::Int(static_cast<int64_t>(row.cache_hits)));
    r.Set("coalesced", Json::Int(static_cast<int64_t>(row.coalesced)));
  }
  return array;
}

Json StatementStats::ToJson(size_t top_k) const {
  Json out = Json::Object();
  out.Set("capacity", Json::Int(static_cast<int64_t>(options_.capacity)));
  out.Set("tracked", Json::Int(static_cast<int64_t>(tracked())));
  out.Set("recorded", Json::Int(static_cast<int64_t>(recorded())));
  out.Set("evicted", Json::Int(static_cast<int64_t>(evicted())));
  out.Set("statements", RowsToJson(TopK(top_k)));
  return out;
}

}  // namespace jackpine::obs
