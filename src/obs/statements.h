// Fingerprint statistics: pg_stat_statements for pinedb (DESIGN.md
// "Observability").
//
// A sharded, fixed-capacity map keyed by the normalized-SQL fingerprint
// (engine/sql_normalize.h — the *caller* computes it, this layer never sees
// SQL, which keeps jackpine_obs below the engine in the library graph).
// Every query — success, error, cache hit, coalesced follower — records
// exactly one update, so the per-fingerprint calls/latency/rows/bytes
// tallies answer "which statement shape is slow, how often, and why"
// without re-running the harness.
//
// Lock discipline: one mutex per shard, taken for a handful of integer adds
// plus one histogram Observe. The map is bounded: when a shard is at
// capacity, inserting a new fingerprint evicts the entry with the fewest
// calls (ties broken by lexicographically-largest fingerprint, so eviction
// is deterministic for a given update sequence — reproducible benchmarks
// must not depend on map iteration order).

#ifndef JACKPINE_OBS_STATEMENTS_H_
#define JACKPINE_OBS_STATEMENTS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace jackpine::obs {

// One query's contribution to its fingerprint row.
struct StatementUpdate {
  StatusCode code = StatusCode::kOk;  // != kOk counts as an error
  double latency_s = 0.0;             // server-side total (decode -> sent)
  uint64_t rows_examined = 0;
  uint64_t rows_returned = 0;
  uint64_t result_bytes = 0;  // reply frame bytes shipped for this query
  bool cache_hit = false;
  bool coalesced = false;  // served as a coalesced follower
};

class StatementStats {
 public:
  // StatusCode is a dense uint8 enum; size the per-code error array once
  // here so a new code only needs this constant bumped (static_asserted
  // against kDataLoss in statements.cpp).
  static constexpr size_t kStatusCodes = 16;

  struct Options {
    size_t capacity = 512;  // distinct fingerprints tracked, across shards
    size_t shards = 8;
    // Meta-counters (statements.recorded / statements.evicted) land here;
    // null disables them (exact-count unit tests).
    Registry* registry = nullptr;
  };

  StatementStats();  // = StatementStats(Options())
  explicit StatementStats(Options options);
  ~StatementStats();  // out-of-line: Shard is incomplete here

  // Folds one query into its fingerprint row, creating (and possibly
  // evicting) as needed. Empty fingerprints are dropped.
  void Record(std::string_view fingerprint, const StatementUpdate& update);

  struct Row {
    std::string fingerprint;
    uint64_t calls = 0;
    uint64_t errors = 0;
    std::array<uint64_t, kStatusCodes> errors_by_code{};
    Histogram::Snapshot latency;  // total_s = .sum, p50/p95 via Quantile
    uint64_t rows_examined = 0;
    uint64_t rows_returned = 0;
    uint64_t result_bytes = 0;
    uint64_t cache_hits = 0;
    uint64_t coalesced = 0;
  };

  // Every tracked row, most-called first (ties by fingerprint, ascending) —
  // the pg_stat_statements ORDER BY calls DESC view.
  std::vector<Row> Snapshot() const;

  // The first k rows of Snapshot() (all of them when k == 0).
  std::vector<Row> TopK(size_t k) const;

  // {"capacity": N, "tracked": N, "recorded": N, "evicted": N,
  //  "statements": [row...]} — the /statements endpoint and the
  //  Stats(kStatements) wire reply. k == 0 means all rows.
  Json ToJson(size_t top_k = 0) const;

  uint64_t recorded() const { return recorded_.load(); }
  uint64_t evicted() const { return evicted_.load(); }
  size_t tracked() const;

  // Renders one Row list as a Json array (shared by ToJson and the
  // harness-side report path, which aggregates its own rows).
  static Json RowsToJson(const std::vector<Row>& rows);

 private:
  struct Entry;
  struct Shard;

  Shard& ShardFor(std::string_view fingerprint) const;

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> evicted_{0};
  Counter* recorded_counter_ = nullptr;  // statements.recorded
  Counter* evicted_counter_ = nullptr;   // statements.evicted
  Gauge* tracked_gauge_ = nullptr;       // statements.tracked
};

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_STATEMENTS_H_
