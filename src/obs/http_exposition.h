// Embedded HTTP telemetry endpoint: GET-only, dependency-free, built on
// net::Socket (DESIGN.md "Observability").
//
// This is how a real Prometheus scrapes every pinedb (and every shard
// replica) directly instead of going through the Stats wire frame:
//
//   pinedb serve --metrics-port 9090      # or benchmark_runner --metrics-port
//   curl :9090/metrics                    # Prometheus text exposition
//   curl :9090/statements                 # fingerprint statistics (JSON)
//   curl :9090/slow                       # flight-recorder dump (JSON)
//   curl :9090/healthz                    # "ok" liveness probe
//
// Deliberately minimal: HTTP/1.0 semantics (one request per connection,
// Connection: close), GET only, no TLS, path-only routing (query strings
// ignored). Handlers are std::functions registered before StartServing and
// invoked on the acceptor thread — a telemetry scrape every few seconds is
// nowhere near needing concurrency, and serial handling means the handlers
// can read shared state with ordinary locks. I/O timeouts bound how long a
// stuck scraper can stall the endpoint (it cannot stall the query plane at
// all: the telemetry server shares nothing with session threads).
//
// The header lives in obs/ because this is observability surface; the
// translation unit is compiled into the jackpine_net library (see
// src/CMakeLists.txt) because it needs net::Socket, which sits above obs in
// the library graph.

#ifndef JACKPINE_OBS_HTTP_EXPOSITION_H_
#define JACKPINE_OBS_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace jackpine::net {
class Listener;
class Socket;
}  // namespace jackpine::net

namespace jackpine::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Prometheus' registered content type for the 0.0.4 text format.
inline constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class TelemetryServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral, see port()
    // Per-connection receive/send bound; a wedged scraper costs at most
    // this long before the acceptor moves on.
    double io_timeout_s = 5.0;
  };

  using Handler = std::function<HttpResponse()>;

  // Binds the listener but does not accept yet: register handlers first,
  // then StartServing. /healthz is pre-registered.
  static Result<std::unique_ptr<TelemetryServer>> Create(
      const Options& options);

  // Registers `handler` for GET <path> (exact match after stripping any
  // query string). Last registration wins.
  void Handle(std::string path, Handler handler);

  void StartServing();  // spawns the acceptor; idempotent

  // Create + Handle(/healthz built in) + StartServing for callers with no
  // extra routes to add before accepting.
  static Result<std::unique_ptr<TelemetryServer>> Start(
      const Options& options);

  ~TelemetryServer();
  void Shutdown();  // stop accepting, join; idempotent

  uint16_t port() const;

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  explicit TelemetryServer(const Options& options);

  void AcceptLoop();
  void ServeOne(net::Socket socket);

  Options options_;
  std::unique_ptr<net::Listener> listener_;
  std::thread acceptor_;
  bool serving_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  mutable std::mutex mu_;  // guards handlers_
  std::vector<std::pair<std::string, Handler>> handlers_;
};

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_HTTP_EXPOSITION_H_
