// Slow-query flight recorder: a bounded ring of the last N interesting
// queries (DESIGN.md "Observability").
//
// "Interesting" means slower than the configured threshold (`--slow-ms` on
// the pinedb binary) or errored — the two populations an operator pages
// through after an incident. Each captured entry carries enough to
// reconstruct the query's story without a re-run: fingerprint, trace/span
// ids (joinable against the span timeline), the engine's QueryTrace
// counters, and the server-side wait breakdown (queue, chaos delay, cache
// coalesce wait, execution, send).
//
// Lock discipline: Note() is called for *every* query but takes the mutex
// only for captured ones — the common fast query pays one branch. The ring
// overwrites oldest-first; Snapshot()/ToJson() return oldest-to-newest.

#ifndef JACKPINE_OBS_FLIGHT_RECORDER_H_
#define JACKPINE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jackpine::obs {

struct FlightRecord {
  double ts_s = 0.0;  // SpanNowS() when the query finished (span clock)
  std::string fingerprint;
  std::string sql;  // raw text as received (truncated to kMaxSqlBytes)
  uint64_t trace_id = 0;  // 0 = the session did not negotiate tracing
  uint64_t span_id = 0;   // the server root span of this query
  StatusCode code = StatusCode::kOk;
  std::string error;  // status message when code != kOk
  bool is_query = true;  // false = Update (DDL/DML) frame
  bool cache_hit = false;
  bool coalesced = false;
  // Wait breakdown, all in seconds. total_s spans decode-done to
  // reply-sent and is what the slow threshold compares against.
  double total_s = 0.0;
  double queue_wait_s = 0.0;  // admission wait before the session existed
  double chaos_delay_s = 0.0;
  double cache_wait_s = 0.0;  // coalesced-follower wait
  double exec_s = 0.0;
  double send_s = 0.0;
  uint64_t rows_returned = 0;
  uint64_t result_bytes = 0;
  QueryTrace trace;  // engine counters for this query
};

class FlightRecorder {
 public:
  static constexpr size_t kMaxSqlBytes = 512;

  struct Options {
    size_t capacity = 128;
    double slow_threshold_s = 0.25;  // pinedb --slow-ms, converted
    // Meta-counters (flight.captured_slow / flight.captured_errors) land
    // here; null disables them.
    Registry* registry = nullptr;
  };

  FlightRecorder();  // = FlightRecorder(Options())
  explicit FlightRecorder(Options options);

  // Captures `record` when it is an error or total_s crosses the slow
  // threshold; otherwise a cheap no-op. Returns whether it was captured.
  bool Note(FlightRecord record);

  // Oldest-to-newest copy of the ring.
  std::vector<FlightRecord> Snapshot() const;

  // {"capacity": N, "slow_threshold_s": S, "captured_slow": N,
  //  "captured_errors": N, "entries": [...]} — the /slow endpoint, the
  //  Stats(kSlow) wire reply, and the graceful-shutdown dump.
  Json ToJson() const;

  double slow_threshold_s() const { return options_.slow_threshold_s; }
  uint64_t captured_slow() const { return captured_slow_.load(); }
  uint64_t captured_errors() const { return captured_errors_.load(); }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;  // grows to capacity, then wraps
  size_t next_ = 0;                 // overwrite position once full
  std::atomic<uint64_t> captured_slow_{0};
  std::atomic<uint64_t> captured_errors_{0};
  Counter* slow_counter_ = nullptr;    // flight.captured_slow
  Counter* error_counter_ = nullptr;   // flight.captured_errors
};

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_FLIGHT_RECORDER_H_
