#include "obs/flight_recorder.h"

#include <utility>

namespace jackpine::obs {

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
  if (options_.registry != nullptr) {
    slow_counter_ = options_.registry->GetCounter("flight.captured_slow");
    error_counter_ = options_.registry->GetCounter("flight.captured_errors");
  }
}

bool FlightRecorder::Note(FlightRecord record) {
  const bool is_error = record.code != StatusCode::kOk;
  const bool is_slow = options_.slow_threshold_s > 0.0 &&
                       record.total_s >= options_.slow_threshold_s;
  if (!is_error && !is_slow) return false;
  if (record.sql.size() > kMaxSqlBytes) {
    record.sql.resize(kMaxSqlBytes);
    record.sql += "...";
  }
  if (is_error) {
    captured_errors_.fetch_add(1, std::memory_order_relaxed);
    if (error_counter_ != nullptr) error_counter_->Add();
  }
  if (is_slow) {
    captured_slow_.fetch_add(1, std::memory_order_relaxed);
    if (slow_counter_ != nullptr) slow_counter_->Add();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % options_.capacity;
  }
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest entry; before that the ring is in
  // insertion order from index 0.
  const size_t start = ring_.size() < options_.capacity ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

Json FlightRecorder::ToJson() const {
  Json out = Json::Object();
  out.Set("capacity", Json::Int(static_cast<int64_t>(options_.capacity)));
  out.Set("slow_threshold_s", Json::Number(options_.slow_threshold_s));
  out.Set("captured_slow", Json::Int(static_cast<int64_t>(captured_slow())));
  out.Set("captured_errors",
          Json::Int(static_cast<int64_t>(captured_errors())));
  Json& entries = out.Set("entries", Json::Array());
  for (const FlightRecord& rec : Snapshot()) {
    Json& e = entries.Append(Json::Object());
    e.Set("ts_s", Json::Number(rec.ts_s));
    e.Set("fingerprint", Json::Str(rec.fingerprint));
    e.Set("sql", Json::Str(rec.sql));
    e.Set("trace_id", Json::Int(static_cast<int64_t>(rec.trace_id)));
    e.Set("span_id", Json::Int(static_cast<int64_t>(rec.span_id)));
    e.Set("status", Json::Str(StatusCodeName(rec.code)));
    if (!rec.error.empty()) e.Set("error", Json::Str(rec.error));
    e.Set("kind", Json::Str(rec.is_query ? "query" : "update"));
    e.Set("cache_hit", Json::Bool(rec.cache_hit));
    e.Set("coalesced", Json::Bool(rec.coalesced));
    Json& wait = e.Set("wait_s", Json::Object());
    wait.Set("total", Json::Number(rec.total_s));
    wait.Set("queue", Json::Number(rec.queue_wait_s));
    wait.Set("chaos_delay", Json::Number(rec.chaos_delay_s));
    wait.Set("cache_coalesce", Json::Number(rec.cache_wait_s));
    wait.Set("exec", Json::Number(rec.exec_s));
    wait.Set("send", Json::Number(rec.send_s));
    e.Set("rows_returned", Json::Int(static_cast<int64_t>(rec.rows_returned)));
    e.Set("result_bytes", Json::Int(static_cast<int64_t>(rec.result_bytes)));
    Json& trace = e.Set("trace", Json::Object());
    for (const auto& [name, value] : rec.trace.ToEntries()) {
      trace.Set(name, Json::Number(value));
    }
  }
  return out;
}

}  // namespace jackpine::obs
