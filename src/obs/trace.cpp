#include "obs/trace.h"

#include "common/string_util.h"

namespace jackpine::obs {

QueryTrace& QueryTrace::operator+=(const QueryTrace& other) {
  parse_s += other.parse_s;
  plan_s += other.plan_s;
  exec_s += other.exec_s;
  total_s += other.total_s;
  queries += other.queries;
  rows_scanned += other.rows_scanned;
  index_probes += other.index_probes;
  index_nodes_visited += other.index_nodes_visited;
  index_candidates += other.index_candidates;
  refine_checks += other.refine_checks;
  refine_survivors += other.refine_survivors;
  rows_examined += other.rows_examined;
  rows_returned += other.rows_returned;
  return *this;
}

double QueryTrace::RefineRatio() const {
  return refine_checks > 0 ? static_cast<double>(refine_survivors) /
                                 static_cast<double>(refine_checks)
                           : 0.0;
}

double QueryTrace::FilterRatio() const {
  return index_candidates > 0 ? static_cast<double>(refine_survivors) /
                                    static_cast<double>(index_candidates)
                              : 0.0;
}

std::vector<std::pair<std::string, double>> QueryTrace::ToEntries() const {
  return {
      {"parse_s", parse_s},
      {"plan_s", plan_s},
      {"exec_s", exec_s},
      {"total_s", total_s},
      {"queries", static_cast<double>(queries)},
      {"rows_scanned", static_cast<double>(rows_scanned)},
      {"index_probes", static_cast<double>(index_probes)},
      {"index_nodes_visited", static_cast<double>(index_nodes_visited)},
      {"index_candidates", static_cast<double>(index_candidates)},
      {"refine_checks", static_cast<double>(refine_checks)},
      {"refine_survivors", static_cast<double>(refine_survivors)},
      {"rows_examined", static_cast<double>(rows_examined)},
      {"rows_returned", static_cast<double>(rows_returned)},
  };
}

QueryTrace QueryTrace::FromEntries(
    const std::vector<std::pair<std::string, double>>& entries) {
  QueryTrace t;
  for (const auto& [name, value] : entries) {
    const auto u64 = [&] { return static_cast<uint64_t>(value); };
    if (name == "parse_s") t.parse_s = value;
    else if (name == "plan_s") t.plan_s = value;
    else if (name == "exec_s") t.exec_s = value;
    else if (name == "total_s") t.total_s = value;
    else if (name == "queries") t.queries = u64();
    else if (name == "rows_scanned") t.rows_scanned = u64();
    else if (name == "index_probes") t.index_probes = u64();
    else if (name == "index_nodes_visited") t.index_nodes_visited = u64();
    else if (name == "index_candidates") t.index_candidates = u64();
    else if (name == "refine_checks") t.refine_checks = u64();
    else if (name == "refine_survivors") t.refine_survivors = u64();
    else if (name == "rows_examined") t.rows_examined = u64();
    else if (name == "rows_returned") t.rows_returned = u64();
  }
  return t;
}

std::string QueryTrace::ToString() const {
  return StrFormat(
      "parse %.3fms plan %.3fms exec %.3fms | probes %llu nodes %llu "
      "candidates %llu refine %llu survivors %llu | scanned %llu "
      "examined %llu returned %llu",
      parse_s * 1e3, plan_s * 1e3, exec_s * 1e3,
      static_cast<unsigned long long>(index_probes),
      static_cast<unsigned long long>(index_nodes_visited),
      static_cast<unsigned long long>(index_candidates),
      static_cast<unsigned long long>(refine_checks),
      static_cast<unsigned long long>(refine_survivors),
      static_cast<unsigned long long>(rows_scanned),
      static_cast<unsigned long long>(rows_examined),
      static_cast<unsigned long long>(rows_returned));
}

}  // namespace jackpine::obs
