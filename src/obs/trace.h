// Per-query stage tracing (DESIGN.md "Observability").
//
// A QueryTrace rides through ExecContext (as a non-owning pointer inside
// ExecLimits) into the engine, where the parse / plan / execute stages time
// themselves and the gather loops count the filter-and-refine pipeline:
// index probes, R-tree/grid nodes visited, MBR candidates from the filter
// step, exact-predicate refinement tests, and the survivors the refine step
// kept. The same struct crosses the wire as flat (name, double) entries —
// the STATS frame's payload — so a remote query's server-side trace merges
// into the client's trace with the same operator+= a local query uses.
//
// The trace is plain (non-atomic) state: exactly one executing query writes
// it at a time, the same ownership rule ExecContext already follows.

#ifndef JACKPINE_OBS_TRACE_H_
#define JACKPINE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jackpine::obs {

struct QueryTrace {
  // Stage wall-clock spans, accumulated over the executions this trace saw.
  double parse_s = 0.0;
  double plan_s = 0.0;
  double exec_s = 0.0;
  double total_s = 0.0;  // parse + plan + exec

  // Filter-and-refine pipeline counters (see src/index/spatial_index.h).
  uint64_t queries = 0;             // executions folded into this trace
  uint64_t rows_scanned = 0;        // heap rows visited without index help
  uint64_t index_probes = 0;        // window / k-NN probes issued
  uint64_t index_nodes_visited = 0; // index nodes/cells inspected per probe
  uint64_t index_candidates = 0;    // ids the MBR filter step produced
  uint64_t refine_checks = 0;       // exact WHERE evaluations (refine step)
  uint64_t refine_survivors = 0;    // refine checks that kept the row
  uint64_t rows_examined = 0;       // rows the executor materialised a view of
  uint64_t rows_returned = 0;       // rows in the final result

  void Reset() { *this = QueryTrace(); }

  // Additive merge: warmups/repetitions of a runner, or a server-side trace
  // folded into a client-side one.
  QueryTrace& operator+=(const QueryTrace& other);

  // Refine selectivity: survivors per exact check. 0 when nothing refined.
  double RefineRatio() const;
  // Filter quality: survivors per MBR candidate — how much of the filter
  // step's output the exact predicates kept. 0 when the index was unused.
  double FilterRatio() const;

  // Flat numeric form, stable field names — the STATS wire payload and the
  // JSON export both speak this. u64 counters are exact up to 2^53.
  std::vector<std::pair<std::string, double>> ToEntries() const;
  // Inverse of ToEntries(); unknown names are ignored (forward compat).
  static QueryTrace FromEntries(
      const std::vector<std::pair<std::string, double>>& entries);

  // One-line human rendering for shells and logs.
  std::string ToString() const;
};

}  // namespace jackpine::obs

#endif  // JACKPINE_OBS_TRACE_H_
