#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace jackpine::obs {

namespace {

constexpr int kMaxDepth = 64;

const Json& SharedNull() {
  static const Json* null = new Json();
  return *null;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the least-surprising degradation.
    *out += "null";
    return;
  }
  // Integers (the common case: counters) print without a fraction so the
  // export is stable and readable; everything else gets round-trip precision.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    *out += StrFormat("%.0f", v);
  } else {
    *out += StrFormat("%.17g", v);
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    JACKPINE_ASSIGN_OR_RETURN(Json v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      JACKPINE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipSpace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      JACKPINE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JACKPINE_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipSpace();
    if (Consume(']')) return arr;
    for (;;) {
      JACKPINE_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // beyond what the benchmark's exports ever contain).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape character");
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    return Json::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::Append(Json v) {
  array_.push_back(std::move(v));
  return array_.back();
}

const Json& Json::Get(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return SharedNull();
}

bool Json::Has(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

Json& Json::Set(std::string key, Json v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

void Json::DumpTo(std::string* out, bool pretty, int depth) const {
  const auto indent = [&](int d) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        indent(depth + 1);
        array_[i].DumpTo(out, pretty, depth + 1);
      }
      if (!array_.empty()) indent(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        indent(depth + 1);
        AppendEscaped(out, object_[i].first);
        *out += pretty ? ": " : ":";
        object_[i].second.DumpTo(out, pretty, depth + 1);
      }
      if (!object_.empty()) indent(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  if (pretty) out.push_back('\n');
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser p(text);
  return p.Parse();
}

}  // namespace jackpine::obs
