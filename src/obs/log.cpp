#include "obs/log.h"

#include <chrono>
#include <ctime>

#include "common/string_util.h"

namespace jackpine::obs {
namespace {

// UTC wall-clock timestamp with millisecond resolution, RFC 3339 shape.
std::string NowTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return StrFormat("%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                   tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                   tm.tm_sec, static_cast<int>(ms));
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

Logger& Logger::Global() {
  static Logger& logger = *new Logger();
  return logger;
}

void Logger::Configure(LogLevel min_level, bool json, std::FILE* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_.store(static_cast<uint8_t>(min_level),
                   std::memory_order_relaxed);
  json_.store(json, std::memory_order_relaxed);
  sink_ = sink != nullptr ? sink : stderr;
}

std::string Logger::Format(LogLevel level, std::string_view component,
                           std::string_view msg,
                           std::initializer_list<LogField> fields) const {
  std::string out;
  const std::string ts = NowTimestamp();
  if (json()) {
    out += "{\"ts\":\"";
    out += ts;
    out += "\",\"level\":\"";
    out += LogLevelName(level);
    out += "\",\"component\":\"";
    AppendJsonEscaped(component, &out);
    out += "\",\"msg\":\"";
    AppendJsonEscaped(msg, &out);
    out += '"';
    for (const LogField& f : fields) {
      out += ",\"";
      AppendJsonEscaped(f.key, &out);
      out += "\":\"";
      AppendJsonEscaped(f.value, &out);
      out += '"';
    }
    out += "}\n";
  } else {
    out += StrFormat("[%s] %-5s %.*s: %.*s", ts.c_str(),
                     LogLevelName(level), static_cast<int>(component.size()),
                     component.data(), static_cast<int>(msg.size()),
                     msg.data());
    for (const LogField& f : fields) {
      out += StrFormat(" %.*s=%s", static_cast<int>(f.key.size()),
                       f.key.data(), f.value.c_str());
    }
    out += '\n';
  }
  return out;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  const std::string line = Format(level, component, msg, fields);
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

void LogDebug(std::string_view component, std::string_view msg,
              std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kDebug, component, msg, fields);
}
void LogInfo(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kInfo, component, msg, fields);
}
void LogWarn(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kWarn, component, msg, fields);
}
void LogError(std::string_view component, std::string_view msg,
              std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kError, component, msg, fields);
}

}  // namespace jackpine::obs
