// The named OGC topological predicates over DE-9IM, plus the MBR-only
// variants that reproduce the approximate semantics MySQL exposed at the
// time of the Jackpine paper (experiment E7).

#ifndef JACKPINE_TOPO_PREDICATES_H_
#define JACKPINE_TOPO_PREDICATES_H_

#include <optional>
#include <string>
#include <string_view>

#include "geom/geometry.h"

namespace jackpine::topo {

enum class PredicateKind : uint8_t {
  kEquals,
  kDisjoint,
  kIntersects,
  kTouches,
  kCrosses,
  kWithin,
  kContains,
  kOverlaps,
  kCovers,
  kCoveredBy,
};

// How a system under test evaluates spatial predicates.
enum class PredicateMode : uint8_t {
  kExact,    // full DE-9IM refinement (PostGIS-style)
  kMbrOnly,  // predicates evaluated on bounding rectangles (MySQL-2011-style)
};

// "ST_Equals", ... (the SQL function spelled by the benchmark queries).
const char* PredicateName(PredicateKind kind);

// Parses "equals" / "ST_Equals" / "EQUALS" etc.
std::optional<PredicateKind> PredicateFromName(std::string_view name);

// --- Exact predicates -----------------------------------------------------

bool Equals(const geom::Geometry& a, const geom::Geometry& b);
bool Disjoint(const geom::Geometry& a, const geom::Geometry& b);
bool Intersects(const geom::Geometry& a, const geom::Geometry& b);
bool Touches(const geom::Geometry& a, const geom::Geometry& b);
bool Crosses(const geom::Geometry& a, const geom::Geometry& b);
bool Within(const geom::Geometry& a, const geom::Geometry& b);
bool Contains(const geom::Geometry& a, const geom::Geometry& b);
bool Overlaps(const geom::Geometry& a, const geom::Geometry& b);
bool Covers(const geom::Geometry& a, const geom::Geometry& b);
bool CoveredBy(const geom::Geometry& a, const geom::Geometry& b);

// --- Dispatch -------------------------------------------------------------

// Evaluates `kind` under the given mode. In kMbrOnly mode every predicate is
// computed on the geometries' envelopes (so e.g. Intersects degrades to MBR
// overlap and Contains to MBR containment), reproducing the result-set
// divergence the paper observed on MySQL.
bool EvalPredicate(PredicateKind kind, const geom::Geometry& a,
                   const geom::Geometry& b, PredicateMode mode);

}  // namespace jackpine::topo

#endif  // JACKPINE_TOPO_PREDICATES_H_
