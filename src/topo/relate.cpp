#include "topo/relate.h"

#include <algorithm>
#include <vector>

#include "algo/orientation.h"
#include "algo/point_in_polygon.h"
#include "algo/segment_intersection.h"

namespace jackpine::topo {

using algo::IntersectSegments;
using algo::Locate;
using algo::Location;
using algo::ParamAlongSegment;
using algo::SegSegKind;
using algo::SegSegResult;
using geom::Coord;
using geom::Envelope;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

namespace {

struct Seg {
  Coord a;
  Coord b;
};

// All segments of a geometry (line segments and polygon ring segments).
// Puntal leaves are emitted as degenerate (p, p) segments so that the probe
// splits curves at them: a curve portion's midpoint must never coincide with
// a point of the other geometry, or the portion would be misclassified.
void CollectSegments(const Geometry& g, std::vector<Seg>* out) {
  for (const Geometry& leaf : g.Leaves()) {
    switch (leaf.type()) {
      case GeometryType::kPoint:
        out->push_back({leaf.AsPoint(), leaf.AsPoint()});
        break;
      case GeometryType::kLineString: {
        const std::vector<Coord>& pts = leaf.AsLineString();
        for (size_t i = 0; i + 1 < pts.size(); ++i) {
          out->push_back({pts[i], pts[i + 1]});
        }
        break;
      }
      case GeometryType::kPolygon: {
        const geom::PolygonData& poly = leaf.AsPolygon();
        auto add = [out](const Ring& r) {
          for (size_t i = 0; i + 1 < r.size(); ++i) {
            out->push_back({r[i], r[i + 1]});
          }
        };
        add(poly.shell);
        for (const Ring& hole : poly.holes) add(hole);
        break;
      }
      default:
        break;
    }
  }
}

// Boundary points of a lineal geometry under the OGC mod-2 rule: an endpoint
// shared by an even number of component curves is not on the boundary.
std::vector<Coord> LinealBoundaryPoints(const Geometry& g) {
  std::vector<Coord> endpoints;
  for (const Geometry& leaf : g.Leaves()) {
    if (leaf.type() != GeometryType::kLineString) continue;
    const std::vector<Coord>& pts = leaf.AsLineString();
    if (pts.size() < 2 || pts.front() == pts.back()) continue;  // closed
    endpoints.push_back(pts.front());
    endpoints.push_back(pts.back());
  }
  std::vector<Coord> boundary;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    size_t count = 0;
    bool first = true;
    for (size_t j = 0; j < endpoints.size(); ++j) {
      if (endpoints[j] == endpoints[i]) {
        ++count;
        if (j < i) first = false;
      }
    }
    if (first && count % 2 == 1) boundary.push_back(endpoints[i]);
  }
  return boundary;
}

// Dimension of a geometry's boundary: polygonal -> 1, lineal -> 0 (unless
// all components are closed), puntal -> F.
int BoundaryDimension(const Geometry& g) {
  const int dim = g.Dimension();
  if (dim == 2) return 1;
  if (dim == 1) return LinealBoundaryPoints(g).empty() ? -1 : 0;
  return -1;
}

// Splits `path` at every intersection with `cut_segs`; reports the midpoints
// of the resulting sub-segments and the distinct split points.
struct CurveProbe {
  std::vector<Coord> portion_mids;
  std::vector<Coord> split_points;
};

void ProbePath(const std::vector<Coord>& path, const std::vector<Seg>& cuts,
               CurveProbe* probe) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Coord& a = path[i];
    const Coord& b = path[i + 1];
    const Envelope seg_env(a, b);
    std::vector<double> params = {0.0, 1.0};
    for (const Seg& s : cuts) {
      if (!seg_env.Intersects(Envelope(s.a, s.b))) continue;
      const SegSegResult r = IntersectSegments(a, b, s.a, s.b);
      if (r.kind == SegSegKind::kPoint) {
        params.push_back(ParamAlongSegment(r.p0, a, b));
        probe->split_points.push_back(r.p0);
      } else if (r.kind == SegSegKind::kOverlap) {
        params.push_back(ParamAlongSegment(r.p0, a, b));
        params.push_back(ParamAlongSegment(r.p1, a, b));
        probe->split_points.push_back(r.p0);
        probe->split_points.push_back(r.p1);
      }
    }
    std::sort(params.begin(), params.end());
    params.erase(std::unique(params.begin(), params.end()), params.end());
    for (size_t k = 0; k + 1 < params.size(); ++k) {
      const double tm = (params[k] + params[k + 1]) / 2.0;
      if (params[k + 1] - params[k] <= 0.0) continue;
      probe->portion_mids.push_back(
          {a.x + tm * (b.x - a.x), a.y + tm * (b.y - a.y)});
    }
  }
}

// Deduplicates split points (exact coordinate equality).
void DedupPoints(std::vector<Coord>* pts) {
  std::sort(pts->begin(), pts->end(), [](const Coord& a, const Coord& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts->erase(std::unique(pts->begin(), pts->end()), pts->end());
}

// The Interior and Boundary rows of Relate(a, b) (the Exterior row is filled
// by the transposed opposite half).
De9imMatrix HalfRelate(const Geometry& a, const Geometry& b) {
  De9imMatrix m;
  const int dim_a = a.Dimension();
  const int dim_b = b.Dimension();

  if (dim_a == 0) {
    // Puntal interior is the points themselves; boundary empty.
    for (const Geometry& leaf : a.Leaves()) {
      if (leaf.type() != GeometryType::kPoint) continue;
      switch (Locate(leaf.AsPoint(), b)) {
        case Location::kInterior:
          m.SetAtLeast(kInterior, kInterior, 0);
          break;
        case Location::kBoundary:
          m.SetAtLeast(kInterior, kBoundary, 0);
          break;
        case Location::kExterior:
          m.SetAtLeast(kInterior, kExterior, 0);
          break;
      }
    }
    return m;
  }

  std::vector<Seg> cuts;
  CollectSegments(b, &cuts);

  if (dim_a == 1) {
    CurveProbe probe;
    for (const Geometry& leaf : a.Leaves()) {
      if (leaf.type() == GeometryType::kLineString) {
        ProbePath(leaf.AsLineString(), cuts, &probe);
      }
    }
    DedupPoints(&probe.split_points);
    const std::vector<Coord> boundary = LinealBoundaryPoints(a);

    for (const Coord& mid : probe.portion_mids) {
      switch (Locate(mid, b)) {
        case Location::kInterior:
          m.SetAtLeast(kInterior, kInterior, 1);
          break;
        case Location::kBoundary:
          // A 1-dim portion along b's boundary (b polygonal) or, for a
          // lineal b, a collinear overlap counted as interior via Locate.
          m.SetAtLeast(kInterior, kBoundary, 1);
          break;
        case Location::kExterior:
          m.SetAtLeast(kInterior, kExterior, 1);
          break;
      }
    }
    for (const Coord& q : probe.split_points) {
      const bool on_a_boundary =
          std::find(boundary.begin(), boundary.end(), q) != boundary.end();
      const PointSet row = on_a_boundary ? kBoundary : kInterior;
      switch (Locate(q, b)) {
        case Location::kInterior:
          m.SetAtLeast(row, kInterior, 0);
          break;
        case Location::kBoundary:
          m.SetAtLeast(row, kBoundary, 0);
          break;
        case Location::kExterior:
          break;  // split points lie on b by construction
      }
    }
    for (const Coord& e : boundary) {
      switch (Locate(e, b)) {
        case Location::kInterior:
          m.SetAtLeast(kBoundary, kInterior, 0);
          break;
        case Location::kBoundary:
          m.SetAtLeast(kBoundary, kBoundary, 0);
          break;
        case Location::kExterior:
          m.SetAtLeast(kBoundary, kExterior, 0);
          break;
      }
    }
    return m;
  }

  // Polygonal a: probe its rings; the interior row is inferred from the
  // boundary classification.
  CurveProbe probe;
  for (const Geometry& leaf : a.Leaves()) {
    if (leaf.type() != GeometryType::kPolygon) continue;
    const geom::PolygonData& poly = leaf.AsPolygon();
    ProbePath(poly.shell, cuts, &probe);
    for (const Ring& hole : poly.holes) ProbePath(hole, cuts, &probe);
  }
  DedupPoints(&probe.split_points);

  for (const Coord& mid : probe.portion_mids) {
    switch (Locate(mid, b)) {
      case Location::kInterior:
        // The ring portion lies in b's interior. For a lower-dimensional b,
        // "interior" is a curve or point set and carries no area, so it must
        // not imply overlapping 2-d interiors.
        m.SetAtLeast(kBoundary, kInterior, 1);
        if (dim_b == 2) m.SetAtLeast(kInterior, kInterior, 2);
        break;
      case Location::kBoundary:
        m.SetAtLeast(kBoundary, kBoundary, 1);
        break;
      case Location::kExterior:
        m.SetAtLeast(kBoundary, kExterior, 1);
        // a's boundary outside b implies a's interior meets b's exterior.
        m.SetAtLeast(kInterior, kExterior, 2);
        break;
    }
  }
  for (const Coord& q : probe.split_points) {
    switch (Locate(q, b)) {
      case Location::kInterior:
        m.SetAtLeast(kBoundary, kInterior, 0);
        if (dim_b == 2) m.SetAtLeast(kInterior, kInterior, 2);
        break;
      case Location::kBoundary:
        m.SetAtLeast(kBoundary, kBoundary, 0);
        break;
      case Location::kExterior:
        break;
    }
  }
  // A polygon's interior always exceeds a lower-dimensional b.
  if (dim_b < 2) m.SetAtLeast(kInterior, kExterior, 2);
  return m;
}

}  // namespace

De9imMatrix Relate(const Geometry& a, const Geometry& b) {
  De9imMatrix m;
  m.Set(kExterior, kExterior, 2);
  const bool a_empty = a.IsEmpty();
  const bool b_empty = b.IsEmpty();
  if (a_empty || b_empty) {
    if (!b_empty) {
      m.Set(kExterior, kInterior, b.Dimension());
      m.Set(kExterior, kBoundary, BoundaryDimension(b));
    }
    if (!a_empty) {
      m.Set(kInterior, kExterior, a.Dimension());
      m.Set(kBoundary, kExterior, BoundaryDimension(a));
    }
    return m;
  }

  const De9imMatrix half_ab = HalfRelate(a, b);
  const De9imMatrix half_ba = HalfRelate(b, a);

  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      const auto row = static_cast<PointSet>(r);
      const auto col = static_cast<PointSet>(c);
      m.Set(row, col,
            std::max(half_ab.At(row, col),
                     half_ba.At(col, row)));
    }
  }
  m.Set(kInterior, kExterior, half_ab.At(kInterior, kExterior));
  m.Set(kBoundary, kExterior, half_ab.At(kBoundary, kExterior));
  m.Set(kExterior, kInterior, half_ba.At(kInterior, kExterior));
  m.Set(kExterior, kBoundary, half_ba.At(kBoundary, kExterior));

  // Area/area special case: if neither boundary strays inside or outside the
  // other, the regions coincide and the interiors intersect (e.g. exactly
  // equal polygons, whose probes classify every portion as Boundary).
  if (a.Dimension() == 2 && b.Dimension() == 2 &&
      m.At(kInterior, kInterior) < 0 && m.At(kInterior, kExterior) < 0 &&
      m.At(kExterior, kInterior) < 0) {
    m.Set(kInterior, kInterior, 2);
  }
  return m;
}

bool RelateMatches(const Geometry& a, const Geometry& b,
                   std::string_view pattern) {
  return Relate(a, b).Matches(pattern);
}

Geometry Boundary(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return Geometry::MakeCollection({});
    case GeometryType::kLineString:
    case GeometryType::kMultiLineString: {
      const std::vector<Coord> pts = LinealBoundaryPoints(g);
      if (pts.empty()) return Geometry::MakeEmpty(GeometryType::kMultiPoint);
      std::vector<Geometry> points;
      for (const Coord& c : pts) points.push_back(Geometry::MakePoint(c));
      if (points.size() == 1) return points[0];
      auto mp = Geometry::MakeMultiPoint(std::move(points));
      return mp.ok() ? std::move(mp).value()
                     : Geometry::MakeEmpty(GeometryType::kMultiPoint);
    }
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon: {
      std::vector<Geometry> rings;
      for (const Geometry& leaf : g.Leaves()) {
        if (leaf.type() != GeometryType::kPolygon) continue;
        const geom::PolygonData& poly = leaf.AsPolygon();
        auto add = [&rings](const Ring& r) {
          auto line = Geometry::MakeLineString(r);
          if (line.ok()) rings.push_back(std::move(line).value());
        };
        add(poly.shell);
        for (const Ring& hole : poly.holes) add(hole);
      }
      if (rings.empty()) {
        return Geometry::MakeEmpty(GeometryType::kMultiLineString);
      }
      if (rings.size() == 1) return rings[0];
      auto ml = Geometry::MakeMultiLineString(std::move(rings));
      return ml.ok() ? std::move(ml).value()
                     : Geometry::MakeEmpty(GeometryType::kMultiLineString);
    }
    case GeometryType::kGeometryCollection: {
      std::vector<Geometry> parts;
      for (const Geometry& part : g.Parts()) {
        Geometry b = Boundary(part);
        if (!b.IsEmpty()) parts.push_back(std::move(b));
      }
      return Geometry::MakeCollection(std::move(parts));
    }
  }
  return Geometry();
}

}  // namespace jackpine::topo
