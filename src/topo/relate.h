// Computes the DE-9IM intersection matrix between two geometries.
//
// Algorithm (see DESIGN.md): rather than building a full topology graph, the
// matrix is assembled from two symmetric "half relates". A half relate
// classifies one geometry's interior and boundary against the other
// geometry's interior/boundary/exterior by
//   1. splitting the first geometry's curves (lines, polygon rings) at every
//      intersection with the second geometry's segments, and
//   2. locating each resulting portion's midpoint, each split point, and
//      each boundary point within the second geometry.
// The exterior row of the full matrix is the transposed exterior column of
// the opposite half. This yields exact results for geometries in general
// position and for the standard degenerate contacts (shared edges, vertex
// touches) because portions and split points are classified independently.

#ifndef JACKPINE_TOPO_RELATE_H_
#define JACKPINE_TOPO_RELATE_H_

#include <string_view>

#include "geom/geometry.h"
#include "topo/de9im.h"

namespace jackpine::topo {

// Full DE-9IM matrix of `a` against `b`.
De9imMatrix Relate(const geom::Geometry& a, const geom::Geometry& b);

// True if Relate(a, b) matches `pattern` (ST_Relate 3-argument form).
bool RelateMatches(const geom::Geometry& a, const geom::Geometry& b,
                   std::string_view pattern);

// The OGC combinatorial boundary of a geometry (ST_Boundary):
// points -> empty; lines -> the mod-2 endpoint set as (Multi)Point;
// polygons -> the rings as (Multi)LineString; collections -> collection of
// member boundaries.
geom::Geometry Boundary(const geom::Geometry& g);

}  // namespace jackpine::topo

#endif  // JACKPINE_TOPO_RELATE_H_
