// The Dimensionally Extended 9-Intersection Model matrix.
//
// A DE-9IM matrix records, for the interior (I), boundary (B) and exterior
// (E) of two geometries, the topological dimension of each pairwise
// intersection: F (empty), 0, 1 or 2. The micro benchmark's topological
// query suite (experiment E1) is defined entirely in terms of named
// predicates that are patterns over this matrix.

#ifndef JACKPINE_TOPO_DE9IM_H_
#define JACKPINE_TOPO_DE9IM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace jackpine::topo {

// Row/column index into the matrix.
enum PointSet : int { kInterior = 0, kBoundary = 1, kExterior = 2 };

class De9imMatrix {
 public:
  // All entries start empty (F).
  De9imMatrix() { Fill(-1); }

  static constexpr int kDimFalse = -1;

  int At(PointSet row, PointSet col) const {
    return dims_[row][col];
  }
  void Set(PointSet row, PointSet col, int dim) { dims_[row][col] = dim; }

  // Raises the entry to at least `dim` (entries only grow during relate).
  void SetAtLeast(PointSet row, PointSet col, int dim) {
    if (dim > dims_[row][col]) dims_[row][col] = dim;
  }

  void Fill(int dim) {
    for (auto& row : dims_) {
      for (int8_t& d : row) d = static_cast<int8_t>(dim);
    }
  }

  // Swaps rows and columns (Relate(b, a) == Relate(a, b) transposed).
  De9imMatrix Transposed() const;

  // Matches an OGC pattern string of 9 characters over "012TF*", in row-major
  // order (II IB IE, BI BB BE, EI EB EE). 'T' matches any non-empty
  // dimension, 'F' matches empty, '*' matches anything.
  bool Matches(std::string_view pattern) const;

  // Renders as 9 characters over "012F".
  std::string ToString() const;

  friend bool operator==(const De9imMatrix& a, const De9imMatrix& b) {
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        if (a.dims_[r][c] != b.dims_[r][c]) return false;
      }
    }
    return true;
  }

 private:
  int8_t dims_[3][3];
};

}  // namespace jackpine::topo

#endif  // JACKPINE_TOPO_DE9IM_H_
