#include "topo/predicates.h"

#include "common/string_util.h"
#include "geom/envelope.h"
#include "topo/relate.h"

namespace jackpine::topo {

using geom::Envelope;
using geom::Geometry;

const char* PredicateName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEquals:
      return "ST_Equals";
    case PredicateKind::kDisjoint:
      return "ST_Disjoint";
    case PredicateKind::kIntersects:
      return "ST_Intersects";
    case PredicateKind::kTouches:
      return "ST_Touches";
    case PredicateKind::kCrosses:
      return "ST_Crosses";
    case PredicateKind::kWithin:
      return "ST_Within";
    case PredicateKind::kContains:
      return "ST_Contains";
    case PredicateKind::kOverlaps:
      return "ST_Overlaps";
    case PredicateKind::kCovers:
      return "ST_Covers";
    case PredicateKind::kCoveredBy:
      return "ST_CoveredBy";
  }
  return "ST_Unknown";
}

std::optional<PredicateKind> PredicateFromName(std::string_view name) {
  std::string lower = ToLowerAscii(name);
  if (StartsWith(lower, "st_")) lower = lower.substr(3);
  if (lower == "equals") return PredicateKind::kEquals;
  if (lower == "disjoint") return PredicateKind::kDisjoint;
  if (lower == "intersects") return PredicateKind::kIntersects;
  if (lower == "touches") return PredicateKind::kTouches;
  if (lower == "crosses") return PredicateKind::kCrosses;
  if (lower == "within") return PredicateKind::kWithin;
  if (lower == "contains") return PredicateKind::kContains;
  if (lower == "overlaps") return PredicateKind::kOverlaps;
  if (lower == "covers") return PredicateKind::kCovers;
  if (lower == "coveredby") return PredicateKind::kCoveredBy;
  return std::nullopt;
}

namespace {

bool EnvelopesDisjoint(const Geometry& a, const Geometry& b) {
  return !a.envelope().Intersects(b.envelope());
}

}  // namespace

bool Equals(const Geometry& a, const Geometry& b) {
  if (a.IsEmpty() && b.IsEmpty()) return true;
  if (!(a.envelope() == b.envelope())) return false;
  if (a.ExactlyEquals(b)) return true;
  return Relate(a, b).Matches("T*F**FFF*");
}

bool Disjoint(const Geometry& a, const Geometry& b) {
  if (EnvelopesDisjoint(a, b)) return true;
  return Relate(a, b).Matches("FF*FF****");
}

bool Intersects(const Geometry& a, const Geometry& b) {
  if (EnvelopesDisjoint(a, b)) return false;
  const De9imMatrix m = Relate(a, b);
  return m.At(kInterior, kInterior) >= 0 || m.At(kInterior, kBoundary) >= 0 ||
         m.At(kBoundary, kInterior) >= 0 || m.At(kBoundary, kBoundary) >= 0;
}

bool Touches(const Geometry& a, const Geometry& b) {
  if (EnvelopesDisjoint(a, b)) return false;
  const De9imMatrix m = Relate(a, b);
  return m.Matches("FT*******") || m.Matches("F**T*****") ||
         m.Matches("F***T****");
}

bool Crosses(const Geometry& a, const Geometry& b) {
  if (EnvelopesDisjoint(a, b)) return false;
  const int da = a.Dimension();
  const int db = b.Dimension();
  const De9imMatrix m = Relate(a, b);
  if (da < db) return m.Matches("T*T******");
  if (da > db) return m.Matches("T*****T**");
  if (da == 1 && db == 1) return m.Matches("0********");
  return false;
}

bool Within(const Geometry& a, const Geometry& b) {
  if (!b.envelope().Contains(a.envelope())) return false;
  return Relate(a, b).Matches("T*F**F***");
}

bool Contains(const Geometry& a, const Geometry& b) { return Within(b, a); }

bool Overlaps(const Geometry& a, const Geometry& b) {
  if (EnvelopesDisjoint(a, b)) return false;
  const int da = a.Dimension();
  const int db = b.Dimension();
  if (da != db) return false;
  const De9imMatrix m = Relate(a, b);
  if (da == 1) return m.Matches("1*T***T**");
  return m.Matches("T*T***T**");
}

bool Covers(const Geometry& a, const Geometry& b) {
  if (!a.envelope().Contains(b.envelope())) return false;
  const De9imMatrix m = Relate(a, b);
  return m.Matches("T*****FF*") || m.Matches("*T****FF*") ||
         m.Matches("**T***FF*") || m.Matches("***T**FF*");
}

bool CoveredBy(const Geometry& a, const Geometry& b) { return Covers(b, a); }

namespace {

// The MBR-only evaluation family. Each predicate is the corresponding
// rectangle relation, mirroring MySQL's MBR* function suite.
bool EvalMbrPredicate(PredicateKind kind, const Envelope& a,
                      const Envelope& b) {
  switch (kind) {
    case PredicateKind::kEquals:
      return a == b;
    case PredicateKind::kDisjoint:
      return !a.Intersects(b);
    case PredicateKind::kIntersects:
      return a.Intersects(b);
    case PredicateKind::kTouches:
      return a.Touches(b);
    case PredicateKind::kCrosses:
      // MBRs cannot "cross"; MySQL mapped Crosses to intersects-but-neither-
      // contains, which is what a rectangle overlap test reduces to.
      return a.Intersects(b) && !a.Contains(b) && !b.Contains(a);
    case PredicateKind::kWithin:
    case PredicateKind::kCoveredBy:
      return b.Contains(a);
    case PredicateKind::kContains:
    case PredicateKind::kCovers:
      return a.Contains(b);
    case PredicateKind::kOverlaps:
      return a.Intersects(b) && !a.Contains(b) && !b.Contains(a);
  }
  return false;
}

}  // namespace

bool EvalPredicate(PredicateKind kind, const Geometry& a, const Geometry& b,
                   PredicateMode mode) {
  if (mode == PredicateMode::kMbrOnly) {
    if (a.envelope().IsNull() || b.envelope().IsNull()) return false;
    return EvalMbrPredicate(kind, a.envelope(), b.envelope());
  }
  switch (kind) {
    case PredicateKind::kEquals:
      return Equals(a, b);
    case PredicateKind::kDisjoint:
      return Disjoint(a, b);
    case PredicateKind::kIntersects:
      return Intersects(a, b);
    case PredicateKind::kTouches:
      return Touches(a, b);
    case PredicateKind::kCrosses:
      return Crosses(a, b);
    case PredicateKind::kWithin:
      return Within(a, b);
    case PredicateKind::kContains:
      return Contains(a, b);
    case PredicateKind::kOverlaps:
      return Overlaps(a, b);
    case PredicateKind::kCovers:
      return Covers(a, b);
    case PredicateKind::kCoveredBy:
      return CoveredBy(a, b);
  }
  return false;
}

}  // namespace jackpine::topo
