#include "topo/de9im.h"

namespace jackpine::topo {

De9imMatrix De9imMatrix::Transposed() const {
  De9imMatrix out;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      out.dims_[c][r] = dims_[r][c];
    }
  }
  return out;
}

bool De9imMatrix::Matches(std::string_view pattern) const {
  if (pattern.size() != 9) return false;
  for (int i = 0; i < 9; ++i) {
    const int dim = dims_[i / 3][i % 3];
    switch (pattern[static_cast<size_t>(i)]) {
      case '*':
        break;
      case 'T':
      case 't':
        if (dim < 0) return false;
        break;
      case 'F':
      case 'f':
        if (dim >= 0) return false;
        break;
      case '0':
        if (dim != 0) return false;
        break;
      case '1':
        if (dim != 1) return false;
        break;
      case '2':
        if (dim != 2) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

std::string De9imMatrix::ToString() const {
  std::string out;
  out.reserve(9);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const int dim = dims_[r][c];
      out.push_back(dim < 0 ? 'F' : static_cast<char>('0' + dim));
    }
  }
  return out;
}

}  // namespace jackpine::topo
