#include "shard/health.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "net/remote_driver.h"

namespace jackpine::shard {

namespace {

std::string HealthLabel(const client::RemoteEndpoint& endpoint) {
  return StrFormat("%s:%u", endpoint.host.c_str(), unsigned{endpoint.port});
}

}  // namespace

HealthChecker::HealthChecker(std::vector<client::RemoteEndpoint> endpoints,
                             HealthOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      probes_total_(obs::GlobalRegistry().GetCounter("shard.health.probes")),
      probe_failures_(obs::GlobalRegistry().GetCounter("shard.health.probe_failures")),
      states_(endpoints_.size()) {
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    const std::string label = HealthLabel(endpoints_[i]);
    states_[i].up_gauge = obs::GlobalRegistry().GetGauge("shard.health.up." + label);
    states_[i].ewma_gauge = obs::GlobalRegistry().GetGauge("shard.health.ewma_ms." + label);
    states_[i].up_gauge->Set(1.0);  // optimistic until a probe says otherwise
    states_[i].ewma_gauge->Set(0.0);
  }
}

HealthChecker::~HealthChecker() { Stop(); }

void HealthChecker::Start() {
  if (options_.interval_ms <= 0 || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] {
    const auto period = std::chrono::duration<double, std::milli>(
        options_.interval_ms);
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      ProbeAllOnce();
      lock.lock();
      // wait_for (not sleep) so Stop() interrupts a long period promptly.
      cv_.wait_for(lock, period, [this] { return stop_; });
    }
  });
}

void HealthChecker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthChecker::ProbeAllOnce() {
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    const auto& ep = endpoints_[i];
    Result<net::PingProbe> probe =
        net::PingEndpoint(ep.host, ep.port, options_.timeout_s);
    std::lock_guard<std::mutex> lock(mu_);
    State& state = states_[i];
    state.probes += 1;
    probes_total_->Add(1);
    if (probe.ok()) {
      state.legacy = probe->legacy;
      // A legacy peer proves liveness but its "rtt" includes a handshake it
      // rejected; count it up without polluting the latency estimate.
      UpdateLocked(&state, /*ok=*/true,
                   probe->legacy ? -1.0 : probe->rtt_s);
    } else {
      state.failures += 1;
      probe_failures_->Add(1);
      UpdateLocked(&state, /*ok=*/false, -1.0);
    }
  }
}

void HealthChecker::Report(size_t i, bool ok, double latency_s) {
  if (i >= states_.size()) return;
  std::lock_guard<std::mutex> lock(mu_);
  UpdateLocked(&states_[i], ok, ok ? latency_s : -1.0);
}

void HealthChecker::UpdateLocked(State* state, bool ok, double latency_s) {
  if (ok) {
    state->consecutive_failures = 0;
    state->up = true;
    if (latency_s >= 0.0) {
      const double ms = latency_s * 1000.0;
      if (!state->has_sample) {
        state->has_sample = true;
        state->ewma_ms = ms;
        state->var_ms2 = 0.0;
      } else {
        // Joint EWMA of mean and variance (West 1979 incremental form):
        // the deviation from the *old* mean feeds the variance estimate.
        const double a = options_.ewma_alpha;
        const double d = ms - state->ewma_ms;
        state->ewma_ms += a * d;
        state->var_ms2 = (1.0 - a) * (state->var_ms2 + a * d * d);
      }
      state->ewma_gauge->Set(state->ewma_ms);
    }
  } else {
    state->consecutive_failures += 1;
    if (state->consecutive_failures >= options_.down_after) state->up = false;
  }
  state->up_gauge->Set(state->up ? 1.0 : 0.0);
}

HealthChecker::Snapshot HealthChecker::snapshot(size_t i) const {
  Snapshot snap;
  if (i >= states_.size()) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  const State& state = states_[i];
  snap.up = state.up;
  snap.legacy = state.legacy;
  snap.ewma_ms = state.ewma_ms;
  snap.p95_ms = state.ewma_ms + 1.645 * std::sqrt(state.var_ms2);
  snap.probes = state.probes;
  snap.failures = state.failures;
  return snap;
}

}  // namespace jackpine::shard
