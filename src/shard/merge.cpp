#include "shard/merge.h"

#include <algorithm>

#include "common/string_util.h"
#include "engine/database.h"

namespace jackpine::shard {

namespace {

geom::Envelope RowEnvelope(const engine::Row& row, int col) {
  const engine::Value& v = row[static_cast<size_t>(col)];
  if (v.type() != engine::DataType::kGeometry) return geom::Envelope();
  return v.geometry_value().envelope();
}

// Canonical owner of a join match: the lowest cell shared by both rows'
// margin-expanded cell sets and the contacted set. The co-location check at
// plan time guarantees the shared cell exists for every true match.
size_t CanonicalShardPair(const Partitioner& part, const geom::Envelope& a,
                          const geom::Envelope& b,
                          const std::vector<uint32_t>& contacted) {
  const std::vector<uint32_t> ca = part.CellsFor(a, part.margin());
  const std::vector<uint32_t> cb = part.CellsFor(b, part.margin());
  size_t ia = 0, ib = 0, ic = 0;
  while (ia < ca.size() && ib < cb.size() && ic < contacted.size()) {
    const uint32_t m = std::max(ca[ia], std::max(cb[ib], contacted[ic]));
    if (ca[ia] == m && cb[ib] == m && contacted[ic] == m) {
      return part.OwnerShard(m);
    }
    if (ca[ia] < m) ++ia;
    if (cb[ib] < m) ++ib;
    if (contacted[ic] < m) ++ic;
  }
  return part.num_shards();
}

Result<int> CompareRows(const engine::Row& a, const engine::Row& b,
                        const std::vector<int>& cols) {
  for (int c : cols) {
    JACKPINE_ASSIGN_OR_RETURN(int cmp,
                              a[static_cast<size_t>(c)].Compare(
                                  b[static_cast<size_t>(c)]));
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace

Result<std::vector<engine::Row>> DedupRows(
    const ScatterPlan& plan, const Partitioner& partitioner,
    const std::vector<ShardBatch>& batches) {
  // Partitioned tables drive the dedup; replicated tables are everywhere
  // and follow their partitioned join partner (all-replicated queries never
  // scatter, so at least one partitioned table exists here).
  std::vector<const TableDedup*> parts;
  for (const TableDedup& t : plan.tables) {
    if (!t.replicated) parts.push_back(&t);
  }
  std::vector<engine::Row> rows;
  for (const ShardBatch& batch : batches) {
    if (!batch.result.rows.empty() &&
        batch.result.columns.size() != plan.subquery_width) {
      return Status::Internal(StrFormat(
          "shard: subquery returned %zu columns, plan expects %zu",
          batch.result.columns.size(), plan.subquery_width));
    }
    for (const engine::Row& row : batch.result.rows) {
      size_t owner = partitioner.num_shards();
      if (parts.size() == 1) {
        owner = partitioner.CanonicalShard(
            RowEnvelope(row, parts[0]->envelope_col), plan.contacted_cells);
      } else if (parts.size() == 2) {
        owner = CanonicalShardPair(
            partitioner, RowEnvelope(row, parts[0]->envelope_col),
            RowEnvelope(row, parts[1]->envelope_col), plan.contacted_cells);
      }
      if (owner == batch.shard) rows.push_back(row);
    }
  }
  return rows;
}

Result<engine::QueryResult> MergeResults(const ScatterPlan& plan,
                                         const Partitioner& partitioner,
                                         const std::vector<ShardBatch>& batches) {
  JACKPINE_ASSIGN_OR_RETURN(std::vector<engine::Row> rows,
                            DedupRows(plan, partitioner, batches));
  engine::QueryResult merged;
  for (const ShardBatch& b : batches) {
    merged.rows_examined += b.result.rows_examined;
  }
  merged.columns = plan.result_columns;

  if (plan.mode == MergeMode::kConcat) {
    const size_t keep = plan.result_columns.size();
    size_t limit = rows.size();
    if (plan.limit.has_value() && *plan.limit >= 0 &&
        static_cast<size_t>(*plan.limit) < limit) {
      limit = static_cast<size_t>(*plan.limit);
    }
    merged.rows.reserve(limit);
    for (size_t i = 0; i < limit; ++i) {
      engine::Row& row = rows[i];
      row.resize(keep);  // strip trailing helper columns
      merged.rows.push_back(std::move(row));
    }
    return merged;
  }

  // kEngine: canonical (row id) order first, so the fold sees rows in the
  // same order a single node's executor would.
  Status sort_error = Status::Ok();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const engine::Row& a, const engine::Row& b) {
                     Result<int> cmp = CompareRows(a, b, plan.sort_cols);
                     if (!cmp.ok()) {
                       if (sort_error.ok()) sort_error = cmp.status();
                       return false;
                     }
                     return *cmp < 0;
                   });
  JACKPINE_RETURN_IF_ERROR(sort_error);

  // Column types inferred from the values (ints widen to double when both
  // appear); an all-NULL column defaults to BIGINT, which ValidateRow
  // accepts NULLs into.
  std::vector<engine::Column> columns(plan.subquery_width);
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].name = StrFormat("c%zu", c);
    columns[c].type = engine::DataType::kInt64;
    engine::DataType seen = engine::DataType::kNull;
    for (const engine::Row& row : rows) {
      const engine::DataType t = row[c].type();
      if (t == engine::DataType::kNull) continue;
      if (seen == engine::DataType::kNull) {
        seen = t;
      } else if (seen != t) {
        const bool numeric =
            (seen == engine::DataType::kInt64 ||
             seen == engine::DataType::kDouble) &&
            (t == engine::DataType::kInt64 || t == engine::DataType::kDouble);
        if (!numeric) {
          return Status::Internal(StrFormat(
              "shard: merge column %zu mixes %s and %s", c,
              engine::DataTypeName(seen), engine::DataTypeName(t)));
        }
        seen = engine::DataType::kDouble;
      }
    }
    if (seen != engine::DataType::kNull) columns[c].type = seen;
  }

  engine::DatabaseOptions options;
  options.name = "shard-merge";
  engine::Database merge_db(options);
  JACKPINE_ASSIGN_OR_RETURN(
      engine::Table * table,
      merge_db.catalog().CreateTable("__merge", engine::Schema(columns)));
  for (engine::Row& row : rows) {
    JACKPINE_RETURN_IF_ERROR(table->Append(std::move(row)));
  }
  JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult folded,
                            merge_db.Execute(plan.merge_sql));
  if (folded.columns.size() != plan.result_columns.size()) {
    return Status::Internal(StrFormat(
        "shard: merge query returned %zu columns, plan expects %zu",
        folded.columns.size(), plan.result_columns.size()));
  }
  merged.rows = std::move(folded.rows);
  return merged;
}

}  // namespace jackpine::shard
