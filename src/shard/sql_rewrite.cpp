#include "shard/sql_rewrite.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "engine/expression.h"
#include "engine/functions.h"

namespace jackpine::shard {

namespace {

using engine::Expr;
using engine::SelectStatement;

// ---------------------------------------------------------------------------
// Serializer

std::string SerializeLiteral(const engine::Value& v) {
  switch (v.type()) {
    case engine::DataType::kNull:
      return "NULL";
    case engine::DataType::kBool:
      return v.bool_value() ? "TRUE" : "FALSE";
    case engine::DataType::kInt64:
      return StrFormat("%lld",
                       static_cast<long long>(v.int_value()));
    case engine::DataType::kDouble: {
      std::string s = StrFormat("%.17g", v.double_value());
      // Keep the literal a double on re-parse: "5" would lex as an int.
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      return s;
    }
    case engine::DataType::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += '\'';
      return out;
    }
    case engine::DataType::kGeometry:
      // The parser never produces geometry literals, but a synthesized
      // expression might carry one; WKT round-trips through the constructor.
      return StrFormat("ST_GeomFromText('%s')",
                       v.ToDisplayString().c_str());
  }
  return "NULL";
}

}  // namespace

std::string SerializeExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return SerializeLiteral(expr.literal);
    case Expr::Kind::kColumnRef:
      return expr.table_qualifier.empty()
                 ? expr.column
                 : expr.table_qualifier + "." + expr.column;
    case Expr::Kind::kStar:
      return "*";
    case Expr::Kind::kFunctionCall: {
      std::string out = expr.function + "(";
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += SerializeExpr(*expr.children[i]);
      }
      out += ")";
      return out;
    }
    case Expr::Kind::kBinary:
      // Fully parenthesized: precedence never depends on the printer.
      return StrFormat("(%s %s %s)", SerializeExpr(*expr.children[0]).c_str(),
                       engine::BinaryOpName(expr.binary_op),
                       SerializeExpr(*expr.children[1]).c_str());
    case Expr::Kind::kUnary:
      return StrFormat("(%s %s)",
                       expr.unary_op == engine::UnaryOp::kNot ? "NOT" : "-",
                       SerializeExpr(*expr.children[0]).c_str());
  }
  return "NULL";
}

std::string SerializeSelect(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    const engine::SelectItem& item = stmt.items[i];
    if (item.star) {
      out += "*";
    } else {
      out += SerializeExpr(*item.expr);
      if (!item.alias.empty()) out += " AS " + item.alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.from[i].table;
    if (!stmt.from[i].alias.empty() &&
        !EqualsIgnoreCase(stmt.from[i].alias, stmt.from[i].table)) {
      out += " " + stmt.from[i].alias;
    }
  }
  if (stmt.where != nullptr) out += " WHERE " + SerializeExpr(*stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += SerializeExpr(*stmt.group_by[i]);
    }
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += SerializeExpr(*stmt.order_by[i].expr);
      out += stmt.order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += StrFormat(" LIMIT %lld", static_cast<long long>(*stmt.limit));
  }
  return out;
}

std::string SerializeStatement(const engine::Statement& stmt) {
  struct Visitor {
    std::string operator()(const SelectStatement& s) {
      return SerializeSelect(s);
    }
    std::string operator()(const engine::ExplainStatement& s) {
      return std::string("EXPLAIN ") + (s.analyze ? "ANALYZE " : "") +
             SerializeSelect(s.select);
    }
    std::string operator()(const engine::CreateTableStatement& s) {
      std::string out = "CREATE TABLE " + s.name + " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i].first + " " + s.columns[i].second;
      }
      return out + ")";
    }
    std::string operator()(const engine::InsertStatement& s) {
      std::string out = "INSERT INTO " + s.table + " VALUES ";
      for (size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t c = 0; c < s.rows[r].size(); ++c) {
          if (c > 0) out += ", ";
          out += SerializeExpr(*s.rows[r][c]);
        }
        out += ")";
      }
      return out;
    }
    std::string operator()(const engine::CreateIndexStatement& s) {
      return "CREATE SPATIAL INDEX ON " + s.table + " (" + s.column + ")";
    }
    std::string operator()(const engine::DropIndexStatement& s) {
      return "DROP SPATIAL INDEX ON " + s.table + " (" + s.column + ")";
    }
  };
  return std::visit(Visitor{}, stmt);
}

// ---------------------------------------------------------------------------
// Catalog

void ShardCatalog::AddFromDdl(const engine::CreateTableStatement& ddl,
                              bool replicated) {
  ShardTableInfo info;
  info.name = ddl.name;
  for (const auto& [col, type] : ddl.columns) {
    if (info.geometry_col < 0 && EqualsIgnoreCase(type, "GEOMETRY")) {
      info.geometry_col = static_cast<int>(info.columns.size());
    }
    info.columns.push_back(col);
  }
  info.replicated = replicated || info.geometry_col < 0;
  Add(std::move(info));
}

void ShardCatalog::Add(ShardTableInfo info) {
  tables_[ToLowerAscii(info.name)] = std::move(info);
}

const ShardTableInfo* ShardCatalog::Find(std::string_view table) const {
  auto it = tables_.find(ToLowerAscii(std::string(table)));
  return it != tables_.end() ? &it->second : nullptr;
}

// ---------------------------------------------------------------------------
// Planner

namespace {

// Spatial predicates whose truth implies the row's MBR overlaps the constant
// argument's envelope (expanded by d for ST_DWithin) — the prunable set.
// ST_Disjoint is deliberately absent.
bool IsPositiveSpatialPredicate(std::string_view name) {
  static const char* kNames[] = {
      "st_intersects", "st_contains", "st_within",   "st_equals",
      "st_touches",    "st_crosses",  "st_overlaps", "st_covers",
      "st_coveredby",  "st_dwithin"};
  for (const char* n : kNames) {
    if (EqualsIgnoreCase(name, n)) return true;
  }
  return false;
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == Expr::Kind::kFunctionCall &&
      engine::IsAggregateFunction(expr.function)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

bool ReferencesColumn(const Expr& expr) {
  if (expr.kind == Expr::Kind::kColumnRef ||
      expr.kind == Expr::Kind::kStar) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ReferencesColumn(*child)) return true;
  }
  return false;
}

// Evaluates a column-free subtree to a constant via the engine's own binder
// (so ST_GeomFromText etc. fold exactly as the server would fold them).
Result<engine::Value> EvalConstant(const Expr& expr) {
  engine::Binder binder({}, {});
  engine::EvalContext ctx;
  JACKPINE_ASSIGN_OR_RETURN(
      engine::BoundExpr bound,
      engine::BindExpr(expr, binder, ctx, /*allow_aggregates=*/false));
  if (bound.kind != engine::BoundExpr::Kind::kLiteral) {
    return Status::InvalidArgument("expression is not constant");
  }
  return bound.literal;
}

void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary &&
      expr.binary_op == engine::BinaryOp::kAnd) {
    CollectConjuncts(*expr.children[0], out);
    CollectConjuncts(*expr.children[1], out);
    return;
  }
  out->push_back(&expr);
}

struct FromTable {
  const ShardTableInfo* info = nullptr;
  std::string alias;  // as written (defaults to the table name)
};

// Resolves a column ref to the FROM-table index it belongs to, or -1.
int ResolveTable(const Expr& ref, const std::vector<FromTable>& from) {
  if (ref.kind != Expr::Kind::kColumnRef) return -1;
  if (!ref.table_qualifier.empty()) {
    for (size_t i = 0; i < from.size(); ++i) {
      if (EqualsIgnoreCase(ref.table_qualifier, from[i].alias) ||
          EqualsIgnoreCase(ref.table_qualifier, from[i].info->name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < from.size(); ++i) {
    for (const std::string& col : from[i].info->columns) {
      if (EqualsIgnoreCase(col, ref.column)) {
        if (found >= 0) return -1;  // ambiguous
        found = static_cast<int>(i);
        break;
      }
    }
  }
  return found;
}

// True when `ref` names table `t`'s geometry column.
bool IsGeometryColumn(const Expr& ref, const std::vector<FromTable>& from,
                      int t) {
  if (t < 0 || from[t].info->geometry_col < 0) return false;
  return EqualsIgnoreCase(
      ref.column, from[t].info->columns[from[t].info->geometry_col]);
}

// Registry of subquery helper expressions, deduplicated by serialized text
// (so `county` used in SELECT, GROUP BY and ORDER BY ships once).
struct HelperSet {
  std::vector<std::string> exprs;            // serialized, in position order
  std::map<std::string, size_t> positions;

  size_t Register(const std::string& serialized) {
    auto [it, inserted] = positions.try_emplace(serialized, exprs.size());
    if (inserted) exprs.push_back(serialized);
    return it->second;
  }
};

std::string MergeCol(size_t pos) { return StrFormat("c%zu", pos); }

// Rewrites a select/order expression for the merge query: aggregate calls
// keep their aggregate over a helper-column argument, maximal column-bearing
// non-aggregate subtrees collapse to their helper column, constants pass
// through. The result references only __merge columns.
std::string RewriteForMerge(const Expr& expr, HelperSet* helpers) {
  if (expr.kind == Expr::Kind::kFunctionCall &&
      engine::IsAggregateFunction(expr.function)) {
    const Expr& arg = *expr.children[0];
    if (arg.kind == Expr::Kind::kStar) return expr.function + "(*)";
    return expr.function + "(" +
           MergeCol(helpers->Register(SerializeExpr(arg))) + ")";
  }
  if (ContainsAggregate(expr)) {
    // An expression over aggregates (e.g. SUM(x) / COUNT(*)): rebuild the
    // structure, rewriting each child.
    switch (expr.kind) {
      case Expr::Kind::kBinary:
        return StrFormat("(%s %s %s)",
                         RewriteForMerge(*expr.children[0], helpers).c_str(),
                         engine::BinaryOpName(expr.binary_op),
                         RewriteForMerge(*expr.children[1], helpers).c_str());
      case Expr::Kind::kUnary:
        return StrFormat(
            "(%s %s)",
            expr.unary_op == engine::UnaryOp::kNot ? "NOT" : "-",
            RewriteForMerge(*expr.children[0], helpers).c_str());
      case Expr::Kind::kFunctionCall: {
        std::string out = expr.function + "(";
        for (size_t i = 0; i < expr.children.size(); ++i) {
          if (i > 0) out += ", ";
          out += RewriteForMerge(*expr.children[i], helpers);
        }
        return out + ")";
      }
      default:
        break;  // unreachable: leaves contain no aggregates
    }
  }
  if (ReferencesColumn(expr)) {
    return MergeCol(helpers->Register(SerializeExpr(expr)));
  }
  return SerializeExpr(expr);  // pure constant
}

// Final result column names, computed router-side with the engine's own
// naming rules so renamed merge results match a single-node run exactly.
std::vector<std::string> ComputeResultColumns(
    const SelectStatement& stmt, const std::vector<FromTable>& from) {
  std::vector<std::string> names;
  for (const engine::SelectItem& item : stmt.items) {
    if (item.star) {
      for (const FromTable& t : from) {
        for (const std::string& col : t.info->columns) names.push_back(col);
      }
    } else if (!item.alias.empty()) {
      names.push_back(item.alias);
    } else {
      names.push_back(engine::DisplayName(*item.expr));
    }
  }
  return names;
}

// Intersection window of every prunable WHERE conjunct against table 0's
// geometry column; sets `any` when at least one conjunct pruned.
Result<geom::Envelope> PruneWindow(const Expr* where,
                                  const std::vector<FromTable>& from,
                                  bool* any) {
  *any = false;
  geom::Envelope window;
  bool first = true;
  if (where == nullptr) return window;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*where, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kFunctionCall ||
        !IsPositiveSpatialPredicate(c->function) || c->children.size() < 2) {
      continue;
    }
    const Expr* col = c->children[0].get();
    const Expr* constant = c->children[1].get();
    if (!IsGeometryColumn(*col, from, ResolveTable(*col, from))) {
      std::swap(col, constant);
    }
    if (!IsGeometryColumn(*col, from, ResolveTable(*col, from))) continue;
    if (ReferencesColumn(*constant)) continue;
    Result<engine::Value> value = EvalConstant(*constant);
    if (!value.ok() || value->type() != engine::DataType::kGeometry) continue;
    geom::Envelope w = value->geometry_value().envelope();
    if (EqualsIgnoreCase(c->function, "st_dwithin")) {
      if (c->children.size() < 3 || ReferencesColumn(*c->children[2])) {
        continue;
      }
      Result<engine::Value> d = EvalConstant(*c->children[2]);
      if (!d.ok()) continue;
      Result<double> dist = d->AsDouble();
      if (!dist.ok() || *dist < 0.0) continue;
      w = w.Expanded(*dist);
    }
    *any = true;
    window = first ? w : window.Intersection(w);
    first = false;
  }
  return window;
}

// For a partitioned-partitioned join: checks that some top-level conjunct
// spatially co-locates the two tables within what the storage margin can
// prove local (DESIGN.md § Sharding, "join locality").
Status CheckJoinColocation(const SelectStatement& stmt,
                           const std::vector<FromTable>& from,
                           double margin) {
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) CollectConjuncts(*stmt.where, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kFunctionCall ||
        !IsPositiveSpatialPredicate(c->function) || c->children.size() < 2) {
      continue;
    }
    const int t0 = ResolveTable(*c->children[0], from);
    const int t1 = ResolveTable(*c->children[1], from);
    if (t0 < 0 || t1 < 0 || t0 == t1) continue;
    if (!IsGeometryColumn(*c->children[0], from, t0) ||
        !IsGeometryColumn(*c->children[1], from, t1)) {
      continue;
    }
    if (EqualsIgnoreCase(c->function, "st_dwithin")) {
      if (c->children.size() < 3) continue;
      Result<engine::Value> d = EvalConstant(*c->children[2]);
      if (!d.ok()) continue;
      Result<double> dist = d->AsDouble();
      if (!dist.ok()) continue;
      if (*dist > 2.0 * margin) {
        return Status::InvalidArgument(StrFormat(
            "shard: ST_DWithin distance %g exceeds twice the storage margin "
            "(%g); matches could span non-adjacent shards — raise the "
            "margin= URL option or replicate one table",
            *dist, margin));
      }
    }
    return Status::Ok();
  }
  return Status::InvalidArgument(StrFormat(
      "shard: join between partitioned tables '%s' and '%s' has no "
      "co-locating spatial predicate; matches could span shards — add a "
      "positive spatial join predicate or list one table in the replicate= "
      "URL option",
      from[0].info->name.c_str(), from[1].info->name.c_str()));
}

}  // namespace

Result<ScatterPlan> PlanSelect(const SelectStatement& stmt,
                               const ShardCatalog& catalog,
                               const Partitioner& partitioner) {
  if (stmt.from.empty() || stmt.from.size() > 2) {
    return Status::InvalidArgument(
        "shard: only 1- and 2-table SELECTs are supported");
  }
  std::vector<FromTable> from;
  for (const engine::TableRef& tr : stmt.from) {
    const ShardTableInfo* info = catalog.Find(tr.table);
    if (info == nullptr) {
      return Status::NotFound(StrFormat(
          "shard: unknown table '%s' (not created through this router)",
          tr.table.c_str()));
    }
    from.push_back({info, tr.alias.empty() ? tr.table : tr.alias});
  }

  ScatterPlan plan;
  plan.result_columns = ComputeResultColumns(stmt, from);

  const bool all_replicated =
      std::all_of(from.begin(), from.end(),
                  [](const FromTable& t) { return t.info->replicated; });

  // Contacted cells: a prunable window on a single partitioned table
  // shrinks the scatter; joins and unprunable queries touch everything.
  if (all_replicated) {
    plan.contacted_cells.clear();
    plan.targets = {0};
  } else if (stmt.from.size() == 1) {
    bool pruned = false;
    JACKPINE_ASSIGN_OR_RETURN(geom::Envelope window,
                              PruneWindow(stmt.where.get(), from, &pruned));
    if (pruned && window.IsNull()) {
      // Contradictory windows: provably empty.
      plan.targets.clear();
      return plan;
    }
    plan.pruned = pruned;
    plan.contacted_cells = pruned ? partitioner.CellsFor(window, 0.0)
                                  : partitioner.AllCells();
    plan.targets = partitioner.ShardsFor(plan.contacted_cells);
  } else {
    if (!from[0].info->replicated && !from[1].info->replicated) {
      JACKPINE_RETURN_IF_ERROR(
          CheckJoinColocation(stmt, from, partitioner.margin()));
    }
    plan.contacted_cells = partitioner.AllCells();
    plan.targets = partitioner.ShardsFor(plan.contacted_cells);
  }

  if (plan.targets.size() == 1) {
    plan.single_target = true;
    plan.subquery = SerializeSelect(stmt);
    return plan;
  }

  const bool has_agg =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const engine::SelectItem& i) {
                    return !i.star && ContainsAggregate(*i.expr);
                  }) ||
      std::any_of(stmt.order_by.begin(), stmt.order_by.end(),
                  [](const engine::OrderItem& o) {
                    return ContainsAggregate(*o.expr);
                  });
  plan.mode = (has_agg || !stmt.group_by.empty() || !stmt.order_by.empty())
                  ? MergeMode::kEngine
                  : MergeMode::kConcat;

  if (plan.mode == MergeMode::kConcat) {
    // Subquery = original select list + one ST_Envelope helper per
    // partitioned table; WHERE as-is; no ORDER/LIMIT (a shard cannot know
    // which of its rows survive dedup, so LIMIT applies post-merge).
    std::string select_list;
    size_t width = 0;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (i > 0) select_list += ", ";
      if (stmt.items[i].star) {
        select_list += "*";
        for (const FromTable& t : from) width += t.info->columns.size();
      } else {
        select_list += SerializeExpr(*stmt.items[i].expr);
        ++width;
      }
    }
    for (const FromTable& t : from) {
      TableDedup dedup;
      dedup.replicated = t.info->replicated;
      if (!t.info->replicated) {
        select_list += StrFormat(
            ", ST_Envelope(%s.%s)", t.alias.c_str(),
            t.info->columns[t.info->geometry_col].c_str());
        dedup.envelope_col = static_cast<int>(width++);
      }
      plan.tables.push_back(dedup);
    }
    plan.subquery_width = width;
    plan.limit = stmt.limit;
    plan.subquery = "SELECT " + select_list + " FROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (i > 0) plan.subquery += ", ";
      plan.subquery += stmt.from[i].table;
      if (!EqualsIgnoreCase(from[i].alias, stmt.from[i].table)) {
        plan.subquery += " " + from[i].alias;
      }
    }
    if (stmt.where != nullptr) {
      plan.subquery += " WHERE " + SerializeExpr(*stmt.where);
    }
    return plan;
  }

  // kEngine: the subquery fetches raw rows (ids + envelopes + every value
  // the fold needs); the merge query re-runs the fold over their deduped,
  // id-ordered union.
  HelperSet helpers;
  for (const FromTable& t : from) {
    TableDedup dedup;
    dedup.replicated = t.info->replicated;
    dedup.id_col = static_cast<int>(
        helpers.Register(t.alias + "." + t.info->columns[0]));
    plan.sort_cols.push_back(dedup.id_col);
    if (!t.info->replicated) {
      dedup.envelope_col = static_cast<int>(helpers.Register(StrFormat(
          "ST_Envelope(%s.%s)", t.alias.c_str(),
          t.info->columns[t.info->geometry_col].c_str())));
    }
    plan.tables.push_back(dedup);
  }
  std::string merge_items;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) merge_items += ", ";
    if (stmt.items[i].star) {
      std::string cols;
      for (const FromTable& t : from) {
        for (const std::string& col : t.info->columns) {
          if (!cols.empty()) cols += ", ";
          cols += MergeCol(helpers.Register(t.alias + "." + col));
        }
      }
      merge_items += cols;
    } else {
      merge_items += RewriteForMerge(*stmt.items[i].expr, &helpers);
    }
  }
  std::string merge_tail;
  if (!stmt.group_by.empty()) {
    merge_tail += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) merge_tail += ", ";
      merge_tail += MergeCol(helpers.Register(SerializeExpr(*stmt.group_by[i])));
    }
  }
  if (!stmt.order_by.empty()) {
    merge_tail += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) merge_tail += ", ";
      merge_tail += RewriteForMerge(*stmt.order_by[i].expr, &helpers);
      merge_tail += stmt.order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    merge_tail += StrFormat(" LIMIT %lld", static_cast<long long>(*stmt.limit));
  }
  plan.merge_sql = "SELECT " + merge_items + " FROM __merge" + merge_tail;

  plan.subquery = "SELECT ";
  for (size_t i = 0; i < helpers.exprs.size(); ++i) {
    if (i > 0) plan.subquery += ", ";
    plan.subquery += helpers.exprs[i];
  }
  plan.subquery_width = helpers.exprs.size();
  plan.subquery += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) plan.subquery += ", ";
    plan.subquery += stmt.from[i].table;
    if (!EqualsIgnoreCase(from[i].alias, stmt.from[i].table)) {
      plan.subquery += " " + from[i].alias;
    }
  }
  if (stmt.where != nullptr) {
    plan.subquery += " WHERE " + SerializeExpr(*stmt.where);
  }
  // Top-k pushdown: with ORDER BY + LIMIT and no aggregation, each shard's
  // top k under the total order (keys, row id) is a superset of its
  // contribution to the global top k, so the subquery can carry them. Any
  // aggregation needs every row, so the fold's ORDER/LIMIT stay merge-side.
  if (!has_agg && stmt.group_by.empty() && !stmt.order_by.empty() &&
      stmt.limit.has_value()) {
    plan.subquery += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) plan.subquery += ", ";
      plan.subquery += SerializeExpr(*stmt.order_by[i].expr);
      plan.subquery += stmt.order_by[i].ascending ? " ASC" : " DESC";
    }
    plan.subquery +=
        StrFormat(" LIMIT %lld", static_cast<long long>(*stmt.limit));
  }
  return plan;
}

}  // namespace jackpine::shard
