// Scatter-gather result merging: owner-cell dedup of the per-shard row
// streams, then either a plain union (kConcat) or an exact re-fold of the
// aggregate/GROUP BY/ORDER BY semantics in a private in-process engine
// (kEngine). Pure functions over QueryResults — unit-testable with
// synthetic per-shard batches.

#ifndef JACKPINE_SHARD_MERGE_H_
#define JACKPINE_SHARD_MERGE_H_

#include <vector>

#include "engine/executor.h"
#include "shard/partitioner.h"
#include "shard/sql_rewrite.h"

namespace jackpine::shard {

struct ShardBatch {
  size_t shard = 0;  // shard index the rows came from
  engine::QueryResult result;
};

// Applies the owner-cell dedup rule to the concatenated batches: a row
// survives iff the shard it came from is the canonical owner of its
// geometry (pair of geometries for a join) within the plan's contacted
// cells. Returns surviving rows, still carrying helper columns, in
// (batch order, row order) — deterministic given deterministic inputs.
Result<std::vector<engine::Row>> DedupRows(const ScatterPlan& plan,
                                           const Partitioner& partitioner,
                                           const std::vector<ShardBatch>& batches);

// Full merge: dedup + strip helpers (kConcat) or dedup + canonical-order
// re-fold through `plan.merge_sql` (kEngine). The result carries the
// plan's result_columns and the summed rows_examined of all batches.
Result<engine::QueryResult> MergeResults(const ScatterPlan& plan,
                                         const Partitioner& partitioner,
                                         const std::vector<ShardBatch>& batches);

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_MERGE_H_
