#include "shard/hilbert.h"

namespace jackpine::shard {

// The classic iterative xy -> d conversion: walk from the top-level quadrant
// down, rotating the frame at each level so the curve's U-shape nests.
uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = (order == 0) ? 0 : (1u << (order - 1)); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the sub-curve orientation matches.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const uint32_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

}  // namespace jackpine::shard
