// Active health checking for the shard router (DESIGN.md § Sharding,
// "High availability"): a background thread per router pings every endpoint
// of the cluster on a fixed period using the lightweight wire Ping frame
// (net/wire.h) and maintains, per endpoint:
//
//   - up/down: down after `down_after` consecutive probe failures, up again
//     on the first success. Optimistic start (everything is up until a probe
//     says otherwise), so a router is usable before its first sweep.
//   - an EWMA of the probe round-trip time plus an EWMA variance, from
//     which p95_ms estimates the latency tail (mean + 1.645 sigma) — the
//     hedge-delay input for the scatter path.
//
// The read path consults snapshot() to order replicas (healthy and fast
// first) *before* any circuit breaker trips: the breaker reacts to real
// query failures, the checker predicts them. Probes bypass the per-shard
// chaos wrap and the breakers entirely — they are measurement, not traffic,
// so deterministic chaos sequences and breaker state stay unperturbed.
//
// Exposition: shard.health.up.<endpoint> and shard.health.ewma_ms.<endpoint>
// gauges, plus shard.health.probes / shard.health.probe_failures counters,
// all in the global registry (visible to --json reports and Prometheus
// exposition on the client side of the wire).

#ifndef JACKPINE_SHARD_HEALTH_H_
#define JACKPINE_SHARD_HEALTH_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "client/driver.h"
#include "obs/metrics.h"

namespace jackpine::shard {

struct HealthOptions {
  double interval_ms = 100.0;  // probe period; Start() is a no-op when <= 0
  double timeout_s = 1.0;      // per-probe receive timeout
  double ewma_alpha = 0.3;     // smoothing for rtt mean and variance
  int down_after = 1;          // consecutive failures before down
};

class HealthChecker {
 public:
  struct Snapshot {
    bool up = true;
    bool legacy = false;   // peer predates the Ping frame (still up)
    double ewma_ms = 0.0;  // smoothed probe RTT (0 until the first sample)
    double p95_ms = 0.0;   // EWMA mean + 1.645 * EWMA stddev
    uint64_t probes = 0;
    uint64_t failures = 0;
  };

  HealthChecker(std::vector<client::RemoteEndpoint> endpoints,
                HealthOptions options = {});
  ~HealthChecker();  // stops the thread

  // Spawns the probe thread (idempotent; no-op when interval_ms <= 0).
  void Start();
  void Stop();

  // One synchronous sweep over every endpoint — what the thread runs each
  // period. Exposed for tests and for callers that want fresh state now.
  void ProbeAllOnce();

  size_t size() const { return endpoints_.size(); }
  Snapshot snapshot(size_t i) const;

  // Piggyback the outcome of a real call, so scatter traffic keeps health
  // fresh between probes: a success proves the endpoint up and contributes
  // a latency sample; a transport-class failure marks it down immediately.
  // The caller decides what counts — engine errors prove liveness and
  // should be reported ok.
  void Report(size_t i, bool ok, double latency_s);

 private:
  struct State {
    bool up = true;
    bool legacy = false;
    int consecutive_failures = 0;
    bool has_sample = false;
    double ewma_ms = 0.0;
    double var_ms2 = 0.0;  // EWMA of squared deviation
    uint64_t probes = 0;
    uint64_t failures = 0;
    obs::Gauge* up_gauge = nullptr;
    obs::Gauge* ewma_gauge = nullptr;
  };

  // Folds one observation in. Caller holds mu_.
  void UpdateLocked(State* state, bool ok, double latency_s);

  const std::vector<client::RemoteEndpoint> endpoints_;
  const HealthOptions options_;
  obs::Counter* probes_total_;
  obs::Counter* probe_failures_;

  mutable std::mutex mu_;  // guards states_ and stop_
  std::vector<State> states_;
  bool stop_ = false;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_HEALTH_H_
