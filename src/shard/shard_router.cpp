#include "shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <variant>

#include "common/string_util.h"
#include "engine/expression.h"
#include "engine/sql_parser.h"
#include <condition_variable>
#include <functional>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "shard/health.h"
#include "shard/merge.h"

namespace jackpine::shard {

namespace {

std::string EndpointLabel(const client::RemoteEndpoint& endpoint) {
  return StrFormat("%s:%u", endpoint.host.c_str(), unsigned{endpoint.port});
}

Result<double> ParseDoubleOption(std::string_view key, std::string_view text) {
  const std::string s(StripAscii(text));
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    return Status::InvalidArgument(
        StrFormat("shard URL: %s= expects a number, got '%s'",
                  std::string(key).c_str(), s.c_str()));
  }
  return v;
}

Result<long> ParseIntOption(std::string_view key, std::string_view text) {
  JACKPINE_ASSIGN_OR_RETURN(double v, ParseDoubleOption(key, text));
  const long n = static_cast<long>(v);
  if (static_cast<double>(n) != v) {
    return Status::InvalidArgument(
        StrFormat("shard URL: %s= expects an integer",
                  std::string(key).c_str()));
  }
  return n;
}

// Splits on `sep` at parenthesis depth zero, so chaos(...) endpoint wrappers
// survive the endpoint-list split.
std::vector<std::string_view> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (s[i] == sep && depth == 0) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
  return out;
}

Status ParseEndpointSpec(std::string_view spec,
                         client::RemoteEndpoint* endpoint,
                         std::optional<client::ChaosConfig>* chaos) {
  spec = StripAscii(spec);
  if (StartsWith(spec, "chaos(")) {
    const size_t close = spec.find(')');
    if (close == std::string_view::npos || close + 1 >= spec.size() ||
        spec[close + 1] != '@') {
      return Status::InvalidArgument(StrFormat(
          "shard URL: endpoint '%s' has a malformed chaos(...)@ prefix",
          std::string(spec).c_str()));
    }
    JACKPINE_ASSIGN_OR_RETURN(client::ChaosConfig config,
                              client::ParseChaosSpec(spec.substr(0, close + 1)));
    *chaos = config;
    spec = spec.substr(close + 2);
  }
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Status::InvalidArgument(
        StrFormat("shard URL: endpoint '%s' is not host:port",
                  std::string(spec).c_str()));
  }
  const std::string port_text(spec.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (port_text.empty() || end != port_text.c_str() + port_text.size() ||
      port == 0 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("shard URL: endpoint '%s' has an invalid port",
                  std::string(spec).c_str()));
  }
  endpoint->scheme = "tcp";
  endpoint->host = std::string(spec.substr(0, colon));
  endpoint->port = static_cast<uint16_t>(port);
  return Status::Ok();
}

// Evaluates a column-free expression (an INSERT value) to a constant via the
// engine's binder, so geometry literals route exactly as the shard servers
// will store them.
Result<engine::Value> EvalConstant(const engine::Expr& expr) {
  engine::Binder binder({}, {});
  engine::EvalContext ctx;
  JACKPINE_ASSIGN_OR_RETURN(
      engine::BoundExpr bound,
      engine::BindExpr(expr, binder, ctx, /*allow_aggregates=*/false));
  if (bound.kind != engine::BoundExpr::Kind::kLiteral) {
    return Status::InvalidArgument("expression is not constant");
  }
  return bound.literal;
}

engine::QueryResult RowsAffectedResult(int64_t rows) {
  engine::QueryResult result;
  result.columns = {"rows_affected"};
  result.rows.push_back({engine::Value::Int(rows)});
  return result;
}

struct ShardMetrics {
  obs::Counter* queries;
  obs::Counter* subqueries;
  obs::Counter* dedup_dropped;
  obs::Counter* merge_rows_in;
  obs::Counter* merge_rows_out;
  obs::Counter* failover;       // sub-calls re-issued on a sibling replica
  obs::Counter* hedges;         // hedge duplicates launched
  obs::Counter* hedge_wins;     // hedges whose reply beat the primary's
  obs::Counter* replica_stale;  // replicas marked stale after a missed write
  obs::Histogram* fanout;
  obs::Gauge* last_fanout;
};

ShardMetrics& Metrics() {
  static ShardMetrics metrics = [] {
    obs::Registry& reg = obs::GlobalRegistry();
    ShardMetrics m;
    m.queries = reg.GetCounter("shard.queries");
    m.subqueries = reg.GetCounter("shard.subqueries");
    m.dedup_dropped = reg.GetCounter("shard.dedup_dropped");
    m.merge_rows_in = reg.GetCounter("shard.merge.rows_in");
    m.merge_rows_out = reg.GetCounter("shard.merge.rows_out");
    m.failover = reg.GetCounter("shard.failover");
    m.hedges = reg.GetCounter("shard.hedges");
    m.hedge_wins = reg.GetCounter("shard.hedge_wins");
    m.replica_stale = reg.GetCounter("shard.replica_stale");
    m.fanout = reg.GetHistogram("shard.fanout",
                                obs::Histogram::PowerOfTwoBounds(9));
    m.last_fanout = reg.GetGauge("shard.last_fanout");
    return m;
  }();
  return metrics;
}

}  // namespace

// See the header for the priority lattice. Lives outside the session so it
// is unit-testable against hand-built status vectors.
Status CombineStatuses(const std::vector<Status>& errors) {
  const Status* shed = nullptr;
  const Status* fast_fail = nullptr;
  const Status* first = nullptr;
  for (const Status& s : errors) {
    if (s.ok()) continue;
    if (!first) first = &s;
    if (!IsRetryable(s)) return s;
    if (IsShed(s)) {
      if (!shed || s.retry_after_ms() > shed->retry_after_ms()) shed = &s;
    } else if (IsBreakerFastFail(s)) {
      if (!fast_fail || s.retry_after_ms() > fast_fail->retry_after_ms()) {
        fast_fail = &s;
      }
    }
  }
  if (shed) return *shed;
  if (fast_fail) return *fast_fail;
  if (first) return *first;
  return Status::Ok();
}

struct ShardDriver::CatalogState {
  std::mutex mu;
  ShardCatalog catalog;
};

Result<ShardOptions> ParseShardUrl(std::string_view rest) {
  const std::string_view prefix = "shard(";
  if (!StartsWith(rest, prefix)) {
    return Status::InvalidArgument(
        StrFormat("shard URL must start with 'shard(': '%s'",
                  std::string(rest).c_str()));
  }
  // Matching close paren (chaos specs nest parens inside).
  int depth = 0;
  size_t close = std::string_view::npos;
  for (size_t i = prefix.size() - 1; i < rest.size(); ++i) {
    if (rest[i] == '(') ++depth;
    if (rest[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string_view::npos) {
    return Status::InvalidArgument("shard URL: unbalanced parentheses");
  }
  const std::string_view tail = rest.substr(close + 1);
  if (tail.size() < 2 || tail[0] != '/') {
    return Status::InvalidArgument(
        "shard URL: expected '/<sut>' after the endpoint list, e.g. "
        "jackpine:shard(127.0.0.1:7701,127.0.0.1:7702)/pine-rtree");
  }

  ShardOptions options;
  options.sut = std::string(tail.substr(1));

  const std::string_view body = rest.substr(prefix.size(), close - prefix.size());
  const std::vector<std::string_view> segments = SplitTopLevel(body, ';');
  // Each comma-separated slot is one shard; '|' inside a slot separates its
  // replicas (paren-aware, so chaos(...)@ prefixes survive both splits).
  for (std::string_view slot : SplitTopLevel(segments[0], ',')) {
    std::vector<ReplicaSpec> group;
    for (std::string_view ep : SplitTopLevel(slot, '|')) {
      ReplicaSpec replica;
      JACKPINE_RETURN_IF_ERROR(
          ParseEndpointSpec(ep, &replica.endpoint, &replica.chaos));
      replica.endpoint.sut = options.sut;
      group.push_back(std::move(replica));
    }
    options.shards.push_back(std::move(group));
  }
  if (options.shards.empty()) {
    return Status::InvalidArgument("shard URL: no endpoints");
  }

  for (size_t i = 1; i < segments.size(); ++i) {
    const std::string_view seg = StripAscii(segments[i]);
    if (seg.empty()) continue;
    const size_t eq = seg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("shard URL: option '%s' is not key=value",
                    std::string(seg).c_str()));
    }
    const std::string key = ToLowerAscii(StripAscii(seg.substr(0, eq)));
    const std::string_view value = seg.substr(eq + 1);
    if (key == "grid") {
      JACKPINE_ASSIGN_OR_RETURN(long side, ParseIntOption(key, value));
      if (side < 2 || side > 256 || (side & (side - 1)) != 0) {
        return Status::InvalidArgument(
            "shard URL: grid= must be a power of two in [2, 256]");
      }
      uint32_t order = 0;
      while ((1L << order) < side) ++order;
      options.partition.grid_order = order;
    } else if (key == "margin") {
      JACKPINE_ASSIGN_OR_RETURN(double margin, ParseDoubleOption(key, value));
      if (margin < 0.0) {
        return Status::InvalidArgument("shard URL: margin= must be >= 0");
      }
      options.partition.margin = margin;
    } else if (key == "vnodes") {
      JACKPINE_ASSIGN_OR_RETURN(long vnodes, ParseIntOption(key, value));
      if (vnodes < 1 || vnodes > 4096) {
        return Status::InvalidArgument(
            "shard URL: vnodes= must be in [1, 4096]");
      }
      options.partition.virtual_nodes = static_cast<uint32_t>(vnodes);
    } else if (key == "bounds") {
      const std::vector<std::string> parts = Split(std::string(value), ':');
      if (parts.size() != 4) {
        return Status::InvalidArgument(
            "shard URL: bounds= expects minx:miny:maxx:maxy");
      }
      double v[4];
      for (size_t p = 0; p < 4; ++p) {
        JACKPINE_ASSIGN_OR_RETURN(v[p], ParseDoubleOption(key, parts[p]));
      }
      if (v[0] >= v[2] || v[1] >= v[3]) {
        return Status::InvalidArgument(
            "shard URL: bounds= must satisfy minx < maxx and miny < maxy");
      }
      options.partition.bounds = geom::Envelope(v[0], v[1], v[2], v[3]);
    } else if (key == "replicate") {
      for (std::string_view t : SplitTopLevel(value, '|')) {
        const std::string name = ToLowerAscii(StripAscii(t));
        if (!name.empty()) options.replicated_tables.push_back(name);
      }
    } else if (key == "health_ms") {
      JACKPINE_ASSIGN_OR_RETURN(double ms, ParseDoubleOption(key, value));
      if (ms < 0.0) {
        return Status::InvalidArgument(
            "shard URL: health_ms= must be >= 0 (0 disables probing)");
      }
      options.health_ms = ms;
    } else if (key == "hedge_ms") {
      JACKPINE_ASSIGN_OR_RETURN(double ms, ParseDoubleOption(key, value));
      if (ms < 0.0) {
        return Status::InvalidArgument(
            "shard URL: hedge_ms= must be >= 0 (0 derives the delay from "
            "health EWMA p95)");
      }
      options.hedge_ms = ms;
    } else {
      return Status::InvalidArgument(StrFormat(
          "shard URL: unknown option '%s' (expected grid/margin/vnodes/"
          "bounds/replicate/health_ms/hedge_ms)", key.c_str()));
    }
  }
  return options;
}

ShardDriver::ShardDriver(ShardOptions options, Partitioner partitioner)
    : options_(std::move(options)), partitioner_(std::move(partitioner)) {}

ShardDriver::~ShardDriver() = default;  // here so HealthChecker is complete

Result<std::shared_ptr<ShardDriver>> ShardDriver::Create(ShardOptions options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("shard driver: no endpoints");
  }
  for (const std::vector<ReplicaSpec>& group : options.shards) {
    if (group.empty()) {
      return Status::InvalidArgument("shard driver: empty replica group");
    }
  }
  // Ring identity = the primary replica's label, so adding replicas to a
  // slot never moves data between shards.
  std::vector<std::string> names;
  names.reserve(options.shards.size());
  for (const std::vector<ReplicaSpec>& group : options.shards) {
    names.push_back(EndpointLabel(group[0].endpoint));
  }
  Partitioner partitioner(options.partition, names);
  auto driver = std::shared_ptr<ShardDriver>(
      new ShardDriver(std::move(options), std::move(partitioner)));
  driver->catalog_ = std::make_shared<CatalogState>();
  std::vector<client::RemoteEndpoint> probe_targets;
  bool any_replicated_slot = false;
  driver->replicas_.resize(driver->options_.shards.size());
  for (size_t i = 0; i < driver->options_.shards.size(); ++i) {
    const std::vector<ReplicaSpec>& group = driver->options_.shards[i];
    if (group.size() > 1) any_replicated_slot = true;
    for (const ReplicaSpec& spec : group) {
      // Lazy transport: construct the per-replica driver without the eager
      // probe OpenRemoteDriver does, so a dead endpoint fails (and trips
      // its breaker) at the first query that needs it, not at Open.
      Replica replica;
      replica.driver = std::make_shared<net::RemoteDriver>(spec.endpoint);
      replica.chaos = spec.chaos
                          ? std::make_shared<client::ChaosState>(*spec.chaos)
                          : nullptr;
      replica.stale = std::make_shared<std::atomic<bool>>(false);
      replica.errors = obs::GlobalRegistry().GetCounter(StrFormat(
          "shard.errors.%s", EndpointLabel(spec.endpoint).c_str()));
      replica.health_index = probe_targets.size();
      probe_targets.push_back(spec.endpoint);
      driver->replicas_[i].push_back(std::move(replica));
    }
  }
  // Health checking defaults on only when some shard actually has a sibling
  // to steer towards; a plain single-replica cluster keeps its pre-HA
  // behavior (no probe connections perturbing max_sessions budgets).
  double health_ms = driver->options_.health_ms;
  if (health_ms < 0.0) health_ms = any_replicated_slot ? 100.0 : 0.0;
  if (health_ms > 0.0) {
    HealthOptions health_options;
    health_options.interval_ms = health_ms;
    driver->health_ = std::make_unique<HealthChecker>(
        std::move(probe_targets), health_options);
    driver->health_->Start();
  }
  return driver;
}

// One router session: the DriverSession a client::Statement executes on.
// Holds one cached DriverSession per replica (opened on demand, reopened
// when a transport failure marks it unhealthy, exactly like Statement's own
// reconnect loop one level up).
class ShardSession : public client::DriverSession {
 public:
  explicit ShardSession(std::shared_ptr<ShardDriver> driver)
      : driver_(std::move(driver)), sessions_(driver_->replicas_.size()) {
    for (size_t i = 0; i < sessions_.size(); ++i) {
      sessions_[i].resize(driver_->replicas_[i].size());
    }
  }

  Result<engine::QueryResult> ExecuteQuery(std::string_view sql,
                                           const ExecLimits& limits) override {
    return Dispatch(sql, limits);
  }

  Result<engine::QueryResult> ExecuteUpdate(std::string_view sql,
                                            const ExecLimits& limits) override {
    return Dispatch(sql, limits);
  }

  bool healthy() const override {
    // The router reconnects per shard internally; the session object itself
    // never wears out.
    return true;
  }

 private:
  struct ShardCall {
    size_t shard = 0;
    std::string sql;
    // DDL that re-establishes a stale replica: a successful CREATE TABLE
    // there clears its stale flag (the loader path recreates tables before
    // re-inserting, so this is the re-sync entry point).
    bool resync = false;
  };

  const Partitioner& partitioner() const { return driver_->partitioner_; }

  const client::RemoteEndpoint& ReplicaEndpoint(size_t shard,
                                                size_t replica) const {
    return driver_->options_.shards[shard][replica].endpoint;
  }

  // Returns the cached session for (shard, replica), dialing a fresh one
  // when the slot is empty or latched unhealthy. The dead session object is
  // dropped *before* the dial: a failed redial must not leave a corpse (and
  // its half-closed socket) wedged in the slot, or a restarted server could
  // never rejoin without a new router.
  Result<std::shared_ptr<client::DriverSession>> AcquireSession(
      size_t shard, size_t replica) {
    std::shared_ptr<client::DriverSession>& slot = sessions_[shard][replica];
    if (slot && slot->healthy()) return slot;
    slot.reset();
    JACKPINE_ASSIGN_OR_RETURN(
        slot, driver_->replicas_[shard][replica].driver->NewSession());
    return slot;
  }

  // Runs one sub-call against one replica, applying that replica's chaos
  // wrap (queries only — loads must stay deterministic, matching the chaos
  // driver's own rule). `session_sink`, when set, receives the live session
  // before the call blocks, so a hedging peer can Abort it.
  Result<engine::QueryResult> CallReplica(
      size_t shard, size_t replica, const std::string& sql,
      const ExecLimits& limits, bool is_query,
      const std::function<void(const std::shared_ptr<client::DriverSession>&)>&
          session_sink = nullptr) {
    ShardDriver::Replica& state = driver_->replicas_[shard][replica];
    if (is_query && state.chaos) {
      const client::ChaosState::Fault fault = state.chaos->NextFault();
      if (fault.delay_ms > 0.0) {
        double delay_ms = fault.delay_ms;
        if (limits.deadline_s > 0.0) {
          delay_ms = std::min(delay_ms, limits.deadline_s * 1000.0);
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      if (fault.fail) {
        return Status::Unavailable(StrFormat(
            "%s: chaos: injected transient failure (draw #%llu)",
            EndpointLabel(ReplicaEndpoint(shard, replica)).c_str(),
            static_cast<unsigned long long>(fault.sequence)));
      }
    }
    JACKPINE_ASSIGN_OR_RETURN(std::shared_ptr<client::DriverSession> session,
                              AcquireSession(shard, replica));
    if (session_sink) session_sink(session);
    Result<engine::QueryResult> result =
        is_query ? session->ExecuteQuery(sql, limits)
                 : session->ExecuteUpdate(sql, limits);
    if (!result.ok()) state.errors->Add();
    return result;
  }

  // The replica order a read should try for one shard: stale replicas are
  // excluded (unless every replica is stale — availability beats staleness
  // when there is nothing fresh left), then health-ranked — down endpoints
  // last, open-breaker endpoints next-to-last, the rest by EWMA RTT. With
  // no health checker the URL order stands.
  std::vector<size_t> ReadOrder(size_t shard) const {
    const std::vector<ShardDriver::Replica>& replicas =
        driver_->replicas_[shard];
    std::vector<size_t> order;
    for (size_t r = 0; r < replicas.size(); ++r) {
      if (!replicas[r].stale->load(std::memory_order_acquire)) {
        order.push_back(r);
      }
    }
    if (order.empty()) {
      for (size_t r = 0; r < replicas.size(); ++r) order.push_back(r);
    }
    if (driver_->health_ && order.size() > 1) {
      struct Rank {
        bool down;
        bool breaker_open;
        double ewma_ms;
      };
      std::vector<Rank> ranks(replicas.size());
      for (size_t r : order) {
        const HealthChecker::Snapshot snap =
            driver_->health_->snapshot(replicas[r].health_index);
        ranks[r].down = !snap.up;
        ranks[r].breaker_open = replicas[r].driver->breaker()->state() ==
                                client::CircuitBreaker::State::kOpen;
        ranks[r].ewma_ms = snap.ewma_ms;
      }
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (ranks[a].down != ranks[b].down) return ranks[b].down;
        if (ranks[a].breaker_open != ranks[b].breaker_open) {
          return ranks[b].breaker_open;
        }
        return ranks[a].ewma_ms < ranks[b].ewma_ms;
      });
    }
    return order;
  }

  // One read against one shard with transparent failover: walk the replica
  // order, re-issuing on the next sibling whenever a sub-call dies
  // retryably (transport error, chaos fault, breaker fast-fail, shed). A
  // non-retryable error propagates immediately — retrying cannot fix it and
  // siblings hold the same data.
  Result<engine::QueryResult> CallShardRead(size_t shard,
                                            const std::string& sql,
                                            const ExecLimits& limits,
                                            bool is_query, obs::Span* span) {
    const std::vector<size_t> order = ReadOrder(shard);
    if (is_query && driver_->options_.hedge_ms >= 0.0 && order.size() >= 2) {
      return HedgedCall(shard, order, sql, limits, span);
    }
    std::vector<Status> errors;
    for (size_t attempt = 0; attempt < order.size(); ++attempt) {
      const size_t replica = order[attempt];
      if (attempt > 0) {
        Metrics().failover->Add();
        if (span) {
          span->Annotate("failover_to",
                         EndpointLabel(ReplicaEndpoint(shard, replica)));
        }
      }
      Result<engine::QueryResult> result =
          CallReplica(shard, replica, sql, limits, is_query);
      if (result.ok() || !IsRetryable(result.status())) return result;
      errors.push_back(result.status());
    }
    return CombineStatuses(errors);
  }

  // Tail-latency hedging: run the primary replica, and if it has not
  // answered within the hedge delay, race a duplicate on the best sibling —
  // first success wins and the loser's in-flight call is cancelled via
  // DriverSession::Abort (charged to the abort, not the breaker). Falls
  // back to sequential failover over the remaining order when both legs
  // fail retryably.
  Result<engine::QueryResult> HedgedCall(size_t shard,
                                         const std::vector<size_t>& order,
                                         const std::string& sql,
                                         const ExecLimits& limits,
                                         obs::Span* span) {
    double delay_ms = driver_->options_.hedge_ms;
    if (delay_ms <= 0.0) {
      // Auto: the primary's EWMA p95 — a reply slower than that is in the
      // tail the hedge exists to cut. 10ms floor-default before the first
      // sample; clamped so a cold or noisy estimate cannot disable hedging
      // or hammer the sibling.
      double p95 = 10.0;
      if (driver_->health_) {
        const HealthChecker::Snapshot snap = driver_->health_->snapshot(
            driver_->replicas_[shard][order[0]].health_index);
        if (snap.ewma_ms > 0.0) p95 = snap.p95_ms;
      }
      delay_ms = std::min(std::max(p95, 1.0), 250.0);
    }

    struct Leg {
      std::optional<Result<engine::QueryResult>> result;
      std::shared_ptr<client::DriverSession> session;
      std::thread thread;
    };
    std::mutex mu;
    std::condition_variable cv;
    int finished = 0;
    int winner = -1;
    Leg legs[2];
    auto run_leg = [&](int leg, size_t replica) {
      Result<engine::QueryResult> result = CallReplica(
          shard, replica, sql, limits, /*is_query=*/true,
          [&](const std::shared_ptr<client::DriverSession>& session) {
            std::lock_guard<std::mutex> lock(mu);
            legs[leg].session = session;
          });
      std::lock_guard<std::mutex> lock(mu);
      if (result.ok() && winner < 0) winner = leg;
      legs[leg].result = std::move(result);
      ++finished;
      cv.notify_all();
    };

    legs[0].thread = std::thread(run_leg, 0, order[0]);
    bool hedged = false;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock,
                  std::chrono::duration<double, std::milli>(delay_ms),
                  [&] { return finished > 0; });
      hedged = finished == 0;
    }
    if (hedged) {
      Metrics().hedges->Add();
      if (span) {
        span->Annotate("hedged_to",
                       EndpointLabel(ReplicaEndpoint(shard, order[1])));
      }
      legs[1].thread = std::thread(run_leg, 1, order[1]);
    }
    const int leg_count = hedged ? 2 : 1;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return winner >= 0 || finished == leg_count; });
      // Cancel the loser so its socket recv unblocks; its failure is
      // charged to the abort (RemoteSession skips the breaker) and the
      // session redials on next use.
      if (winner >= 0) {
        for (int leg = 0; leg < leg_count; ++leg) {
          if (leg != winner && !legs[leg].result && legs[leg].session) {
            legs[leg].session->Abort();
          }
        }
      }
    }
    for (int leg = 0; leg < leg_count; ++leg) {
      if (legs[leg].thread.joinable()) legs[leg].thread.join();
    }
    if (winner >= 0) {
      if (winner == 1) Metrics().hedge_wins->Add();
      return std::move(*legs[winner].result);
    }
    // Both legs failed. Sequential failover over the rest of the order,
    // counting each extra attempt.
    std::vector<Status> errors;
    for (int leg = 0; leg < leg_count; ++leg) {
      errors.push_back(legs[leg].result->status());
      if (!IsRetryable(errors.back())) return errors.back();
    }
    for (size_t attempt = leg_count; attempt < order.size(); ++attempt) {
      const size_t replica = order[attempt];
      Metrics().failover->Add();
      if (span) {
        span->Annotate("failover_to",
                       EndpointLabel(ReplicaEndpoint(shard, replica)));
      }
      Result<engine::QueryResult> result =
          CallReplica(shard, replica, sql, limits, /*is_query=*/true);
      if (result.ok() || !IsRetryable(result.status())) return result;
      errors.push_back(result.status());
    }
    return CombineStatuses(errors);
  }

  // One write against one shard: broadcast to every replica of the group so
  // siblings stay identical. The write succeeds iff at least one replica
  // acked; a replica that missed a write a sibling took is marked stale and
  // drops out of reads until re-synced (`resync` DDL clears the flag on
  // success). When *every* replica fails nothing diverged, so nobody is
  // marked — the combined error propagates for the retry loop upstream.
  Result<engine::QueryResult> CallShardWrite(size_t shard,
                                             const std::string& sql,
                                             const ExecLimits& limits,
                                             bool resync) {
    std::vector<ShardDriver::Replica>& replicas = driver_->replicas_[shard];
    std::optional<Result<engine::QueryResult>> acked;
    std::vector<Status> errors;
    std::vector<size_t> missed;
    for (size_t r = 0; r < replicas.size(); ++r) {
      Result<engine::QueryResult> result =
          CallReplica(shard, r, sql, limits, /*is_query=*/false);
      if (result.ok()) {
        if (resync) replicas[r].stale->store(false, std::memory_order_release);
        if (!acked) acked = std::move(result);
      } else {
        errors.push_back(result.status());
        missed.push_back(r);
      }
    }
    if (!acked) return CombineStatuses(errors);
    for (size_t r : missed) {
      if (!replicas[r].stale->exchange(true, std::memory_order_acq_rel)) {
        Metrics().replica_stale->Add();
      }
    }
    return std::move(*acked);
  }

  // Concurrent fan-out: one thread per call, per-slot scratch traces merged
  // after the join (the shared trace sink is not thread-safe), per-subquery
  // spans recorded under `scatter_span_id`.
  Result<std::vector<ShardBatch>> Scatter(const std::vector<ShardCall>& calls,
                                          const ExecLimits& limits,
                                          bool is_query,
                                          uint64_t scatter_span_id) {
    Metrics().subqueries->Add(calls.size());
    std::vector<std::optional<Result<engine::QueryResult>>> slots(calls.size());
    std::vector<obs::QueryTrace> scratch(calls.size());
    const bool spans_on = limits.spans && limits.spans->enabled() &&
                          limits.trace_id != 0;
    {
      std::vector<std::thread> threads;
      threads.reserve(calls.size());
      for (size_t i = 0; i < calls.size(); ++i) {
        threads.emplace_back([&, i] {
          ExecLimits sub = limits;
          sub.trace = limits.trace ? &scratch[i] : nullptr;
          obs::Span span;
          if (spans_on) {
            span = limits.spans->StartSpan("shard.subquery", limits.trace_id,
                                           scatter_span_id);
            span.Annotate(
                "endpoint",
                EndpointLabel(ReplicaEndpoint(calls[i].shard, 0)));
            sub.parent_span_id = span.span_id();
          }
          slots[i] =
              is_query
                  ? CallShardRead(calls[i].shard, calls[i].sql, sub, is_query,
                                  spans_on ? &span : nullptr)
                  : CallShardWrite(calls[i].shard, calls[i].sql, sub,
                                   calls[i].resync);
          if (spans_on && !slots[i]->ok()) {
            span.Annotate("error",
                          StatusCodeName(slots[i]->status().code()));
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
    if (limits.trace) {
      for (const obs::QueryTrace& t : scratch) *limits.trace += t;
    }
    std::vector<Status> errors;
    for (const auto& slot : slots) errors.push_back(slot->status());
    JACKPINE_RETURN_IF_ERROR(CombineStatuses(errors));
    std::vector<ShardBatch> batches;
    batches.reserve(calls.size());
    for (size_t i = 0; i < calls.size(); ++i) {
      batches.push_back(
          ShardBatch{calls[i].shard, std::move(*slots[i]).value()});
    }
    return batches;
  }

  // Sends `sql` to every shard (DDL). All shards must succeed (each shard
  // needs >= 1 replica ack); the reply is shard 0's (they are identical for
  // DDL). `resync` marks re-establishing DDL — see ShardCall.
  Result<engine::QueryResult> Broadcast(std::string_view sql,
                                        const ExecLimits& limits,
                                        bool resync = false) {
    std::vector<ShardCall> calls;
    for (size_t i = 0; i < driver_->replicas_.size(); ++i) {
      calls.push_back(ShardCall{i, std::string(sql), resync});
    }
    JACKPINE_ASSIGN_OR_RETURN(std::vector<ShardBatch> batches,
                              Scatter(calls, limits, /*is_query=*/false, 0));
    return std::move(batches[0].result);
  }

  // Lazy catalog discovery for tables that predate this router instance:
  // probe the shards for one row and reconstruct the schema from it. A
  // rowless (or unknown) table stays undiscovered — the planner then fails
  // with its canonical "unknown table" error, or DDL through the router
  // fills the catalog properly. A probe that fails *retryably* (shed, shard
  // down, chaos) blocks discovery instead: that error propagates, so a
  // saturated shard does not masquerade as missing data.
  Status DiscoverTable(const std::string& table, const ExecLimits& limits) {
    Status blocked;  // first retryable probe failure, if any
    for (size_t i = 0; i < driver_->replicas_.size(); ++i) {
      Result<engine::QueryResult> probe = CallShardRead(
          i, StrFormat("SELECT * FROM %s LIMIT 1", table.c_str()), limits,
          /*is_query=*/true, /*span=*/nullptr);
      if (!probe.ok()) {
        if (blocked.ok() && IsRetryable(probe.status())) {
          blocked = probe.status();
        }
        continue;
      }
      ShardTableInfo info;
      info.name = table;
      info.columns = probe->columns;
      if (!probe->rows.empty()) {
        for (size_t c = 0; c < probe->rows[0].size(); ++c) {
          if (probe->rows[0][c].type() == engine::DataType::kGeometry) {
            info.geometry_col = static_cast<int>(c);
            break;
          }
        }
      }
      const std::string lower = ToLowerAscii(table);
      const auto& repl = driver_->options_.replicated_tables;
      info.replicated =
          info.geometry_col < 0 ||
          std::find(repl.begin(), repl.end(), lower) != repl.end();
      if (info.geometry_col >= 0 || !probe->rows.empty()) {
        driver_->catalog_->catalog.Add(std::move(info));
        return Status::Ok();
      }
    }
    return blocked;
  }

  Result<engine::QueryResult> Dispatch(std::string_view sql,
                                       const ExecLimits& limits) {
    Metrics().queries->Add();
    Result<engine::Statement> parsed = engine::ParseSql(sql);
    if (!parsed.ok()) {
      // Ship the original text to shard 0 so the client sees the server's
      // canonical parse error, identical to a single-node run.
      return CallShardRead(0, std::string(sql), limits, /*is_query=*/true,
                           /*span=*/nullptr);
    }
    engine::Statement& stmt = *parsed;
    if (auto* select = std::get_if<engine::SelectStatement>(&stmt)) {
      return ExecuteSelect(*select, limits);
    }
    if (std::get_if<engine::ExplainStatement>(&stmt)) {
      // EXPLAIN describes one engine's plan; shard 0's stands in for the
      // cluster (documented in DESIGN.md § Sharding).
      return CallShardRead(0, std::string(sql), limits, /*is_query=*/true,
                           /*span=*/nullptr);
    }
    if (auto* create = std::get_if<engine::CreateTableStatement>(&stmt)) {
      const std::string lower = ToLowerAscii(create->name);
      const auto& repl = driver_->options_.replicated_tables;
      const bool replicated =
          std::find(repl.begin(), repl.end(), lower) != repl.end();
      {
        std::lock_guard<std::mutex> lock(driver_->catalog_->mu);
        driver_->catalog_->catalog.AddFromDdl(*create, replicated);
      }
      // CREATE TABLE is the loader's first act against a re-synced replica,
      // so success there clears the stale flag.
      return Broadcast(sql, limits, /*resync=*/true);
    }
    if (auto* insert = std::get_if<engine::InsertStatement>(&stmt)) {
      return ExecuteInsert(*insert, limits);
    }
    // CREATE INDEX / DROP INDEX: every shard indexes its slice.
    return Broadcast(sql, limits);
  }

  Result<engine::QueryResult> ExecuteInsert(
      const engine::InsertStatement& stmt, const ExecLimits& limits) {
    const ShardTableInfo* info = nullptr;
    {
      std::lock_guard<std::mutex> lock(driver_->catalog_->mu);
      info = driver_->catalog_->catalog.Find(stmt.table);
      if (!info) {
        JACKPINE_RETURN_IF_ERROR(DiscoverTable(stmt.table, limits));
        info = driver_->catalog_->catalog.Find(stmt.table);
      }
    }
    if (!info) {
      return Status::NotFound(StrFormat(
          "unknown table '%s' (not created through this router)",
          stmt.table.c_str()));
    }

    // Serialize each row once; shards receive the subset of rows whose
    // margin-expanded MBR touches a cell they own (replicated tables get
    // every row on every shard).
    std::vector<std::string> row_text;
    std::vector<std::vector<size_t>> shard_rows(driver_->replicas_.size());
    for (size_t r = 0; r < stmt.rows.size(); ++r) {
      const std::vector<engine::ExprPtr>& row = stmt.rows[r];
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const engine::ExprPtr& e : row) cells.push_back(SerializeExpr(*e));
      row_text.push_back(StrFormat("(%s)", Join(cells, ", ").c_str()));

      if (info->replicated) {
        for (size_t s = 0; s < shard_rows.size(); ++s) {
          shard_rows[s].push_back(r);
        }
        continue;
      }
      geom::Envelope box;  // null => cell 0 (geometry-less / NULL geometry)
      if (info->geometry_col >= 0 &&
          static_cast<size_t>(info->geometry_col) < row.size()) {
        Result<engine::Value> v =
            EvalConstant(*row[static_cast<size_t>(info->geometry_col)]);
        if (v.ok() && v->type() == engine::DataType::kGeometry) {
          box = v->geometry_value().envelope();
        }
      }
      const std::vector<uint32_t> cells_for =
          partitioner().CellsFor(box, partitioner().margin());
      for (size_t s : partitioner().ShardsFor(cells_for)) {
        shard_rows[s].push_back(r);
      }
    }

    std::vector<ShardCall> calls;
    for (size_t s = 0; s < shard_rows.size(); ++s) {
      if (shard_rows[s].empty()) continue;
      std::vector<std::string> rows;
      rows.reserve(shard_rows[s].size());
      for (size_t r : shard_rows[s]) rows.push_back(row_text[r]);
      calls.push_back(ShardCall{
          s, StrFormat("INSERT INTO %s VALUES %s", stmt.table.c_str(),
                       Join(rows, ", ").c_str())});
    }
    if (!calls.empty()) {
      JACKPINE_RETURN_IF_ERROR(
          Scatter(calls, limits, /*is_query=*/false, 0).status());
    }
    // Logical row count: what a single node would report, not the physical
    // count inflated by border duplicates.
    return RowsAffectedResult(static_cast<int64_t>(stmt.rows.size()));
  }

  Result<engine::QueryResult> ExecuteSelect(
      const engine::SelectStatement& stmt, const ExecLimits& limits) {
    ScatterPlan plan;
    {
      std::lock_guard<std::mutex> lock(driver_->catalog_->mu);
      for (const engine::TableRef& ref : stmt.from) {
        if (!driver_->catalog_->catalog.Find(ref.table)) {
          JACKPINE_RETURN_IF_ERROR(DiscoverTable(ref.table, limits));
        }
      }
      JACKPINE_ASSIGN_OR_RETURN(
          plan, PlanSelect(stmt, driver_->catalog_->catalog, partitioner()));
    }

    Metrics().fanout->Observe(static_cast<double>(plan.targets.size()));
    Metrics().last_fanout->Set(static_cast<double>(plan.targets.size()));

    if (plan.targets.empty()) {
      // Provably empty (the predicate window misses the grid entirely).
      engine::QueryResult empty;
      empty.columns = plan.result_columns;
      return empty;
    }

    const bool spans_on = limits.spans && limits.spans->enabled() &&
                          limits.trace_id != 0;
    obs::Span scatter_span;
    uint64_t scatter_span_id = limits.parent_span_id;
    if (spans_on) {
      scatter_span = limits.spans->StartSpan("shard.scatter", limits.trace_id,
                                             limits.parent_span_id);
      scatter_span.Annotate(
          "fanout", StrFormat("%zu", plan.targets.size()));
      scatter_span.Annotate(
          "cells", StrFormat("%zu", plan.contacted_cells.size()));
      if (plan.pruned) scatter_span.Annotate("pruned", "true");
      scatter_span_id = scatter_span.span_id();
    }

    std::vector<ShardCall> calls;
    for (size_t s : plan.targets) {
      calls.push_back(ShardCall{s, plan.subquery});
    }
    JACKPINE_ASSIGN_OR_RETURN(
        std::vector<ShardBatch> batches,
        Scatter(calls, limits, /*is_query=*/true, scatter_span_id));

    if (plan.single_target) {
      return std::move(batches[0].result);
    }

    size_t rows_in = 0;
    for (const ShardBatch& b : batches) rows_in += b.result.rows.size();

    obs::Span merge_span;
    if (spans_on) {
      merge_span = limits.spans->StartSpan("shard.merge", limits.trace_id,
                                           limits.parent_span_id);
    }
    JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult merged,
                              MergeResults(plan, partitioner(), batches));
    Metrics().merge_rows_in->Add(rows_in);
    Metrics().merge_rows_out->Add(merged.rows.size());
    if (rows_in > merged.rows.size()) {
      Metrics().dedup_dropped->Add(rows_in - merged.rows.size());
    }
    if (spans_on) {
      merge_span.Annotate("rows_in", StrFormat("%zu", rows_in));
      merge_span.Annotate("rows_out", StrFormat("%zu", merged.rows.size()));
    }
    if (limits.trace) limits.trace->rows_returned += merged.rows.size();
    return merged;
  }

  std::shared_ptr<ShardDriver> driver_;
  // sessions_[shard][replica]: per-replica cached sessions. Concurrent
  // scatter threads touch disjoint shard rows; a hedge's two legs touch
  // disjoint replica slots of one row — no slot is ever shared.
  std::vector<std::vector<std::shared_ptr<client::DriverSession>>> sessions_;
};

Result<std::shared_ptr<client::DriverSession>> ShardDriver::NewSession() {
  return std::static_pointer_cast<client::DriverSession>(
      std::make_shared<ShardSession>(shared_from_this()));
}

void RegisterShardDriver() {
  client::RegisterTargetOpener(
      "shard",
      [](std::string_view rest) -> Result<client::OpenedTarget> {
        JACKPINE_ASSIGN_OR_RETURN(ShardOptions options, ParseShardUrl(rest));
        JACKPINE_ASSIGN_OR_RETURN(client::SutConfig config,
                                  client::SutByName(options.sut));
        JACKPINE_ASSIGN_OR_RETURN(std::shared_ptr<ShardDriver> driver,
                                  ShardDriver::Create(std::move(options)));
        client::OpenedTarget target;
        target.config = std::move(config);
        target.config.name =
            StrFormat("shard%zu/%s", driver->num_shards(),
                      driver->options().sut.c_str());
        target.driver = driver;
        return target;
      });
}

namespace {
[[maybe_unused]] const bool kRegistered = [] {
  RegisterShardDriver();
  return true;
}();
}  // namespace

}  // namespace jackpine::shard
