// Query planning for the shard router: AST serialization, the cluster-side
// table catalog, and the scatter plan (which shards to contact, what SQL to
// send them, and how to merge what comes back).
//
// Everything here is pure — no sockets, no engine instances — so the plans
// are unit-testable: parse a query, plan it against a catalog and a
// partitioner, and inspect targets / subquery / merge SQL directly.

#ifndef JACKPINE_SHARD_SQL_REWRITE_H_
#define JACKPINE_SHARD_SQL_REWRITE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/sql_ast.h"
#include "shard/partitioner.h"

namespace jackpine::shard {

// AST -> SQL text. The output re-parses to a structurally identical
// statement (fully parenthesized; double literals keep their type via a
// forced decimal point or exponent), which is what lets the router ship
// rewritten queries to shard servers over the existing wire protocol.
std::string SerializeExpr(const engine::Expr& expr);
std::string SerializeSelect(const engine::SelectStatement& stmt);
std::string SerializeStatement(const engine::Statement& stmt);

// What the router knows about one cluster table.
struct ShardTableInfo {
  std::string name;                  // original spelling
  std::vector<std::string> columns;  // original spelling, schema order
  int geometry_col = -1;             // first GEOMETRY column; -1 = none
  // Replicated tables live in full on every shard (broadcast INSERT, no
  // dedup): geometry-less tables, plus any table named in the shard URL's
  // replicate= option (for non-spatial joins that cannot be co-located).
  bool replicated = false;
};

// The router-side catalog, built from the CREATE TABLE DDL that flows
// through the router (plus lazy discovery for pre-existing tables).
class ShardCatalog {
 public:
  void AddFromDdl(const engine::CreateTableStatement& ddl, bool replicated);
  void Add(ShardTableInfo info);
  const ShardTableInfo* Find(std::string_view table) const;

 private:
  std::map<std::string, ShardTableInfo> tables_;  // keyed by lower-case name
};

// Per-FROM-table dedup bookkeeping: where in the subquery's select list the
// helper columns landed.
struct TableDedup {
  bool replicated = false;
  int envelope_col = -1;  // ST_Envelope(geom) helper; -1 for replicated
  int id_col = -1;        // first-column helper (kEngine plans only)
};

enum class MergeMode : uint8_t {
  // Union the deduped per-shard rows and strip the helper columns: exact
  // for plain SELECTs, whose output is an unordered row set.
  kConcat,
  // Replay the aggregate/GROUP BY/ORDER BY fold over the deduped row union
  // in a private in-process engine: the subquery fetches raw per-row values
  // (aggregate arguments, group keys, order keys) instead of computing
  // anything shard-side, the merge loads them in canonical (row id) order
  // and runs `merge_sql`, so the engine's own accumulation/tie-breaking
  // code reproduces single-node results bit for bit.
  kEngine,
};

struct ScatterPlan {
  // Shard indexes to contact (ascending) and the grid cells the query
  // covers. `pruned` marks a predicate-window plan (the fanout metric's
  // interesting case). Empty targets = provably empty result.
  std::vector<size_t> targets;
  std::vector<uint32_t> contacted_cells;
  bool pruned = false;

  // One reachable shard (single-owner window, 1-shard cluster, or an
  // all-replicated FROM): the original statement goes to targets[0]
  // verbatim and the reply passes through untouched — trivially exact.
  bool single_target = false;

  std::string subquery;        // SQL sent to every target
  size_t subquery_width = 0;   // expected subquery column count
  MergeMode mode = MergeMode::kConcat;
  std::vector<std::string> result_columns;  // final column names
  std::vector<TableDedup> tables;           // FROM order

  // kConcat: LIMIT applied after dedup (not pushed down — a shard cannot
  // know how many of its first N rows survive dedup).
  std::optional<int64_t> limit;

  // kEngine: the fold to run over the merge table (named __merge, columns
  // c0..cN mirroring the subquery select list positionally), and the id
  // helper columns to pre-sort the deduped union by (canonical row order).
  std::string merge_sql;
  std::vector<int> sort_cols;
};

// Plans one SELECT. Fails with kNotFound for tables missing from the
// catalog and kInvalidArgument for partitioned-partitioned joins without a
// co-locating spatial predicate (or with an ST_DWithin distance beyond what
// the storage margin can prove local).
Result<ScatterPlan> PlanSelect(const engine::SelectStatement& stmt,
                               const ShardCatalog& catalog,
                               const Partitioner& partitioner);

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_SQL_REWRITE_H_
