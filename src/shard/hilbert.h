// Hilbert curve index for the shard partitioner's grid cells.
//
// The consistent-hash ring keys cells by their Hilbert index rather than a
// hash of the cell id: the curve maps 2-D adjacency to 1-D adjacency, so
// spatially neighbouring cells land on contiguous ring arcs and usually on
// the same shard. A window query then touches few shards, which is what
// makes predicate-window pruning pay off (DESIGN.md § Sharding).

#ifndef JACKPINE_SHARD_HILBERT_H_
#define JACKPINE_SHARD_HILBERT_H_

#include <cstdint>

namespace jackpine::shard {

// Index of cell (x, y) on the Hilbert curve over a 2^order x 2^order grid.
// x and y must be < 2^order; order must be <= 31.
uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y);

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_HILBERT_H_
