// Spatial partitioning for a pinedb cluster: a fixed grid over the dataset
// bounds, cells assigned to shards through a consistent-hash ring keyed by
// Hilbert index.
//
// Ownership model (DESIGN.md § Sharding):
//   - The world is a 2^order x 2^order grid over `bounds`; geometry that
//     falls outside is clamped to the border cells, and geometry-less rows
//     live in cell 0, so every row has at least one cell.
//   - A row is STORED on every shard owning a cell its MBR (expanded by the
//     storage margin) overlaps — border-straddling rows are duplicated.
//   - A row is REPORTED by exactly one shard per query: the owner of the
//     lowest cell in cells(row) ∩ cells(query). Both sides compute that set
//     from the same grid, so the dedup needs no cross-shard coordination.
//   - Cells map to shards via a consistent-hash ring (vnodes per shard, cell
//     key = Hilbert index scaled onto the ring): adding a shard re-homes
//     only the cells on the arcs its vnodes claim, everything else stays.

#ifndef JACKPINE_SHARD_PARTITIONER_H_
#define JACKPINE_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/envelope.h"

namespace jackpine::shard {

struct PartitionConfig {
  geom::Envelope bounds{0.0, 0.0, 100.0, 100.0};
  // Grid is 2^grid_order cells per side (default 16x16).
  uint32_t grid_order = 4;
  // Storage margin: rows are replicated to shards whose cells their MBR
  // expanded by this much overlaps, which is what lets a join shard prove
  // locally that it sees every partner within `margin` of its own cells.
  // Negative (the default) resolves to 1% of the larger bounds extent.
  double margin = -1.0;
  // Virtual nodes per shard on the consistent-hash ring.
  uint32_t virtual_nodes = 64;

  uint32_t GridSide() const { return 1u << grid_order; }
  uint32_t NumCells() const { return GridSide() * GridSide(); }
  double ResolvedMargin() const;
};

class Partitioner {
 public:
  // `shard_names` are the ring identities (endpoint labels): assignment is a
  // pure function of the names and the config, so every router instance over
  // the same cluster computes the same ownership.
  Partitioner(PartitionConfig config, std::vector<std::string> shard_names);

  const PartitionConfig& config() const { return config_; }
  size_t num_shards() const { return shard_names_.size(); }
  uint32_t num_cells() const { return config_.NumCells(); }
  double margin() const { return margin_; }

  // Cells (row-major ids, ascending) overlapping `box` expanded by `expand`.
  // Out-of-bounds geometry clamps to the border cells; a null box yields
  // {0} so geometry-less rows are routable.
  std::vector<uint32_t> CellsFor(const geom::Envelope& box,
                                 double expand) const;
  std::vector<uint32_t> AllCells() const;

  // Ring owner of one cell.
  size_t OwnerShard(uint32_t cell) const { return cell_owner_[cell]; }

  // Shards owning at least one of `cells` (ascending, deduped).
  std::vector<size_t> ShardsFor(const std::vector<uint32_t>& cells) const;

  // The one shard that must report a row whose (margin-expanded) MBR is
  // `box`, given the ascending cell set a query contacted: the owner of the
  // lowest cell in CellsFor(box, margin) ∩ contacted. Returns num_shards()
  // when the intersection is empty (the row is out of the query's scope).
  size_t CanonicalShard(const geom::Envelope& box,
                        const std::vector<uint32_t>& contacted_cells) const;

 private:
  PartitionConfig config_;
  std::vector<std::string> shard_names_;
  double margin_ = 0.0;
  std::vector<size_t> cell_owner_;  // cell id -> shard index
};

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_PARTITIONER_H_
