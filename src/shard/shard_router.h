// jackpine::shard — the cluster router. A client::Driver that spreads
// tables across N pinedb servers by spatial partition and presents them as
// one SUT behind the URL form
//
//   jackpine:shard(<ep>[,<ep>...][;opt=value...])/<sut>
//
//   <ep>     host:port, optionally prefixed "chaos(seed,rate,latency)@" to
//            compose the deterministic chaos driver around one shard.
//   grid=N       grid side (power of two in [2, 256]; default 16)
//   bounds=a:b:c:d   dataset bounds minx:miny:maxx:maxy (default 0:0:100:100)
//   margin=M     storage margin (default 1% of the larger bounds extent)
//   vnodes=V     ring virtual nodes per shard (default 64)
//   replicate=t1|t2  tables replicated to every shard (for joins that have
//            no co-locating spatial predicate, e.g. attribute joins)
//
// e.g. jackpine:shard(127.0.0.1:7701,127.0.0.1:7702;replicate=county)/pine-rtree
//
// DDL broadcasts; INSERT routes each row by its geometry MBR (duplicating
// border-straddlers within the storage margin); SELECTs scatter to the
// shards owning the query's cells and merge exactly (owner-cell dedup +
// engine-replayed folds; see sql_rewrite.h / merge.h). Per-shard resilience
// reuses the remote driver's CircuitBreaker and the server's retry_after_ms
// shed pacing; scatter/merge record spans under the query's trace_id and
// feed shard.* metrics in the global registry.

#ifndef JACKPINE_SHARD_SHARD_ROUTER_H_
#define JACKPINE_SHARD_SHARD_ROUTER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/client.h"
#include "net/remote_driver.h"
#include "shard/partitioner.h"
#include "shard/sql_rewrite.h"

namespace jackpine::shard {

struct ShardOptions {
  std::vector<client::RemoteEndpoint> endpoints;
  // Per-endpoint chaos wrap; nullopt = no injection for that shard.
  std::vector<std::optional<client::ChaosConfig>> chaos;
  PartitionConfig partition;
  std::vector<std::string> replicated_tables;  // lower-case
  std::string sut;
};

// Parses the URL tail "shard(...)/<sut>" (the part after "jackpine:").
Result<ShardOptions> ParseShardUrl(std::string_view rest);

class ShardDriver : public client::Driver,
                    public std::enable_shared_from_this<ShardDriver> {
 public:
  // Validates options and builds the ring; connections to the shards are
  // lazy (first use), so a dead shard fails the first query that needs it
  // — and trips that shard's breaker — rather than failing Open.
  static Result<std::shared_ptr<ShardDriver>> Create(ShardOptions options);

  Result<std::shared_ptr<client::DriverSession>> NewSession() override;

  const ShardOptions& options() const { return options_; }
  const Partitioner& partitioner() const { return partitioner_; }
  size_t num_shards() const { return options_.endpoints.size(); }
  // Per-shard remote driver (shared breaker across sessions); for tests
  // and diagnostics.
  net::RemoteDriver* shard_driver(size_t i) { return drivers_[i].get(); }

 private:
  friend class ShardSession;
  ShardDriver(ShardOptions options, Partitioner partitioner);

  ShardOptions options_;
  Partitioner partitioner_;
  std::vector<std::shared_ptr<net::RemoteDriver>> drivers_;
  std::vector<std::shared_ptr<client::ChaosState>> chaos_;  // null = none
  // Router-side catalog, shared by every session so DDL through one
  // connection is visible to all.
  struct CatalogState;
  std::shared_ptr<CatalogState> catalog_;
};

// Installs the "shard" composite target in the client opener registry,
// enabling jackpine:shard(...)/sut URLs. Idempotent; call once at startup
// (binaries linking this library get it via static self-registration).
void RegisterShardDriver();

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_SHARD_ROUTER_H_
