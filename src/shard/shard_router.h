// jackpine::shard — the cluster router. A client::Driver that spreads
// tables across N pinedb servers by spatial partition and presents them as
// one SUT behind the URL form
//
//   jackpine:shard(<slot>[,<slot>...][;opt=value...])/<sut>
//
//   <slot>   one shard: a replica group "ep[|ep...]" — the first replica is
//            the primary whose host:port names the shard on the hash ring;
//            siblings hold the same slice for availability.
//   <ep>     host:port, optionally prefixed "chaos(seed,rate,latency)@" to
//            compose the deterministic chaos driver around one replica.
//   grid=N       grid side (power of two in [2, 256]; default 16)
//   bounds=a:b:c:d   dataset bounds minx:miny:maxx:maxy (default 0:0:100:100)
//   margin=M     storage margin (default 1% of the larger bounds extent)
//   vnodes=V     ring virtual nodes per shard (default 64)
//   replicate=t1|t2  tables replicated to every shard (for joins that have
//            no co-locating spatial predicate, e.g. attribute joins)
//   health_ms=P  active health-check period in ms. Default: 100 when any
//            shard has >= 2 replicas, otherwise off. 0 disables probing.
//   hedge_ms=D   tail-latency hedging for scatter reads: after D ms without
//            a reply, duplicate the subquery on a sibling replica and take
//            the first response. 0 derives D from the health checker's
//            EWMA p95. Absent = hedging off.
//
// e.g. jackpine:shard(127.0.0.1:7701|127.0.0.1:7711,127.0.0.1:7702|
//      127.0.0.1:7712;replicate=county)/pine-rtree
//
// DDL broadcasts; INSERT routes each row by its geometry MBR (duplicating
// border-straddlers within the storage margin); SELECTs scatter to the
// shards owning the query's cells and merge exactly (owner-cell dedup +
// engine-replayed folds; see sql_rewrite.h / merge.h).
//
// High availability (DESIGN.md § Sharding, "High availability"): writes
// broadcast to every replica of the owning shard — a replica that fails a
// write while a sibling acked is marked stale and excluded from reads until
// a CREATE TABLE through the router succeeds there again (the loader path).
// Reads pick one replica per shard, ordered by the active health checker
// (health.h), and transparently fail over to a sibling when a sub-call dies
// retryably mid-flight; with hedging on, a duplicate races the slow replica
// and the loser is cancelled via DriverSession::Abort. Per-replica
// resilience reuses the remote driver's CircuitBreaker and the server's
// retry_after_ms shed pacing; scatter/merge record spans under the query's
// trace_id and feed shard.* metrics (shard.failover / shard.hedges /
// shard.hedge_wins / shard.replica_stale among them) in the global registry.

#ifndef JACKPINE_SHARD_SHARD_ROUTER_H_
#define JACKPINE_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/client.h"
#include "net/remote_driver.h"
#include "obs/metrics.h"
#include "shard/partitioner.h"
#include "shard/sql_rewrite.h"

namespace jackpine::shard {

class HealthChecker;

// One endpoint of a replica group, with its optional chaos wrap.
struct ReplicaSpec {
  client::RemoteEndpoint endpoint;
  std::optional<client::ChaosConfig> chaos;
};

struct ShardOptions {
  // shards[i] is shard i's replica group; shards[i][0] is the primary whose
  // label names the shard on the ring (so a single-replica cluster hashes
  // identically to the pre-replica URL form).
  std::vector<std::vector<ReplicaSpec>> shards;
  PartitionConfig partition;
  std::vector<std::string> replicated_tables;  // lower-case
  std::string sut;
  // Health-check period in ms: < 0 = auto (on at 100ms iff any shard has
  // >= 2 replicas), 0 = off, > 0 = explicit period.
  double health_ms = -1.0;
  // Hedge delay in ms: < 0 = hedging off, 0 = auto (EWMA p95 of the primary
  // replica), > 0 = fixed delay.
  double hedge_ms = -1.0;
};

// Parses the URL tail "shard(...)/<sut>" (the part after "jackpine:").
Result<ShardOptions> ParseShardUrl(std::string_view rest);

// Error-combination priority for a scatter (or a failover sweep over one
// shard's replicas): a deterministic failure beats retry advice (retrying
// cannot fix it), an explicit shed beats a breaker fast-fail (the shed
// proves a server is up and names a wait), and within a class the largest
// retry hint wins so the runner's pacing covers the slowest shard. All-ok
// (or empty) input combines to Ok.
Status CombineStatuses(const std::vector<Status>& errors);

class ShardDriver : public client::Driver,
                    public std::enable_shared_from_this<ShardDriver> {
 public:
  // Validates options and builds the ring; connections to the shards are
  // lazy (first use), so a dead shard fails the first query that needs it
  // — and trips that shard's breaker — rather than failing Open. Starts the
  // health checker when enabled (see ShardOptions::health_ms).
  static Result<std::shared_ptr<ShardDriver>> Create(ShardOptions options);
  ~ShardDriver() override;  // stops the health checker

  Result<std::shared_ptr<client::DriverSession>> NewSession() override;

  const ShardOptions& options() const { return options_; }
  const Partitioner& partitioner() const { return partitioner_; }
  size_t num_shards() const { return options_.shards.size(); }
  size_t num_replicas(size_t shard) const { return replicas_[shard].size(); }
  // Per-endpoint remote driver (shared breaker across sessions); for tests
  // and diagnostics. shard_driver(i) is shard i's primary replica.
  net::RemoteDriver* shard_driver(size_t i) { return replicas_[i][0].driver.get(); }
  net::RemoteDriver* replica_driver(size_t shard, size_t replica) {
    return replicas_[shard][replica].driver.get();
  }
  // True when the replica missed a write a sibling acked and has not been
  // re-synced (reads skip it).
  bool replica_stale(size_t shard, size_t replica) const {
    return replicas_[shard][replica].stale->load(std::memory_order_acquire);
  }
  // Null when health checking is off.
  HealthChecker* health() const { return health_.get(); }

 private:
  friend class ShardSession;
  ShardDriver(ShardOptions options, Partitioner partitioner);

  // Runtime state of one replica endpoint.
  struct Replica {
    std::shared_ptr<net::RemoteDriver> driver;
    std::shared_ptr<client::ChaosState> chaos;  // null = none
    std::shared_ptr<std::atomic<bool>> stale;
    obs::Counter* errors = nullptr;  // shard.errors.<label>
    size_t health_index = 0;         // flat index into the health checker
  };

  ShardOptions options_;
  Partitioner partitioner_;
  std::vector<std::vector<Replica>> replicas_;
  std::unique_ptr<HealthChecker> health_;
  // Router-side catalog, shared by every session so DDL through one
  // connection is visible to all.
  struct CatalogState;
  std::shared_ptr<CatalogState> catalog_;
};

// Installs the "shard" composite target in the client opener registry,
// enabling jackpine:shard(...)/sut URLs. Idempotent; call once at startup
// (binaries linking this library get it via static self-registration).
void RegisterShardDriver();

}  // namespace jackpine::shard

#endif  // JACKPINE_SHARD_SHARD_ROUTER_H_
