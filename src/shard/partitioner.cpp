#include "shard/partitioner.h"

#include <algorithm>
#include <cmath>

#include "shard/hilbert.h"

namespace jackpine::shard {

namespace {

// FNV-1a 64 over bytes: stable across platforms and builds, which the ring
// needs — ownership must be a pure function of shard names and config.
uint64_t Hash64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

double PartitionConfig::ResolvedMargin() const {
  if (margin >= 0.0) return margin;
  const double extent = std::max(bounds.Width(), bounds.Height());
  return extent * 0.01;
}

Partitioner::Partitioner(PartitionConfig config,
                         std::vector<std::string> shard_names)
    : config_(config),
      shard_names_(std::move(shard_names)),
      margin_(config.ResolvedMargin()) {
  // Ring points: `virtual_nodes` per shard, hashed from "<name>#<replica>".
  struct Point {
    uint64_t key;
    size_t shard;
  };
  std::vector<Point> ring;
  ring.reserve(shard_names_.size() * config_.virtual_nodes);
  for (size_t s = 0; s < shard_names_.size(); ++s) {
    for (uint32_t r = 0; r < config_.virtual_nodes; ++r) {
      ring.push_back(
          {Hash64(shard_names_[s] + '#' + std::to_string(r)), s});
    }
  }
  std::sort(ring.begin(), ring.end(), [](const Point& a, const Point& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.shard < b.shard;  // deterministic on (vanishingly rare) ties
  });

  // Each cell keys onto the ring at its Hilbert index scaled to the full
  // 64-bit space (NOT hashed: the curve's locality is the point), and is
  // owned by the clockwise-successor ring point.
  const uint32_t shift = 64 - 2 * config_.grid_order;
  const uint32_t side = config_.GridSide();
  cell_owner_.resize(config_.NumCells());
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      const uint64_t key = HilbertIndex(config_.grid_order, x, y) << shift;
      auto it = std::lower_bound(
          ring.begin(), ring.end(), key,
          [](const Point& p, uint64_t k) { return p.key < k; });
      if (it == ring.end()) it = ring.begin();  // wrap around
      cell_owner_[y * side + x] = it->shard;
    }
  }
}

std::vector<uint32_t> Partitioner::CellsFor(const geom::Envelope& box,
                                            double expand) const {
  if (box.IsNull()) return {0};
  const geom::Envelope b = box.Expanded(expand);
  const geom::Envelope& w = config_.bounds;
  const uint32_t side = config_.GridSide();
  const double cell_w = w.Width() / side;
  const double cell_h = w.Height() / side;
  const auto clamp_cell = [side](double offset, double cell_extent) {
    if (cell_extent <= 0.0) return uint32_t{0};
    const double c = std::floor(offset / cell_extent);
    if (c < 0.0) return uint32_t{0};
    if (c >= side) return side - 1;
    return static_cast<uint32_t>(c);
  };
  const uint32_t x0 = clamp_cell(b.min_x() - w.min_x(), cell_w);
  const uint32_t x1 = clamp_cell(b.max_x() - w.min_x(), cell_w);
  const uint32_t y0 = clamp_cell(b.min_y() - w.min_y(), cell_h);
  const uint32_t y1 = clamp_cell(b.max_y() - w.min_y(), cell_h);
  std::vector<uint32_t> cells;
  cells.reserve(static_cast<size_t>(x1 - x0 + 1) * (y1 - y0 + 1));
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) cells.push_back(y * side + x);
  }
  return cells;  // ascending by construction (row-major scan)
}

std::vector<uint32_t> Partitioner::AllCells() const {
  std::vector<uint32_t> cells(num_cells());
  for (uint32_t i = 0; i < num_cells(); ++i) cells[i] = i;
  return cells;
}

std::vector<size_t> Partitioner::ShardsFor(
    const std::vector<uint32_t>& cells) const {
  std::vector<bool> hit(num_shards(), false);
  for (uint32_t c : cells) hit[cell_owner_[c]] = true;
  std::vector<size_t> shards;
  for (size_t s = 0; s < hit.size(); ++s) {
    if (hit[s]) shards.push_back(s);
  }
  return shards;
}

size_t Partitioner::CanonicalShard(
    const geom::Envelope& box,
    const std::vector<uint32_t>& contacted_cells) const {
  const std::vector<uint32_t> mine = CellsFor(box, margin_);
  auto a = mine.begin();
  auto b = contacted_cells.begin();
  while (a != mine.end() && b != contacted_cells.end()) {
    if (*a == *b) return cell_owner_[*a];
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return num_shards();
}

}  // namespace jackpine::shard
