// Timing statistics for benchmark repetitions.

#ifndef JACKPINE_CORE_STATS_H_
#define JACKPINE_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jackpine::core {

struct TimingStats {
  size_t count = 0;
  double total_s = 0.0;
  double mean_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double stddev_s = 0.0;
  // Latency histogram over the same samples, binned into the registry's
  // standard latency buckets (obs::Histogram::DefaultLatencyBounds) so a
  // report histogram and a scraped metrics histogram line up bucket for
  // bucket. hist_counts has one extra slot for samples above the last
  // bound; counts are per-bucket, not cumulative. Empty input leaves both
  // empty.
  std::vector<double> hist_bounds_s;
  std::vector<uint64_t> hist_counts;

  std::string ToString() const;  // "mean 1.23ms (p50 1.1, p95 2.0, p99 2.4)"
};

// Computes stats over raw per-repetition seconds. Empty input yields zeros.
TimingStats Summarize(std::vector<double> seconds);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_STATS_H_
