// The six Jackpine macro workload scenarios (experiment E3):
// map search & browsing, geocoding, reverse geocoding, flood risk analysis,
// land information management, and toxic spill analysis.
//
// A scenario is an ordered sequence of SQL queries modelled on how a real
// spatial application uses the database; the benchmark reports the total
// and per-query response time for the whole sequence.

#ifndef JACKPINE_CORE_SCENARIOS_H_
#define JACKPINE_CORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "core/query_spec.h"
#include "tigergen/tigergen.h"

namespace jackpine::core {

struct Scenario {
  std::string id;    // "map", "geocode", ...
  std::string name;  // "Map search and browsing"
  std::string description;
  std::vector<QuerySpec> queries;
};

// Builds all six scenarios. `seed` controls the user-behaviour randomness
// (probe points, addresses) so runs are reproducible and identical SQL is
// sent to every SUT.
std::vector<Scenario> BuildScenarios(const tigergen::TigerDataset& dataset,
                                     uint64_t seed = 7);

// Builds one scenario by id; unknown ids yield an empty scenario.
Scenario BuildScenario(const tigergen::TigerDataset& dataset,
                       const std::string& id, uint64_t seed = 7);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_SCENARIOS_H_
