#include "core/scenarios.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace jackpine::core {

using geom::Coord;
using tigergen::TigerDataset;

namespace {

std::string BoxWkt(const Coord& c, double half_w, double half_h) {
  return StrFormat(
      "POLYGON ((%.6f %.6f, %.6f %.6f, %.6f %.6f, %.6f %.6f, %.6f %.6f))",
      c.x - half_w, c.y - half_h, c.x + half_w, c.y - half_h, c.x + half_w,
      c.y + half_h, c.x - half_w, c.y + half_h, c.x - half_w, c.y - half_h);
}

std::string PointWkt(const Coord& c) {
  return StrFormat("POINT (%.6f %.6f)", c.x, c.y);
}

QuerySpec MacroQuery(std::string id, std::string name, std::string sql) {
  QuerySpec q;
  q.id = std::move(id);
  q.name = std::move(name);
  q.category = QueryCategory::kMacro;
  q.sql = std::move(sql);
  return q;
}

Coord PickUrbanish(const TigerDataset& ds, Rng* rng) {
  const Coord& u =
      ds.urban_centers[rng->NextBounded(ds.urban_centers.size())];
  const double sigma = ds.extent.Width() * 0.03;
  return {u.x + rng->NextGaussian() * sigma, u.y + rng->NextGaussian() * sigma};
}

// --- 1. Map search and browsing -------------------------------------------
// A user finds a landmark by name, the map zooms to it, then pans around:
// each viewport fetches all four display layers.
Scenario MapScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "map";
  s.name = "Map search and browsing";
  s.description =
      "Window queries for four display layers across three zoom levels and "
      "four pans, after an attribute search for the start landmark.";
  const double extent = ds.extent.Width();

  const auto& lm = ds.pointlm[rng->NextBounded(ds.pointlm.size())];
  s.queries.push_back(MacroQuery(
      "map.search", "find landmark by name",
      StrFormat("SELECT plid, fullname, geom FROM pointlm WHERE fullname = "
                "'%s'",
                lm.fullname.c_str())));

  Coord center = lm.geom.AsPoint();
  int step = 0;
  auto add_viewport = [&](double half, const char* what) {
    const std::string window = BoxWkt(center, half, half * 0.75);
    for (const char* layer : {"edges", "arealm", "pointlm", "areawater"}) {
      s.queries.push_back(MacroQuery(
          StrFormat("map.%d.%s", step, layer),
          StrFormat("%s layer %s", what, layer),
          StrFormat("SELECT geom FROM %s WHERE ST_Intersects(geom, "
                    "ST_GeomFromText('%s'))",
                    layer, window.c_str())));
    }
    ++step;
  };
  // Zoom in: state -> metro -> neighbourhood.
  add_viewport(extent * 0.25, "zoom-1");
  add_viewport(extent * 0.08, "zoom-2");
  add_viewport(extent * 0.02, "zoom-3");
  // Pan at the deepest zoom.
  for (int pan = 0; pan < 4; ++pan) {
    center.x += rng->NextDouble(-1.0, 1.0) * extent * 0.02;
    center.y += rng->NextDouble(-1.0, 1.0) * extent * 0.02;
    add_viewport(extent * 0.02, "pan");
  }
  return s;
}

// --- 2. Geocoding -----------------------------------------------------------
// Street address -> coordinates, by locating the road segment whose address
// range covers the house number and interpolating along it.
Scenario GeocodeScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "geocode";
  s.name = "Geocoding";
  s.description =
      "20 addresses resolved by address-range lookup on edges plus linear "
      "interpolation along the matched segment.";
  for (int i = 0; i < 20; ++i) {
    // Sample a real addressable road so most lookups hit.
    const tigergen::Edge* e = nullptr;
    for (int tries = 0; tries < 50 && e == nullptr; ++tries) {
      const auto& cand = ds.edges[rng->NextBounded(ds.edges.size())];
      if (cand.ltoadd > cand.lfromadd) e = &cand;
    }
    if (e == nullptr) break;
    const int64_t house =
        e->lfromadd +
        2 * static_cast<int64_t>(
                rng->NextBounded(static_cast<uint64_t>(
                    (e->ltoadd - e->lfromadd) / 2 + 1)));
    const double frac =
        static_cast<double>(house - e->lfromadd) /
        static_cast<double>(std::max<int64_t>(e->ltoadd - e->lfromadd, 1));
    s.queries.push_back(MacroQuery(
        StrFormat("geocode.%d", i),
        StrFormat("geocode %lld %s", static_cast<long long>(house),
                  e->fullname.c_str()),
        StrFormat(
            "SELECT tlid, ST_AsText(ST_LineInterpolatePoint(geom, %.6f)) "
            "FROM edges WHERE fullname = '%s' AND lfromadd <= %lld AND "
            "ltoadd >= %lld",
            frac, e->fullname.c_str(), static_cast<long long>(house),
            static_cast<long long>(house))));
  }
  return s;
}

// --- 3. Reverse geocoding ---------------------------------------------------
// Coordinates -> nearest road + interpolated address (the k-NN workload).
Scenario ReverseGeocodeScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "revgeo";
  s.name = "Reverse geocoding";
  s.description =
      "20 nearest-road queries (ORDER BY ST_Distance LIMIT 1) with address "
      "interpolation at the closest point.";
  for (int i = 0; i < 20; ++i) {
    const Coord p = PickUrbanish(ds, rng);
    const std::string pt = PointWkt(p);
    s.queries.push_back(MacroQuery(
        StrFormat("revgeo.%d", i), "nearest road to point",
        StrFormat(
            "SELECT tlid, fullname, "
            "lfromadd + (ltoadd - lfromadd) * "
            "ST_LineLocatePoint(geom, ST_GeomFromText('%s')) AS address "
            "FROM edges ORDER BY ST_Distance(geom, ST_GeomFromText('%s')), "
            "tlid LIMIT 1",
            pt.c_str(), pt.c_str())));
  }
  return s;
}

// --- 4. Flood risk analysis -------------------------------------------------
Scenario FloodScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "flood";
  s.name = "Flood risk analysis";
  s.description =
      "Buffer water bodies by a flood margin and measure exposed landmarks, "
      "roads and road mileage inside the flood zone.";
  const double extent = ds.extent.Width();
  const double margin = extent * 0.01;
  const Coord region_center = PickUrbanish(ds, rng);
  const std::string region = BoxWkt(region_center, extent * 0.15, extent * 0.15);

  s.queries.push_back(MacroQuery(
      "flood.landmarks", "landmarks within flood margin of water",
      StrFormat("SELECT COUNT(*) FROM arealm a, areawater w WHERE "
                "ST_DWithin(a.geom, w.geom, %.6f)",
                margin)));
  s.queries.push_back(MacroQuery(
      "flood.roads", "roads within flood margin of water",
      StrFormat("SELECT COUNT(*) FROM edges e, areawater w WHERE "
                "ST_DWithin(e.geom, w.geom, %.6f)",
                margin)));
  s.queries.push_back(MacroQuery(
      "flood.zone_area", "flood zone area in study region",
      StrFormat("SELECT SUM(ST_Area(ST_Buffer(geom, %.6f))) FROM areawater "
                "WHERE ST_Intersects(geom, ST_GeomFromText('%s'))",
                margin, region.c_str())));
  s.queries.push_back(MacroQuery(
      "flood.points", "population-proxy points in region near water",
      StrFormat("SELECT COUNT(*) FROM pointlm p, areawater w WHERE "
                "ST_Within(p.geom, ST_GeomFromText('%s')) AND "
                "ST_DWithin(p.geom, w.geom, %.6f)",
                region.c_str(), margin)));
  return s;
}

// --- 5. Land information management ------------------------------------------
Scenario LandScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "land";
  s.name = "Land information management";
  s.description =
      "Parcel-style queries: county adjacency, containment audits, per-county "
      "inventories and area accounting.";
  s.queries.push_back(MacroQuery(
      "land.adjacency", "county adjacency matrix",
      "SELECT COUNT(*) FROM county a, county b WHERE a.fips < b.fips AND "
      "ST_Touches(a.geom, b.geom)"));
  s.queries.push_back(MacroQuery(
      "land.audit", "landmarks assigned to the wrong county",
      "SELECT COUNT(*) FROM arealm a, county c WHERE a.county = c.fips AND "
      "NOT ST_Intersects(a.geom, c.geom)"));
  s.queries.push_back(MacroQuery(
      "land.register", "parcel register: per-county area accounting",
      "SELECT county, COUNT(*), SUM(ST_Area(geom)) FROM arealm "
      "GROUP BY county ORDER BY county"));
  // Inventory for 5 random counties.
  for (int i = 0; i < 5; ++i) {
    const auto& county = ds.counties[rng->NextBounded(ds.counties.size())];
    const std::string wkt = county.geom.ToWkt();
    s.queries.push_back(MacroQuery(
        StrFormat("land.inventory.%d", i),
        StrFormat("parcel inventory of %s", county.name.c_str()),
        StrFormat("SELECT COUNT(*), SUM(ST_Area(geom)) FROM arealm WHERE "
                  "ST_Within(geom, ST_GeomFromText('%s'))",
                  wkt.c_str())));
    s.queries.push_back(MacroQuery(
        StrFormat("land.splitparcels.%d", i),
        "parcels straddling the county boundary",
        StrFormat("SELECT COUNT(*) FROM arealm WHERE "
                  "ST_Crosses(geom, ST_GeomFromText('%s')) OR "
                  "ST_Overlaps(geom, ST_GeomFromText('%s'))",
                  wkt.c_str(), wkt.c_str())));
  }
  return s;
}

// --- 6. Toxic spill analysis ---------------------------------------------------
Scenario SpillScenario(const TigerDataset& ds, Rng* rng) {
  Scenario s;
  s.id = "spill";
  s.name = "Toxic spill analysis";
  s.description =
      "Emergency response around a spill site: affected roads and landmarks "
      "within the plume, threatened water bodies, closest hospitals, and the "
      "road mileage needing closure.";
  const double extent = ds.extent.Width();
  const Coord spill = PickUrbanish(ds, rng);
  const std::string pt = PointWkt(spill);
  const double radius = extent * 0.02;
  const std::string plume =
      StrFormat("ST_Buffer(ST_GeomFromText('%s'), %.6f)", pt.c_str(), radius);

  s.queries.push_back(MacroQuery(
      "spill.roads", "roads inside the plume",
      StrFormat("SELECT COUNT(*) FROM edges WHERE ST_DWithin(geom, "
                "ST_GeomFromText('%s'), %.6f)",
                pt.c_str(), radius)));
  s.queries.push_back(MacroQuery(
      "spill.landmarks", "landmarks inside the plume",
      StrFormat("SELECT fullname FROM pointlm WHERE ST_DWithin(geom, "
                "ST_GeomFromText('%s'), %.6f)",
                pt.c_str(), radius)));
  s.queries.push_back(MacroQuery(
      "spill.water", "water bodies threatened within 2x radius",
      StrFormat("SELECT COUNT(*) FROM areawater WHERE ST_DWithin(geom, "
                "ST_GeomFromText('%s'), %.6f)",
                pt.c_str(), 2 * radius)));
  s.queries.push_back(MacroQuery(
      "spill.hospitals", "three closest hospitals",
      StrFormat("SELECT fullname FROM pointlm WHERE mtfcc = 'K1231' "
                "ORDER BY ST_Distance(geom, ST_GeomFromText('%s')), plid "
                "LIMIT 3",
                pt.c_str())));
  s.queries.push_back(MacroQuery(
      "spill.closures", "road mileage to close",
      StrFormat("SELECT SUM(ST_Length(ST_Intersection(geom, %s))) FROM edges "
                "WHERE ST_DWithin(geom, ST_GeomFromText('%s'), %.6f)",
                plume.c_str(), pt.c_str(), radius)));
  return s;
}

}  // namespace

std::vector<Scenario> BuildScenarios(const TigerDataset& ds, uint64_t seed) {
  Rng rng(seed);
  std::vector<Scenario> out;
  Rng r1 = rng.Fork();
  out.push_back(MapScenario(ds, &r1));
  Rng r2 = rng.Fork();
  out.push_back(GeocodeScenario(ds, &r2));
  Rng r3 = rng.Fork();
  out.push_back(ReverseGeocodeScenario(ds, &r3));
  Rng r4 = rng.Fork();
  out.push_back(FloodScenario(ds, &r4));
  Rng r5 = rng.Fork();
  out.push_back(LandScenario(ds, &r5));
  Rng r6 = rng.Fork();
  out.push_back(SpillScenario(ds, &r6));
  return out;
}

Scenario BuildScenario(const TigerDataset& ds, const std::string& id,
                       uint64_t seed) {
  for (Scenario& s : BuildScenarios(ds, seed)) {
    if (s.id == id) return std::move(s);
  }
  return Scenario{};
}

}  // namespace jackpine::core
