// The benchmark runner: executes query specs against SUT connections with a
// warm-up/repetition protocol and collects timings, result sizes and result
// checksums for cross-SUT validation.

#ifndef JACKPINE_CORE_RUNNER_H_
#define JACKPINE_CORE_RUNNER_H_

#include <string>
#include <vector>

#include "client/client.h"
#include "common/exec_context.h"
#include "core/query_spec.h"
#include "core/scenarios.h"
#include "core/stats.h"

namespace jackpine::core {

// Bounded retry with exponential backoff for transient failures (DESIGN.md
// "Fault model"). Only kUnavailable retries: deadline and budget violations
// are deterministic for a given query, so retrying them wastes suite time.
// Jitter is drawn from common/random's Rng, so a (jitter_seed, workload)
// pair fully determines every backoff delay — benchmark runs stay
// reproducible even when they exercise the retry path.
struct RetryPolicy {
  int max_attempts = 3;           // total tries per execution; 1 = no retry
  double backoff_base_s = 0.01;   // first retry delay before jitter
  double backoff_multiplier = 2.0;
  uint64_t jitter_seed = 0x6a61636b70696e65;  // "jackpine"
};

struct RunConfig {
  int warmup = 1;       // unmeasured executions per query
  int repetitions = 3;  // measured executions per query
  // Per-execution deadline / cancellation / budgets; default unlimited.
  ExecLimits limits;
  RetryPolicy retry;
};

struct RunResult {
  std::string query_id;
  std::string query_name;
  QueryCategory category = QueryCategory::kTopoRelation;
  std::string sut;
  bool ok = false;
  std::string error;  // when !ok
  StatusCode error_code = StatusCode::kOk;  // final status of the last try
  TimingStats timing;  // on failure: partial stats of the reps that passed
  size_t result_rows = 0;
  uint64_t checksum = 0;
  // Fault accounting across warmup + repetitions of this query.
  size_t attempts = 0;          // ExecuteQuery calls issued (incl. retries)
  size_t timeouts = 0;          // kDeadlineExceeded observed
  size_t transient_errors = 0;  // kUnavailable observed (retried or final)
};

// Runs one query with the protocol; never fails hard (errors are recorded).
RunResult RunQuery(client::Connection* connection, const QuerySpec& spec,
                   const RunConfig& config);

// Runs a whole suite in order.
std::vector<RunResult> RunSuite(client::Connection* connection,
                                const std::vector<QuerySpec>& suite,
                                const RunConfig& config);

struct ScenarioResult {
  std::string scenario_id;
  std::string scenario_name;
  std::string sut;
  // Sum of per-query means over the queries that succeeded: a failed query
  // degrades the scenario (counted in `failed`) without poisoning the total.
  double total_s = 0.0;
  std::vector<RunResult> queries;
  size_t failed = 0;
  size_t timeouts = 0;          // aggregated from queries
  size_t transient_errors = 0;  // aggregated from queries
};

// Runs every query of a scenario in sequence.
ScenarioResult RunScenario(client::Connection* connection,
                           const Scenario& scenario, const RunConfig& config);

// Throughput mode: round-robins a mixed workload for `rounds` full passes
// and reports aggregate queries/second, the paper-style summary metric for
// comparing SUTs on a whole workload rather than a single query.
struct ThroughputResult {
  std::string sut;
  size_t queries_executed = 0;  // query slots that ultimately succeeded
  size_t errors = 0;            // query slots that ultimately failed
  double elapsed_s = 0.0;
  // Fault accounting: every query slot lands in exactly one of
  // queries_executed / errors, while timeouts / transient_errors count
  // individual failed attempts (a retried-then-successful slot contributes
  // to both transient_errors and queries_executed).
  size_t timeouts = 0;
  size_t transient_errors = 0;
  double QueriesPerSecond() const {
    return elapsed_s > 0 ? static_cast<double>(queries_executed) / elapsed_s
                         : 0.0;
  }
};

// `config` contributes the exec limits and retry policy; warmup/repetitions
// do not apply in throughput mode.
ThroughputResult RunThroughput(client::Connection* connection,
                               const std::vector<QuerySpec>& workload,
                               int rounds, const RunConfig& config = {});

// Multi-client throughput: `clients` threads share the connection's
// database (each with its own Statement) and round-robin the workload
// concurrently, the paper's multiuser dimension. queries_executed/errors
// aggregate across clients; elapsed_s is wall-clock. Each client retries
// from its own deterministic jitter stream (jitter_seed + client index).
ThroughputResult RunConcurrentThroughput(client::Connection* connection,
                                         const std::vector<QuerySpec>& workload,
                                         int clients, int rounds,
                                         const RunConfig& config = {});

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_RUNNER_H_
