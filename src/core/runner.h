// The benchmark runner: executes query specs against SUT connections with a
// warm-up/repetition protocol and collects timings, result sizes and result
// checksums for cross-SUT validation.

#ifndef JACKPINE_CORE_RUNNER_H_
#define JACKPINE_CORE_RUNNER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/exec_context.h"
#include "core/query_spec.h"
#include "core/scenarios.h"
#include "core/stats.h"
#include "obs/statements.h"
#include "obs/trace.h"

namespace jackpine::core {

// A global token bucket bounding retries across a whole run: each retry
// spends one token, each success earns back fill_per_success (capped at
// max_tokens). Under sustained overload the bucket drains and further
// retries are denied — the client's aggregate retry traffic stays a small
// multiple of its success rate instead of amplifying the overload
// (retry-storm protection). Thread-safe; share one bucket across all
// clients of a run via RetryPolicy::budget.
class RetryBudget {
 public:
  explicit RetryBudget(double initial_tokens = 10.0, double max_tokens = 10.0,
                       double fill_per_success = 0.1)
      : tokens_(initial_tokens),
        max_tokens_(max_tokens),
        fill_per_success_(fill_per_success) {}

  // Spends one token; false (and counted in denied()) when the bucket is
  // dry, in which case the caller must give up instead of retrying.
  bool TryAcquire();
  void OnSuccess();

  uint64_t denied() const;
  double tokens() const;

 private:
  mutable std::mutex mu_;
  double tokens_;
  double max_tokens_;
  double fill_per_success_;
  uint64_t denied_ = 0;
};

// Bounded retry with exponential backoff for transient failures (DESIGN.md
// "Fault model"). Retryable means transient (kUnavailable) or a server shed
// (kResourceExhausted with a retry_after_ms hint): deadline and budget
// violations are deterministic for a given query, so retrying them wastes
// suite time. Jitter is drawn from common/random's Rng, so a (jitter_seed,
// workload) pair fully determines every backoff delay — benchmark runs stay
// reproducible even when they exercise the retry path.
struct RetryPolicy {
  int max_attempts = 3;           // total tries per execution; 1 = no retry
  double backoff_base_s = 0.01;   // first retry delay before jitter
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;     // cap on the pre-jitter backoff
  uint64_t jitter_seed = 0x6a61636b70696e65;  // "jackpine"
  // When the failure carries a server retry_after_ms hint (a shed or a
  // breaker fast-fail), sleep at least that long before the next attempt.
  bool honor_retry_after = true;
  // Optional shared retry budget; null = unlimited retries (within
  // max_attempts).
  std::shared_ptr<RetryBudget> budget;
};

struct RunConfig {
  int warmup = 1;       // unmeasured executions per query
  int repetitions = 3;  // measured executions per query
  // Per-execution deadline / cancellation / budgets; default unlimited.
  ExecLimits limits;
  RetryPolicy retry;
  // Overload workload skew: when > 0, RunOverload draws query slots from a
  // seeded Zipf(s) distribution over the workload (slot 0 hottest) instead
  // of round-robin — the repeat-heavy map-tile traffic shape that makes
  // result caching measurable. Each client draws from its own stream
  // (overload_skew_seed + client index) advanced once per slot regardless
  // of retries or timing, so two runs against differently configured
  // servers issue bit-identical query sequences.
  double overload_zipf_s = 0.0;
  uint64_t overload_skew_seed = 0x7a697066;  // "zipf"
  // Optional harness-side fingerprint statistics (DESIGN.md
  // "Observability"): when set, every measured execution slot — suite
  // repetitions, throughput and overload slots, but not warmups — records
  // (fingerprint, final status, final-attempt latency, rows) here. The
  // fingerprint comes from the shared SQL normalizer, the same identity a
  // pinedb server's /statements endpoint tracks, so harness tallies and
  // server telemetry cross-check. Not owned; thread-safe to share across
  // the concurrent runners.
  obs::StatementStats* statement_stats = nullptr;
};

struct RunResult {
  std::string query_id;
  std::string query_name;
  QueryCategory category = QueryCategory::kTopoRelation;
  std::string sut;
  bool ok = false;
  std::string error;  // when !ok
  StatusCode error_code = StatusCode::kOk;  // final status of the last try
  TimingStats timing;  // on failure: partial stats of the reps that passed
  size_t result_rows = 0;
  uint64_t checksum = 0;
  // Accumulated execution trace over the *measured* repetitions (warmup is
  // excluded so stage ratios reflect steady state). For remote SUTs the
  // counters come from the server's per-session trace; the time fields are
  // then server-side engine time, not the client's round-trip latency.
  obs::QueryTrace trace;
  // Fault accounting across warmup + repetitions of this query.
  size_t attempts = 0;          // ExecuteQuery calls issued (incl. retries)
  size_t timeouts = 0;          // kDeadlineExceeded observed
  size_t transient_errors = 0;  // kUnavailable observed (retried or final)
  size_t sheds = 0;             // server sheds (kResourceExhausted + hint)
  size_t breaker_fast_fails = 0;  // local circuit-breaker refusals
  size_t budget_denied = 0;     // retries denied by the shared RetryBudget
};

// Runs one query with the protocol; never fails hard (errors are recorded).
RunResult RunQuery(client::Connection* connection, const QuerySpec& spec,
                   const RunConfig& config);

// Runs a whole suite in order.
std::vector<RunResult> RunSuite(client::Connection* connection,
                                const std::vector<QuerySpec>& suite,
                                const RunConfig& config);

struct ScenarioResult {
  std::string scenario_id;
  std::string scenario_name;
  std::string sut;
  // Sum of per-query means over the queries that succeeded: a failed query
  // degrades the scenario (counted in `failed`) without poisoning the total.
  double total_s = 0.0;
  std::vector<RunResult> queries;
  size_t failed = 0;
  size_t timeouts = 0;          // aggregated from queries
  size_t transient_errors = 0;  // aggregated from queries
  size_t sheds = 0;             // aggregated from queries
  size_t breaker_fast_fails = 0;
  size_t budget_denied = 0;
};

// Runs every query of a scenario in sequence.
ScenarioResult RunScenario(client::Connection* connection,
                           const Scenario& scenario, const RunConfig& config);

// Throughput mode: round-robins a mixed workload for `rounds` full passes
// and reports aggregate queries/second, the paper-style summary metric for
// comparing SUTs on a whole workload rather than a single query.
struct ThroughputResult {
  std::string sut;
  size_t queries_executed = 0;  // query slots that ultimately succeeded
  size_t errors = 0;            // query slots that ultimately failed
  double elapsed_s = 0.0;
  // Fault accounting: every query slot lands in exactly one of
  // queries_executed / errors, while timeouts / transient_errors count
  // individual failed attempts (a retried-then-successful slot contributes
  // to both transient_errors and queries_executed).
  size_t timeouts = 0;
  size_t transient_errors = 0;
  size_t sheds = 0;
  size_t breaker_fast_fails = 0;
  size_t budget_denied = 0;
  double QueriesPerSecond() const {
    return elapsed_s > 0 ? static_cast<double>(queries_executed) / elapsed_s
                         : 0.0;
  }
};

// `config` contributes the exec limits and retry policy; warmup/repetitions
// do not apply in throughput mode.
ThroughputResult RunThroughput(client::Connection* connection,
                               const std::vector<QuerySpec>& workload,
                               int rounds, const RunConfig& config = {});

// Multi-client throughput: `clients` threads share the connection's
// database (each with its own Statement) and round-robin the workload
// concurrently, the paper's multiuser dimension. queries_executed/errors
// aggregate across clients; elapsed_s is wall-clock. Each client retries
// from its own deterministic jitter stream (jitter_seed + client index).
ThroughputResult RunConcurrentThroughput(client::Connection* connection,
                                         const std::vector<QuerySpec>& workload,
                                         int clients, int rounds,
                                         const RunConfig& config = {});

// Overload benchmark: how much goodput survives, and how politely the rest
// degrades, when `clients` saturating threads outnumber the server's
// capacity. Like RunConcurrentThroughput but additionally collects the
// per-success latency distribution (tail latency under load is the paper's
// missing robustness axis) and the full degradation taxonomy.
struct OverloadResult {
  std::string sut;
  int clients = 0;
  int rounds = 0;
  size_t queries_ok = 0;   // query slots that ultimately succeeded
  size_t failures = 0;     // query slots that ultimately failed
  size_t attempts = 0;     // executions issued, including retries
  size_t sheds = 0;
  size_t timeouts = 0;
  size_t transient_errors = 0;
  size_t breaker_fast_fails = 0;
  size_t budget_denied = 0;
  double elapsed_s = 0.0;
  TimingStats latency;  // successful final attempts only
  // First-seen result checksum per workload slot (0 = the slot never
  // succeeded), for bit-identical cross-run comparison — e.g. cache on vs
  // off. checksum_mismatches counts successes that disagreed with the
  // slot's first checksum (always 0 on a read-only workload).
  std::vector<uint64_t> slot_checksums;
  uint64_t checksum_mismatches = 0;

  // FNV fold of slot_checksums, order-stable across runs.
  uint64_t FoldedChecksum() const;

  double GoodputQps() const {
    return elapsed_s > 0 ? static_cast<double>(queries_ok) / elapsed_s : 0.0;
  }
  // Sheds per issued attempt: the fraction of offered load the server
  // turned away rather than served or crashed under.
  double ShedRate() const {
    return attempts > 0 ? static_cast<double>(sheds) / attempts : 0.0;
  }
};

OverloadResult RunOverload(client::Connection* connection,
                           const std::vector<QuerySpec>& workload, int clients,
                           int rounds, const RunConfig& config = {});

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_RUNNER_H_
