// The benchmark runner: executes query specs against SUT connections with a
// warm-up/repetition protocol and collects timings, result sizes and result
// checksums for cross-SUT validation.

#ifndef JACKPINE_CORE_RUNNER_H_
#define JACKPINE_CORE_RUNNER_H_

#include <string>
#include <vector>

#include "client/client.h"
#include "core/query_spec.h"
#include "core/scenarios.h"
#include "core/stats.h"

namespace jackpine::core {

struct RunConfig {
  int warmup = 1;       // unmeasured executions per query
  int repetitions = 3;  // measured executions per query
};

struct RunResult {
  std::string query_id;
  std::string query_name;
  QueryCategory category = QueryCategory::kTopoRelation;
  std::string sut;
  bool ok = false;
  std::string error;  // when !ok
  TimingStats timing;
  size_t result_rows = 0;
  uint64_t checksum = 0;
};

// Runs one query with the protocol; never fails hard (errors are recorded).
RunResult RunQuery(client::Connection* connection, const QuerySpec& spec,
                   const RunConfig& config);

// Runs a whole suite in order.
std::vector<RunResult> RunSuite(client::Connection* connection,
                                const std::vector<QuerySpec>& suite,
                                const RunConfig& config);

struct ScenarioResult {
  std::string scenario_id;
  std::string scenario_name;
  std::string sut;
  double total_s = 0.0;  // sum of per-query means
  std::vector<RunResult> queries;
  size_t failed = 0;
};

// Runs every query of a scenario in sequence.
ScenarioResult RunScenario(client::Connection* connection,
                           const Scenario& scenario, const RunConfig& config);

// Throughput mode: round-robins a mixed workload for `rounds` full passes
// and reports aggregate queries/second, the paper-style summary metric for
// comparing SUTs on a whole workload rather than a single query.
struct ThroughputResult {
  std::string sut;
  size_t queries_executed = 0;
  size_t errors = 0;
  double elapsed_s = 0.0;
  double QueriesPerSecond() const {
    return elapsed_s > 0 ? static_cast<double>(queries_executed) / elapsed_s
                         : 0.0;
  }
};

ThroughputResult RunThroughput(client::Connection* connection,
                               const std::vector<QuerySpec>& workload,
                               int rounds);

// Multi-client throughput: `clients` threads share the connection's
// database (each with its own Statement) and round-robin the workload
// concurrently, the paper's multiuser dimension. queries_executed/errors
// aggregate across clients; elapsed_s is wall-clock.
ThroughputResult RunConcurrentThroughput(client::Connection* connection,
                                         const std::vector<QuerySpec>& workload,
                                         int clients, int rounds);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_RUNNER_H_
