// The Jackpine micro benchmark suites.
//
// E1 (topological): queries over the DE-9IM predicates, covering the
// geometry-type pairs point/line/polygon. E2 (analysis): queries over the
// spatial analysis functions (area, length, distance, buffer, convex hull,
// envelope, overlay ops, simplification).
//
// Query constants (windows, probe points, reference polygons) are derived
// deterministically from the dataset so that every SUT answers literally the
// same SQL.

#ifndef JACKPINE_CORE_MICRO_SUITE_H_
#define JACKPINE_CORE_MICRO_SUITE_H_

#include <vector>

#include "core/query_spec.h"
#include "tigergen/tigergen.h"

namespace jackpine::core {

// The 22 DE-9IM topological micro queries (ids T1..T22).
std::vector<QuerySpec> BuildTopologicalSuite(
    const tigergen::TigerDataset& dataset);

// The 14 spatial-analysis micro queries (ids A1..A14).
std::vector<QuerySpec> BuildAnalysisSuite(
    const tigergen::TigerDataset& dataset);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_MICRO_SUITE_H_
