#include "core/loader.h"

#include "common/stopwatch.h"

namespace jackpine::core {

using engine::Row;
using engine::Table;
using engine::Value;

namespace {

constexpr const char* kDdl[] = {
    "CREATE TABLE county (fips BIGINT, name VARCHAR, geom GEOMETRY)",
    "CREATE TABLE edges (tlid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, lfromadd BIGINT, ltoadd BIGINT, rfromadd BIGINT, "
    "rtoadd BIGINT, zip BIGINT, geom GEOMETRY)",
    "CREATE TABLE pointlm (plid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, geom GEOMETRY)",
    "CREATE TABLE arealm (alid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, geom GEOMETRY)",
    "CREATE TABLE areawater (awid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, areasqm DOUBLE, geom GEOMETRY)",
};

constexpr const char* kIndexDdl[] = {
    "CREATE SPATIAL INDEX ON county (geom)",
    "CREATE SPATIAL INDEX ON edges (geom)",
    "CREATE SPATIAL INDEX ON pointlm (geom)",
    "CREATE SPATIAL INDEX ON arealm (geom)",
    "CREATE SPATIAL INDEX ON areawater (geom)",
};

}  // namespace

Result<LoadTiming> LoadDataset(const tigergen::TigerDataset& dataset,
                               client::Connection* connection,
                               bool build_indexes) {
  LoadTiming timing;
  client::Statement stmt = connection->CreateStatement();

  Stopwatch create_watch;
  for (const char* ddl : kDdl) {
    JACKPINE_ASSIGN_OR_RETURN(int64_t n, stmt.ExecuteUpdate(ddl));
    (void)n;
  }
  timing.create_s = create_watch.ElapsedSeconds();

  // Heap loading goes through the engine's bulk path (Table::Append), the
  // equivalent of the COPY/LOAD facilities the paper used per DBMS.
  engine::Database& db = connection->database();
  Stopwatch insert_watch;

  Table* county = db.catalog().GetTable("county");
  for (const auto& c : dataset.counties) {
    JACKPINE_RETURN_IF_ERROR(county->Append(
        Row{Value::Int(c.fips), Value::Str(c.name), Value::Geo(c.geom)}));
  }
  Table* edges = db.catalog().GetTable("edges");
  for (const auto& e : dataset.edges) {
    JACKPINE_RETURN_IF_ERROR(edges->Append(Row{
        Value::Int(e.tlid), Value::Str(e.fullname), Value::Str(e.mtfcc),
        Value::Int(e.county_fips), Value::Int(e.lfromadd),
        Value::Int(e.ltoadd), Value::Int(e.rfromadd), Value::Int(e.rtoadd),
        Value::Int(e.zip), Value::Geo(e.geom)}));
  }
  Table* pointlm = db.catalog().GetTable("pointlm");
  for (const auto& p : dataset.pointlm) {
    JACKPINE_RETURN_IF_ERROR(pointlm->Append(
        Row{Value::Int(p.plid), Value::Str(p.fullname), Value::Str(p.mtfcc),
            Value::Int(p.county_fips), Value::Geo(p.geom)}));
  }
  Table* arealm = db.catalog().GetTable("arealm");
  for (const auto& a : dataset.arealm) {
    JACKPINE_RETURN_IF_ERROR(arealm->Append(
        Row{Value::Int(a.alid), Value::Str(a.fullname), Value::Str(a.mtfcc),
            Value::Int(a.county_fips), Value::Geo(a.geom)}));
  }
  Table* areawater = db.catalog().GetTable("areawater");
  for (const auto& w : dataset.areawater) {
    JACKPINE_RETURN_IF_ERROR(areawater->Append(
        Row{Value::Int(w.awid), Value::Str(w.fullname), Value::Str(w.mtfcc),
            Value::Int(w.county_fips), Value::Real(w.areasqm),
            Value::Geo(w.geom)}));
  }
  timing.insert_s = insert_watch.ElapsedSeconds();
  timing.rows = dataset.TotalRows();

  if (build_indexes) {
    Stopwatch index_watch;
    for (const char* ddl : kIndexDdl) {
      JACKPINE_ASSIGN_OR_RETURN(int64_t n, stmt.ExecuteUpdate(ddl));
      (void)n;
    }
    timing.index_s = index_watch.ElapsedSeconds();
  }
  return timing;
}

Result<LoadTiming> GenerateAndLoad(const tigergen::TigerGenOptions& options,
                                   client::Connection* connection,
                                   bool build_indexes) {
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(options);
  return LoadDataset(dataset, connection, build_indexes);
}

}  // namespace jackpine::core
