#include "core/loader.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace jackpine::core {

using engine::Row;
using engine::Table;
using engine::Value;

namespace {

constexpr const char* kDdl[] = {
    "CREATE TABLE county (fips BIGINT, name VARCHAR, geom GEOMETRY)",
    "CREATE TABLE edges (tlid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, lfromadd BIGINT, ltoadd BIGINT, rfromadd BIGINT, "
    "rtoadd BIGINT, zip BIGINT, geom GEOMETRY)",
    "CREATE TABLE pointlm (plid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, geom GEOMETRY)",
    "CREATE TABLE arealm (alid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, geom GEOMETRY)",
    "CREATE TABLE areawater (awid BIGINT, fullname VARCHAR, mtfcc VARCHAR, "
    "county BIGINT, areasqm DOUBLE, geom GEOMETRY)",
};

constexpr const char* kIndexDdl[] = {
    "CREATE SPATIAL INDEX ON county (geom)",
    "CREATE SPATIAL INDEX ON edges (geom)",
    "CREATE SPATIAL INDEX ON pointlm (geom)",
    "CREATE SPATIAL INDEX ON arealm (geom)",
    "CREATE SPATIAL INDEX ON areawater (geom)",
};

// The five tables in DDL order, with their rows materialised as engine
// values — the one description both load paths (in-process Append, remote
// INSERT SQL) are derived from.
std::vector<std::pair<std::string, std::vector<Row>>> BuildRows(
    const tigergen::TigerDataset& dataset) {
  std::vector<std::pair<std::string, std::vector<Row>>> tables;
  std::vector<Row> county;
  county.reserve(dataset.counties.size());
  for (const auto& c : dataset.counties) {
    county.push_back(
        Row{Value::Int(c.fips), Value::Str(c.name), Value::Geo(c.geom)});
  }
  tables.emplace_back("county", std::move(county));

  std::vector<Row> edges;
  edges.reserve(dataset.edges.size());
  for (const auto& e : dataset.edges) {
    edges.push_back(Row{
        Value::Int(e.tlid), Value::Str(e.fullname), Value::Str(e.mtfcc),
        Value::Int(e.county_fips), Value::Int(e.lfromadd),
        Value::Int(e.ltoadd), Value::Int(e.rfromadd), Value::Int(e.rtoadd),
        Value::Int(e.zip), Value::Geo(e.geom)});
  }
  tables.emplace_back("edges", std::move(edges));

  std::vector<Row> pointlm;
  pointlm.reserve(dataset.pointlm.size());
  for (const auto& p : dataset.pointlm) {
    pointlm.push_back(
        Row{Value::Int(p.plid), Value::Str(p.fullname), Value::Str(p.mtfcc),
            Value::Int(p.county_fips), Value::Geo(p.geom)});
  }
  tables.emplace_back("pointlm", std::move(pointlm));

  std::vector<Row> arealm;
  arealm.reserve(dataset.arealm.size());
  for (const auto& a : dataset.arealm) {
    arealm.push_back(
        Row{Value::Int(a.alid), Value::Str(a.fullname), Value::Str(a.mtfcc),
            Value::Int(a.county_fips), Value::Geo(a.geom)});
  }
  tables.emplace_back("arealm", std::move(arealm));

  std::vector<Row> areawater;
  areawater.reserve(dataset.areawater.size());
  for (const auto& w : dataset.areawater) {
    areawater.push_back(
        Row{Value::Int(w.awid), Value::Str(w.fullname), Value::Str(w.mtfcc),
            Value::Int(w.county_fips), Value::Real(w.areasqm),
            Value::Geo(w.geom)});
  }
  tables.emplace_back("areawater", std::move(areawater));
  return tables;
}

// Renders one value as a SQL literal the engine parses back to the exact
// same value: WKT at full precision round-trips doubles bit-for-bit, so a
// remotely loaded dataset is identical to a locally loaded one and remote
// runs return the same row counts and checksums.
std::string SqlLiteral(const Value& v) {
  switch (v.type()) {
    case engine::DataType::kNull:
      return "NULL";
    case engine::DataType::kBool:
      return v.bool_value() ? "TRUE" : "FALSE";
    case engine::DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(v.int_value()));
    case engine::DataType::kDouble:
      return StrFormat("%.17g", v.double_value());
    case engine::DataType::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case engine::DataType::kGeometry:
      return "ST_GeomFromText('" + v.geometry_value().ToWkt() + "')";
  }
  return "NULL";
}

// Loads one table over the SQL seam in bounded multi-row INSERTs — the
// JDBC-shaped load path a remote connection uses. 64 rows per statement
// keeps each Update frame far below the wire's frame limit even for the
// polygon-heavy tables.
constexpr size_t kInsertBatchRows = 64;

Status InsertRows(client::Statement* stmt, const std::string& table,
                  const std::vector<Row>& rows) {
  size_t next = 0;
  while (next < rows.size()) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    const size_t batch_end =
        std::min(rows.size(), next + kInsertBatchRows);
    for (size_t r = next; r < batch_end; ++r) {
      if (r != next) sql += ", ";
      sql += "(";
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (c != 0) sql += ", ";
        sql += SqlLiteral(rows[r][c]);
      }
      sql += ")";
    }
    JACKPINE_ASSIGN_OR_RETURN(int64_t n, stmt->ExecuteUpdate(sql));
    if (n != static_cast<int64_t>(batch_end - next)) {
      return Status::Internal(StrFormat(
          "bulk INSERT into %s: %lld rows affected, expected %zu",
          table.c_str(), static_cast<long long>(n), batch_end - next));
    }
    next = batch_end;
  }
  return Status::Ok();
}

}  // namespace

Result<LoadTiming> LoadDataset(const tigergen::TigerDataset& dataset,
                               client::Connection* connection,
                               bool build_indexes) {
  LoadTiming timing;
  client::Statement stmt = connection->CreateStatement();

  Stopwatch create_watch;
  for (const char* ddl : kDdl) {
    JACKPINE_ASSIGN_OR_RETURN(int64_t n, stmt.ExecuteUpdate(ddl));
    (void)n;
  }
  timing.create_s = create_watch.ElapsedSeconds();

  std::vector<std::pair<std::string, std::vector<Row>>> tables =
      BuildRows(dataset);
  Stopwatch insert_watch;
  if (engine::Database* db = connection->local_database()) {
    // Heap loading goes through the engine's bulk path (Table::Append), the
    // equivalent of the COPY/LOAD facilities the paper used per DBMS.
    for (auto& [name, rows] : tables) {
      Table* table = db->catalog().GetTable(name);
      for (Row& row : rows) {
        JACKPINE_RETURN_IF_ERROR(table->Append(std::move(row)));
      }
    }
  } else {
    // Remote connection: load through SQL over the wire, the JDBC-shaped
    // path the paper measured. Batched multi-row INSERTs bound statement
    // and frame sizes.
    for (const auto& [name, rows] : tables) {
      JACKPINE_RETURN_IF_ERROR(InsertRows(&stmt, name, rows));
    }
  }
  timing.insert_s = insert_watch.ElapsedSeconds();
  timing.rows = dataset.TotalRows();

  if (build_indexes) {
    Stopwatch index_watch;
    for (const char* ddl : kIndexDdl) {
      JACKPINE_ASSIGN_OR_RETURN(int64_t n, stmt.ExecuteUpdate(ddl));
      (void)n;
    }
    timing.index_s = index_watch.ElapsedSeconds();
  }
  return timing;
}

Result<LoadTiming> GenerateAndLoad(const tigergen::TigerGenOptions& options,
                                   client::Connection* connection,
                                   bool build_indexes) {
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(options);
  return LoadDataset(dataset, connection, build_indexes);
}

}  // namespace jackpine::core
