#include "core/query_spec.h"

namespace jackpine::core {

const char* QueryCategoryName(QueryCategory category) {
  switch (category) {
    case QueryCategory::kTopoRelation:
      return "topological";
    case QueryCategory::kAnalysis:
      return "analysis";
    case QueryCategory::kMacro:
      return "macro";
  }
  return "unknown";
}

}  // namespace jackpine::core
