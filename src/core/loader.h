// Loads a generated TIGER-like dataset into a SUT (experiment E6 measures
// exactly this path).

#ifndef JACKPINE_CORE_LOADER_H_
#define JACKPINE_CORE_LOADER_H_

#include "client/client.h"
#include "tigergen/tigergen.h"

namespace jackpine::core {

struct LoadTiming {
  double create_s = 0.0;  // DDL
  double insert_s = 0.0;  // heap loading
  double index_s = 0.0;   // spatial index build (all tables)
  size_t rows = 0;
};

// Creates the five Jackpine tables (county, edges, pointlm, arealm,
// areawater), loads all rows, and, when `build_indexes`, issues
// CREATE SPATIAL INDEX on every geometry column. Returns phase timings.
Result<LoadTiming> LoadDataset(const tigergen::TigerDataset& dataset,
                               client::Connection* connection,
                               bool build_indexes = true);

// Convenience: generate + load in one call.
Result<LoadTiming> GenerateAndLoad(const tigergen::TigerGenOptions& options,
                                   client::Connection* connection,
                                   bool build_indexes = true);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_LOADER_H_
