#include "core/micro_suite.h"

#include "common/string_util.h"
#include "geom/wkt_writer.h"

namespace jackpine::core {

using tigergen::TigerDataset;

namespace {

// Reference constants shared by both suites, derived from the dataset.
struct SuiteConstants {
  std::string county_wkt;   // a central county polygon
  std::string window_wkt;   // ~5% x 5% browse window around an urban centre
  std::string big_window_wkt;  // ~20% x 20% window
  std::string point_wkt;    // an urban centre
  double small_dist = 0.0;  // ~0.5% of the extent
  double buffer_dist = 0.0;
};

std::string BoxWkt(const geom::Coord& center, double half) {
  return StrFormat(
      "POLYGON ((%.6f %.6f, %.6f %.6f, %.6f %.6f, %.6f %.6f, %.6f %.6f))",
      center.x - half, center.y - half, center.x + half, center.y - half,
      center.x + half, center.y + half, center.x - half, center.y + half,
      center.x - half, center.y - half);
}

SuiteConstants DeriveConstants(const TigerDataset& ds) {
  SuiteConstants k;
  const geom::Coord urban = ds.urban_centers.front();
  const double extent = ds.extent.Width();
  k.window_wkt = BoxWkt(urban, extent * 0.025);
  k.big_window_wkt = BoxWkt(urban, extent * 0.10);
  k.point_wkt = StrFormat("POINT (%.6f %.6f)", urban.x, urban.y);
  k.small_dist = extent * 0.005;
  k.buffer_dist = extent * 0.004;
  const tigergen::County& county = ds.counties[ds.counties.size() / 2];
  k.county_wkt = county.geom.ToWkt();
  return k;
}

QuerySpec Make(const char* id, const char* name, QueryCategory category,
               std::string sql, const char* note) {
  QuerySpec q;
  q.id = id;
  q.name = name;
  q.category = category;
  q.sql = std::move(sql);
  q.note = note;
  return q;
}

}  // namespace

std::vector<QuerySpec> BuildTopologicalSuite(const TigerDataset& ds) {
  const SuiteConstants k = DeriveConstants(ds);
  const auto cat = QueryCategory::kTopoRelation;
  std::vector<QuerySpec> out;

  // --- point vs point -----------------------------------------------------
  out.push_back(Make(
      "T1", "point equals point", cat,
      StrFormat("SELECT COUNT(*) FROM pointlm WHERE "
                "ST_Equals(geom, ST_GeomFromText('%s'))",
                k.point_wkt.c_str()),
      "0-dim vs 0-dim; constant probe point"));
  out.push_back(Make(
      "T2", "point disjoint polygon", cat,
      StrFormat("SELECT COUNT(*) FROM pointlm WHERE "
                "ST_Disjoint(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "not index-assisted by design (negation of coverage)"));

  // --- point vs line / polygon ---------------------------------------------
  out.push_back(Make(
      "T3", "point within polygon", cat,
      StrFormat("SELECT COUNT(*) FROM pointlm WHERE "
                "ST_Within(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "classic point-in-polygon with index window"));
  out.push_back(Make(
      "T4", "polygon contains point", cat,
      StrFormat("SELECT COUNT(*) FROM county WHERE "
                "ST_Contains(geom, ST_GeomFromText('%s'))",
                k.point_wkt.c_str()),
      "reverse direction of T3"));
  out.push_back(Make(
      "T5", "point intersects line", cat,
      "SELECT COUNT(*) FROM pointlm p, edges e "
      "WHERE e.mtfcc = 'S1100' AND ST_Intersects(p.geom, e.geom)",
      "expected near-empty: points rarely lie exactly on lines"));
  out.push_back(Make(
      "T6", "point near line (dwithin)", cat,
      StrFormat("SELECT COUNT(*) FROM pointlm p, edges e "
                "WHERE e.mtfcc = 'S1200' AND "
                "ST_DWithin(p.geom, e.geom, %.6f)",
                k.small_dist),
      "distance-relaxed point/line topological query"));

  // --- line vs line ----------------------------------------------------------
  out.push_back(Make(
      "T7", "line intersects line", cat,
      "SELECT COUNT(*) FROM edges a, edges b WHERE a.mtfcc = 'S1100' AND "
      "b.mtfcc = 'S1200' AND ST_Intersects(a.geom, b.geom)",
      "highway x secondary spatial join"));
  out.push_back(Make(
      "T8", "line crosses line", cat,
      "SELECT COUNT(*) FROM edges a, edges b WHERE a.mtfcc = 'S1100' AND "
      "b.mtfcc = 'S1200' AND ST_Crosses(a.geom, b.geom)",
      "proper 0-dim interior crossings only"));
  out.push_back(Make(
      "T9", "line overlaps line", cat,
      "SELECT COUNT(*) FROM edges a, edges b WHERE a.mtfcc = 'S1100' AND "
      "b.mtfcc = 'S1100' AND a.tlid < b.tlid AND "
      "ST_Overlaps(a.geom, b.geom)",
      "collinear 1-dim overlap; usually empty on road data"));
  out.push_back(Make(
      "T10", "line touches line", cat,
      "SELECT COUNT(*) FROM edges a, edges b WHERE a.mtfcc = 'S1100' AND "
      "b.mtfcc = 'S1100' AND a.tlid < b.tlid AND "
      "ST_Touches(a.geom, b.geom)",
      "endpoint-only contact"));

  // --- line vs polygon ---------------------------------------------------------
  out.push_back(Make(
      "T11", "line intersects polygon", cat,
      "SELECT COUNT(*) FROM edges e, areawater w "
      "WHERE ST_Intersects(e.geom, w.geom)",
      "roads hitting water bodies"));
  out.push_back(Make(
      "T12", "line crosses polygon", cat,
      StrFormat("SELECT COUNT(*) FROM edges WHERE "
                "ST_Crosses(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "roads crossing a county boundary"));
  out.push_back(Make(
      "T13", "line within polygon", cat,
      StrFormat("SELECT COUNT(*) FROM edges WHERE "
                "ST_Within(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "roads fully inside one county"));
  out.push_back(Make(
      "T14", "line touches polygon", cat,
      StrFormat("SELECT COUNT(*) FROM edges WHERE "
                "ST_Touches(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "boundary-only contact; rare by construction"));

  // --- polygon vs polygon -----------------------------------------------------
  out.push_back(Make(
      "T15", "polygon equals polygon", cat,
      StrFormat("SELECT COUNT(*) FROM county WHERE "
                "ST_Equals(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "exactly one county matches"));
  out.push_back(Make(
      "T16", "polygon touches polygon", cat,
      "SELECT COUNT(*) FROM county a, county b WHERE a.fips < b.fips AND "
      "ST_Touches(a.geom, b.geom)",
      "county adjacency; lattice construction guarantees shared edges"));
  out.push_back(Make(
      "T17", "polygon intersects polygon", cat,
      "SELECT COUNT(*) FROM arealm a, areawater w "
      "WHERE ST_Intersects(a.geom, w.geom)",
      "parks vs lakes spatial join"));
  out.push_back(Make(
      "T18", "polygon overlaps polygon", cat,
      "SELECT COUNT(*) FROM arealm a, areawater w "
      "WHERE ST_Overlaps(a.geom, w.geom)",
      "partial (same-dimension) overlap only"));
  out.push_back(Make(
      "T19", "polygon within polygon", cat,
      StrFormat("SELECT COUNT(*) FROM areawater WHERE "
                "ST_Within(geom, ST_GeomFromText('%s'))",
                k.county_wkt.c_str()),
      "lakes inside a county"));
  out.push_back(Make(
      "T20", "polygon contains polygon", cat,
      "SELECT COUNT(*) FROM county c, arealm a "
      "WHERE ST_Contains(c.geom, a.geom)",
      "county containing parks (join form of T19)"));
  out.push_back(Make(
      "T21", "polygon coveredby polygon", cat,
      StrFormat("SELECT COUNT(*) FROM arealm WHERE "
                "ST_CoveredBy(geom, ST_GeomFromText('%s'))",
                k.big_window_wkt.c_str()),
      "covers/coveredby variant (boundary contact allowed)"));
  out.push_back(Make(
      "T22", "polygon disjoint polygon", cat,
      StrFormat("SELECT COUNT(*) FROM arealm WHERE "
                "ST_Disjoint(geom, ST_GeomFromText('%s'))",
                k.big_window_wkt.c_str()),
      "the paper's pathological case: no index help possible"));
  return out;
}

std::vector<QuerySpec> BuildAnalysisSuite(const TigerDataset& ds) {
  const SuiteConstants k = DeriveConstants(ds);
  const auto cat = QueryCategory::kAnalysis;
  std::vector<QuerySpec> out;

  out.push_back(Make("A1", "area of polygons", cat,
                     "SELECT SUM(ST_Area(geom)) FROM arealm",
                     "full-scan measure over polygons"));
  out.push_back(Make("A2", "length of lines", cat,
                     "SELECT SUM(ST_Length(geom)) FROM edges",
                     "full-scan measure over all roads"));
  out.push_back(Make("A3", "perimeter of polygons", cat,
                     "SELECT SUM(ST_Perimeter(geom)) FROM county",
                     "ring traversal"));
  out.push_back(Make(
      "A4", "centroid", cat,
      "SELECT SUM(ST_X(ST_Centroid(geom))) FROM arealm",
      "area-weighted centroids, reduced to a scalar for checksumming"));
  out.push_back(Make(
      "A5", "envelope", cat,
      "SELECT SUM(ST_Area(ST_Envelope(geom))) FROM areawater",
      "MBR extraction"));
  out.push_back(Make(
      "A6", "convex hull", cat,
      "SELECT SUM(ST_NumPoints(ST_ConvexHull(geom))) FROM arealm",
      "hull per polygon"));
  out.push_back(Make(
      "A7", "buffer around points", cat,
      StrFormat("SELECT SUM(ST_Area(ST_Buffer(geom, %.6f))) FROM pointlm",
                k.buffer_dist),
      "point dilation (single disc per row)"));
  out.push_back(Make(
      "A8", "buffer around lines", cat,
      StrFormat("SELECT SUM(ST_Area(ST_Buffer(geom, %.6f))) FROM edges "
                "WHERE mtfcc = 'S1100' AND zip < 73100",
                k.buffer_dist),
      "capsule-union dilation of polylines (restricted subset: expensive)"));
  out.push_back(Make(
      "A9", "distance point-to-point", cat,
      StrFormat("SELECT AVG(ST_Distance(geom, ST_GeomFromText('%s'))) "
                "FROM pointlm",
                k.point_wkt.c_str()),
      "distance to a constant probe point"));
  out.push_back(Make(
      "A10", "distance line-to-polygon", cat,
      StrFormat("SELECT MIN(ST_Distance(geom, ST_GeomFromText('%s'))) "
                "FROM edges WHERE mtfcc = 'S1100'",
                k.window_wkt.c_str()),
      "closest highway to a reference area"));
  out.push_back(Make(
      "A11", "intersection area", cat,
      StrFormat("SELECT SUM(ST_Area(ST_Intersection(geom, "
                "ST_GeomFromText('%s')))) FROM arealm WHERE "
                "ST_Intersects(geom, ST_GeomFromText('%s'))",
                k.big_window_wkt.c_str(), k.big_window_wkt.c_str()),
      "polygon clipping (Greiner-Hormann) after an indexed filter"));
  out.push_back(Make(
      "A12", "union area", cat,
      StrFormat("SELECT SUM(ST_Area(ST_Union(geom, ST_GeomFromText('%s')))) "
                "FROM areawater WHERE ST_Intersects(geom, "
                "ST_GeomFromText('%s'))",
                k.window_wkt.c_str(), k.big_window_wkt.c_str()),
      "dissolving union per row"));
  out.push_back(Make(
      "A13", "simplification", cat,
      "SELECT SUM(ST_NumPoints(ST_Simplify(geom, 0.05))) FROM edges",
      "Douglas-Peucker over every road"));
  out.push_back(Make(
      "A14", "geometry metadata scan", cat,
      "SELECT COUNT(*), SUM(ST_NumPoints(geom)), SUM(ST_Dimension(geom)) "
      "FROM edges",
      "cheap accessor functions; measures per-row call overhead"));
  return out;
}

}  // namespace jackpine::core
