#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/sql_normalize.h"
#include "obs/span.h"

namespace jackpine::core {

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

void RetryBudget::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(max_tokens_, tokens_ + fill_per_success_);
}

uint64_t RetryBudget::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

namespace {

// Stable per-query offset into the jitter stream so each query retries on
// its own deterministic schedule (FNV-1a over the query id).
uint64_t JitterStream(const RetryPolicy& policy, const std::string& query_id) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : query_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return policy.jitter_seed ^ h;
}

// Attempt-level fault accounting for one retried execution.
struct RetryOutcome {
  size_t attempts = 0;
  size_t timeouts = 0;
  size_t transient_errors = 0;
  size_t sheds = 0;
  size_t breaker_fast_fails = 0;
  size_t budget_denied = 0;
  double last_attempt_s = 0.0;  // wall time of the final attempt, no backoff
};

// One execution slot under the retry policy: retryable failures — transient
// (kUnavailable) or shed (kResourceExhausted + retry_after_ms) — back off
// exponentially with deterministic jitter and try again, up to max_attempts
// total tries; every other error is final immediately. A server retry_after
// hint raises the sleep to at least the hinted duration, and the optional
// shared RetryBudget can cut the retry sequence short when the whole run is
// already retrying too much.
Result<client::ResultSet> ExecuteWithRetry(client::Statement* stmt,
                                           const std::string& sql,
                                           const RetryPolicy& policy, Rng* rng,
                                           RetryOutcome* outcome) {
  const int allowed = std::max(policy.max_attempts, 1);
  // When the statement carries trace context, each try becomes a
  // client.attempt span under the caller's root span, and the driver layers
  // below parent their rpc/send/recv spans under the attempt. Backoff sleeps
  // fall between attempt spans, so retries show up as gaps in the timeline.
  const ExecLimits base_limits = stmt->exec_limits();
  const bool traced = base_limits.spans != nullptr &&
                      base_limits.spans->enabled() &&
                      base_limits.trace_id != 0;
  for (int attempt = 1;; ++attempt) {
    ++outcome->attempts;
    obs::Span attempt_span;
    if (traced) {
      attempt_span = base_limits.spans->StartSpan(
          "client.attempt", base_limits.trace_id, base_limits.parent_span_id);
      attempt_span.Annotate("attempt", StrFormat("%d", attempt));
      ExecLimits attempt_limits = base_limits;
      attempt_limits.parent_span_id = attempt_span.span_id();
      stmt->SetExecLimits(attempt_limits);
    }
    Stopwatch watch;
    Result<client::ResultSet> rs = stmt->ExecuteQuery(sql);
    outcome->last_attempt_s = watch.ElapsedSeconds();
    attempt_span.End();
    if (rs.ok()) {
      if (policy.budget) policy.budget->OnSuccess();
      return rs;
    }
    const Status& status = rs.status();
    const StatusCode code = status.code();
    // Mutually exclusive taxonomy buckets, so the report columns add up.
    if (code == StatusCode::kDeadlineExceeded) ++outcome->timeouts;
    if (IsShed(status)) {
      ++outcome->sheds;
    } else if (IsBreakerFastFail(status)) {
      ++outcome->breaker_fast_fails;
    } else if (IsTransient(code)) {
      ++outcome->transient_errors;
    }
    if (!IsRetryable(status) || attempt >= allowed) return rs;
    if (policy.budget && !policy.budget->TryAcquire()) {
      ++outcome->budget_denied;
      return rs;
    }
    const double backoff = std::min(
        policy.backoff_base_s *
            std::pow(policy.backoff_multiplier, attempt - 1),
        policy.backoff_max_s);
    double jittered = backoff * (0.5 + 0.5 * rng->NextDouble());
    if (policy.honor_retry_after && status.retry_after_ms() > 0) {
      jittered = std::max(jittered, status.retry_after_ms() / 1e3);
    }
    if (jittered > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(jittered));
    }
  }
}

// Folds one finished execution slot into the harness-side fingerprint
// statistics (RunConfig::statement_stats); no-op when disabled. Latency is
// the final attempt's wall time — the same "what did this execution cost"
// number the timing stats keep — not the retries' backoff sleeps.
void RecordStatement(obs::StatementStats* stats,
                     const std::string& fingerprint,
                     const Result<client::ResultSet>& rs, double latency_s) {
  if (stats == nullptr) return;
  obs::StatementUpdate update;
  update.code = rs.ok() ? StatusCode::kOk : rs.status().code();
  update.latency_s = latency_s;
  update.rows_returned = rs.ok() ? rs->RowCount() : 0;
  stats->Record(fingerprint, update);
}

// Precomputed per-slot fingerprints for the workload loops: tokenizing once
// per workload instead of once per execution keeps the stats recording off
// the hot path's profile.
std::vector<std::string> WorkloadFingerprints(
    const obs::StatementStats* stats, const std::vector<QuerySpec>& workload) {
  std::vector<std::string> out;
  if (stats == nullptr) return out;
  out.reserve(workload.size());
  for (const QuerySpec& spec : workload) {
    out.push_back(engine::SqlFingerprint(spec.sql));
  }
  return out;
}

void Accumulate(const RetryOutcome& outcome, RunResult* out) {
  out->attempts += outcome.attempts;
  out->timeouts += outcome.timeouts;
  out->transient_errors += outcome.transient_errors;
  out->sheds += outcome.sheds;
  out->breaker_fast_fails += outcome.breaker_fast_fails;
  out->budget_denied += outcome.budget_denied;
}

}  // namespace

RunResult RunQuery(client::Connection* connection, const QuerySpec& spec,
                   const RunConfig& config) {
  RunResult out;
  out.query_id = spec.id;
  out.query_name = spec.name;
  out.category = spec.category;
  out.sut = connection->config().name;

  client::Statement stmt = connection->CreateStatement();
  stmt.SetExecLimits(config.limits);
  Rng rng(JitterStream(config.retry, spec.id));

  for (int w = 0; w < config.warmup; ++w) {
    RetryOutcome outcome;
    auto rs = ExecuteWithRetry(&stmt, spec.sql, config.retry, &rng, &outcome);
    Accumulate(outcome, &out);
    if (!rs.ok()) {
      out.error = rs.status().ToString();
      out.error_code = rs.status().code();
      return out;
    }
  }
  // Trace the measured repetitions only: attaching after warmup keeps the
  // warm-up executions out of the stage/ratio accounting. The same applies
  // to spans — each measured repetition becomes one trace, rooted at a
  // client.query span that the attempt/rpc/server spans all hang under.
  stmt.SetTrace(&out.trace);
  obs::SpanRecorder* recorder =
      config.limits.spans != nullptr && config.limits.spans->enabled()
          ? config.limits.spans
          : nullptr;
  const std::string fingerprint = config.statement_stats != nullptr
                                      ? engine::SqlFingerprint(spec.sql)
                                      : std::string();
  std::vector<double> seconds;
  bool failed = false;
  for (int r = 0; r < config.repetitions; ++r) {
    obs::Span root;
    if (recorder != nullptr) {
      ExecLimits rep_limits = config.limits;
      rep_limits.trace = &out.trace;
      rep_limits.trace_id = recorder->NewTraceId();
      root = recorder->StartSpan("client.query", rep_limits.trace_id);
      root.Annotate("query", spec.id);
      root.Annotate("sut", out.sut);
      root.Annotate("rep", StrFormat("%d", r));
      rep_limits.parent_span_id = root.span_id();
      stmt.SetExecLimits(rep_limits);
    }
    RetryOutcome outcome;
    auto rs = ExecuteWithRetry(&stmt, spec.sql, config.retry, &rng, &outcome);
    Accumulate(outcome, &out);
    RecordStatement(config.statement_stats, fingerprint, rs,
                    outcome.last_attempt_s);
    if (!rs.ok()) {
      // Keep the timings already gathered: partial stats are still useful
      // and the caller sees `ok == false` plus the error taxonomy.
      out.error = rs.status().ToString();
      out.error_code = rs.status().code();
      failed = true;
      break;
    }
    seconds.push_back(outcome.last_attempt_s);
    out.result_rows = rs->RowCount();
    out.checksum = rs->Checksum();
  }
  out.timing = Summarize(std::move(seconds));
  out.ok = !failed;
  return out;
}

std::vector<RunResult> RunSuite(client::Connection* connection,
                                const std::vector<QuerySpec>& suite,
                                const RunConfig& config) {
  std::vector<RunResult> out;
  out.reserve(suite.size());
  for (const QuerySpec& spec : suite) {
    out.push_back(RunQuery(connection, spec, config));
  }
  return out;
}

ThroughputResult RunThroughput(client::Connection* connection,
                               const std::vector<QuerySpec>& workload,
                               int rounds, const RunConfig& config) {
  ThroughputResult out;
  out.sut = connection->config().name;
  client::Statement stmt = connection->CreateStatement();
  stmt.SetExecLimits(config.limits);
  Rng rng(config.retry.jitter_seed);
  const std::vector<std::string> fingerprints =
      WorkloadFingerprints(config.statement_stats, workload);
  Stopwatch watch;
  for (int round = 0; round < rounds; ++round) {
    for (size_t q = 0; q < workload.size(); ++q) {
      const QuerySpec& spec = workload[q];
      RetryOutcome outcome;
      auto rs =
          ExecuteWithRetry(&stmt, spec.sql, config.retry, &rng, &outcome);
      RecordStatement(config.statement_stats,
                      fingerprints.empty() ? std::string() : fingerprints[q],
                      rs, outcome.last_attempt_s);
      out.timeouts += outcome.timeouts;
      out.transient_errors += outcome.transient_errors;
      out.sheds += outcome.sheds;
      out.breaker_fast_fails += outcome.breaker_fast_fails;
      out.budget_denied += outcome.budget_denied;
      if (rs.ok()) {
        ++out.queries_executed;
      } else {
        ++out.errors;
      }
    }
  }
  out.elapsed_s = watch.ElapsedSeconds();
  return out;
}

ThroughputResult RunConcurrentThroughput(client::Connection* connection,
                                         const std::vector<QuerySpec>& workload,
                                         int clients, int rounds,
                                         const RunConfig& config) {
  ThroughputResult out;
  out.sut = connection->config().name;
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> transients{0};
  std::atomic<uint64_t> sheds{0};
  std::atomic<uint64_t> fast_fails{0};
  std::atomic<uint64_t> denied{0};
  const std::vector<std::string> fingerprints =
      WorkloadFingerprints(config.statement_stats, workload);
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(std::max(clients, 1)));
  for (int t = 0; t < std::max(clients, 1); ++t) {
    threads.emplace_back([&, t]() {
      client::Statement stmt = connection->CreateStatement();
      stmt.SetExecLimits(config.limits);
      // Per-client jitter stream: deterministic, but not shared, so one
      // client's retries never perturb another's backoff schedule.
      Rng rng(config.retry.jitter_seed + static_cast<uint64_t>(t));
      for (int round = 0; round < rounds; ++round) {
        // Stagger start offsets so clients don't run in lockstep.
        for (size_t q = 0; q < workload.size(); ++q) {
          const size_t slot = (q + static_cast<size_t>(t)) % workload.size();
          const QuerySpec& spec = workload[slot];
          RetryOutcome outcome;
          auto rs =
              ExecuteWithRetry(&stmt, spec.sql, config.retry, &rng, &outcome);
          RecordStatement(
              config.statement_stats,
              fingerprints.empty() ? std::string() : fingerprints[slot], rs,
              outcome.last_attempt_s);
          timeouts.fetch_add(outcome.timeouts, std::memory_order_relaxed);
          transients.fetch_add(outcome.transient_errors,
                               std::memory_order_relaxed);
          sheds.fetch_add(outcome.sheds, std::memory_order_relaxed);
          fast_fails.fetch_add(outcome.breaker_fast_fails,
                               std::memory_order_relaxed);
          denied.fetch_add(outcome.budget_denied, std::memory_order_relaxed);
          if (rs.ok()) {
            executed.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.elapsed_s = watch.ElapsedSeconds();
  out.queries_executed = executed.load();
  out.errors = errors.load();
  out.timeouts = timeouts.load();
  out.transient_errors = transients.load();
  out.sheds = sheds.load();
  out.breaker_fast_fails = fast_fails.load();
  out.budget_denied = denied.load();
  return out;
}

uint64_t OverloadResult::FoldedChecksum() const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (uint64_t ck : slot_checksums) {
    h = (h ^ ck) * 1099511628211ull;
  }
  return h;
}

OverloadResult RunOverload(client::Connection* connection,
                           const std::vector<QuerySpec>& workload, int clients,
                           int rounds, const RunConfig& config) {
  OverloadResult out;
  out.sut = connection->config().name;
  out.clients = std::max(clients, 1);
  out.rounds = std::max(rounds, 1);
  out.slot_checksums.assign(workload.size(), 0);

  // Skewed mix: precompute the Zipf(s) CDF over workload positions once
  // (slot 0 is the hottest); each client thread then draws slots from its
  // own seeded stream, so the per-thread query sequence is a pure function
  // of (seed, thread index) — identical across runs and server configs.
  std::vector<double> zipf_cdf;
  if (config.overload_zipf_s > 0.0 && !workload.empty()) {
    zipf_cdf.reserve(workload.size());
    double sum = 0.0;
    for (size_t r = 0; r < workload.size(); ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1),
                            config.overload_zipf_s);
      zipf_cdf.push_back(sum);
    }
    for (double& c : zipf_cdf) c /= sum;
  }

  const std::vector<std::string> fingerprints =
      WorkloadFingerprints(config.statement_stats, workload);
  std::mutex mu;  // guards latencies, checksums and the counter rollup
  std::vector<double> latencies;
  std::vector<uint8_t> slot_seen(workload.size(), 0);
  std::vector<std::thread> threads;
  Stopwatch watch;
  threads.reserve(static_cast<size_t>(out.clients));
  for (int t = 0; t < out.clients; ++t) {
    threads.emplace_back([&, t]() {
      client::Statement stmt = connection->CreateStatement();
      stmt.SetExecLimits(config.limits);
      Rng rng(config.retry.jitter_seed + static_cast<uint64_t>(t));
      Rng skew_rng(config.overload_skew_seed + static_cast<uint64_t>(t));
      std::vector<double> local_latencies;
      std::vector<uint64_t> local_checksums(workload.size(), 0);
      std::vector<uint8_t> local_seen(workload.size(), 0);
      uint64_t local_mismatches = 0;
      RetryOutcome total;
      size_t ok = 0, failed = 0;
      for (int round = 0; round < out.rounds; ++round) {
        for (size_t q = 0; q < workload.size(); ++q) {
          size_t slot = (q + static_cast<size_t>(t)) % workload.size();
          if (!zipf_cdf.empty()) {
            const double u = skew_rng.NextDouble();
            slot = static_cast<size_t>(
                std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
                zipf_cdf.begin());
            if (slot >= workload.size()) slot = workload.size() - 1;
          }
          const QuerySpec& spec = workload[slot];
          RetryOutcome outcome;
          auto rs =
              ExecuteWithRetry(&stmt, spec.sql, config.retry, &rng, &outcome);
          RecordStatement(
              config.statement_stats,
              fingerprints.empty() ? std::string() : fingerprints[slot], rs,
              outcome.last_attempt_s);
          total.attempts += outcome.attempts;
          total.timeouts += outcome.timeouts;
          total.transient_errors += outcome.transient_errors;
          total.sheds += outcome.sheds;
          total.breaker_fast_fails += outcome.breaker_fast_fails;
          total.budget_denied += outcome.budget_denied;
          if (rs.ok()) {
            ++ok;
            local_latencies.push_back(outcome.last_attempt_s);
            const uint64_t ck = rs->Checksum();
            if (!local_seen[slot]) {
              local_seen[slot] = 1;
              local_checksums[slot] = ck;
            } else if (local_checksums[slot] != ck) {
              ++local_mismatches;
            }
          } else {
            ++failed;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      out.queries_ok += ok;
      out.failures += failed;
      out.attempts += total.attempts;
      out.timeouts += total.timeouts;
      out.transient_errors += total.transient_errors;
      out.sheds += total.sheds;
      out.breaker_fast_fails += total.breaker_fast_fails;
      out.budget_denied += total.budget_denied;
      out.checksum_mismatches += local_mismatches;
      for (size_t s = 0; s < workload.size(); ++s) {
        if (!local_seen[s]) continue;
        if (!slot_seen[s]) {
          slot_seen[s] = 1;
          out.slot_checksums[s] = local_checksums[s];
        } else if (out.slot_checksums[s] != local_checksums[s]) {
          ++out.checksum_mismatches;
        }
      }
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& t : threads) t.join();
  out.elapsed_s = watch.ElapsedSeconds();
  out.latency = Summarize(std::move(latencies));
  return out;
}

ScenarioResult RunScenario(client::Connection* connection,
                           const Scenario& scenario, const RunConfig& config) {
  ScenarioResult out;
  out.scenario_id = scenario.id;
  out.scenario_name = scenario.name;
  out.sut = connection->config().name;
  for (const QuerySpec& spec : scenario.queries) {
    RunResult r = RunQuery(connection, spec, config);
    if (r.ok) {
      out.total_s += r.timing.mean_s;
    } else {
      ++out.failed;
    }
    out.timeouts += r.timeouts;
    out.transient_errors += r.transient_errors;
    out.sheds += r.sheds;
    out.breaker_fast_fails += r.breaker_fast_fails;
    out.budget_denied += r.budget_denied;
    out.queries.push_back(std::move(r));
  }
  return out;
}

}  // namespace jackpine::core
