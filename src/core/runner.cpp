#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/stopwatch.h"

namespace jackpine::core {

RunResult RunQuery(client::Connection* connection, const QuerySpec& spec,
                   const RunConfig& config) {
  RunResult out;
  out.query_id = spec.id;
  out.query_name = spec.name;
  out.category = spec.category;
  out.sut = connection->config().name;

  client::Statement stmt = connection->CreateStatement();
  for (int w = 0; w < config.warmup; ++w) {
    auto rs = stmt.ExecuteQuery(spec.sql);
    if (!rs.ok()) {
      out.error = rs.status().ToString();
      return out;
    }
  }
  std::vector<double> seconds;
  for (int r = 0; r < config.repetitions; ++r) {
    Stopwatch watch;
    auto rs = stmt.ExecuteQuery(spec.sql);
    const double elapsed = watch.ElapsedSeconds();
    if (!rs.ok()) {
      out.error = rs.status().ToString();
      return out;
    }
    seconds.push_back(elapsed);
    out.result_rows = rs->RowCount();
    out.checksum = rs->Checksum();
  }
  out.timing = Summarize(std::move(seconds));
  out.ok = true;
  return out;
}

std::vector<RunResult> RunSuite(client::Connection* connection,
                                const std::vector<QuerySpec>& suite,
                                const RunConfig& config) {
  std::vector<RunResult> out;
  out.reserve(suite.size());
  for (const QuerySpec& spec : suite) {
    out.push_back(RunQuery(connection, spec, config));
  }
  return out;
}

ThroughputResult RunThroughput(client::Connection* connection,
                               const std::vector<QuerySpec>& workload,
                               int rounds) {
  ThroughputResult out;
  out.sut = connection->config().name;
  client::Statement stmt = connection->CreateStatement();
  Stopwatch watch;
  for (int round = 0; round < rounds; ++round) {
    for (const QuerySpec& spec : workload) {
      auto rs = stmt.ExecuteQuery(spec.sql);
      if (rs.ok()) {
        ++out.queries_executed;
      } else {
        ++out.errors;
      }
    }
  }
  out.elapsed_s = watch.ElapsedSeconds();
  return out;
}

ThroughputResult RunConcurrentThroughput(client::Connection* connection,
                                         const std::vector<QuerySpec>& workload,
                                         int clients, int rounds) {
  ThroughputResult out;
  out.sut = connection->config().name;
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> errors{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(std::max(clients, 1)));
  for (int t = 0; t < std::max(clients, 1); ++t) {
    threads.emplace_back([&, t]() {
      client::Statement stmt = connection->CreateStatement();
      for (int round = 0; round < rounds; ++round) {
        // Stagger start offsets so clients don't run in lockstep.
        for (size_t q = 0; q < workload.size(); ++q) {
          const QuerySpec& spec =
              workload[(q + static_cast<size_t>(t)) % workload.size()];
          auto rs = stmt.ExecuteQuery(spec.sql);
          if (rs.ok()) {
            executed.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.elapsed_s = watch.ElapsedSeconds();
  out.queries_executed = executed.load();
  out.errors = errors.load();
  return out;
}

ScenarioResult RunScenario(client::Connection* connection,
                           const Scenario& scenario, const RunConfig& config) {
  ScenarioResult out;
  out.scenario_id = scenario.id;
  out.scenario_name = scenario.name;
  out.sut = connection->config().name;
  for (const QuerySpec& spec : scenario.queries) {
    RunResult r = RunQuery(connection, spec, config);
    if (r.ok) {
      out.total_s += r.timing.mean_s;
    } else {
      ++out.failed;
    }
    out.queries.push_back(std::move(r));
  }
  return out;
}

}  // namespace jackpine::core
