// A benchmark query: one SQL statement with identity and classification.

#ifndef JACKPINE_CORE_QUERY_SPEC_H_
#define JACKPINE_CORE_QUERY_SPEC_H_

#include <string>
#include <vector>

namespace jackpine::core {

enum class QueryCategory : uint8_t {
  kTopoRelation,  // DE-9IM micro benchmark (E1)
  kAnalysis,      // spatial analysis micro benchmark (E2)
  kMacro,         // part of a macro scenario (E3)
};

const char* QueryCategoryName(QueryCategory category);

struct QuerySpec {
  std::string id;    // "T7", "A3", "geocode.5", ...
  std::string name;  // human-readable ("line intersects polygon")
  QueryCategory category = QueryCategory::kTopoRelation;
  std::string sql;
  // Free-form note: which geometry types / predicate the query exercises.
  std::string note;
};

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_QUERY_SPEC_H_
