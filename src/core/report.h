// Report rendering: the aligned text tables the bench binaries print, shaped
// like the tables and figures of the paper (rows = queries / scenarios,
// columns = systems under test).

#ifndef JACKPINE_CORE_REPORT_H_
#define JACKPINE_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/runner.h"

namespace jackpine::core {

// Cross-SUT comparison table for a suite run on several SUTs: one row per
// query, one time column per SUT, plus the result-row count (from the first
// SUT) and a marker when SUTs disagree on the checksum.
// `runs_by_sut[i]` must all cover the same query list in the same order.
std::string RenderComparisonTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut);

// One row per scenario: total time per SUT.
std::string RenderScenarioTable(
    const std::string& title,
    const std::vector<std::vector<ScenarioResult>>& scenarios_by_sut);

// Simple two-column table used by the one-off benches (label, value).
std::string RenderKeyValueTable(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& rows);

// Error taxonomy per SUT (DESIGN.md "Fault model"): one row per SUT with
// counts of succeeded/failed queries, observed timeouts, transient errors,
// server sheds, breaker fast-fails and budget-denied retries, total
// attempts (retries included), and the distinct final error codes seen, so
// a reader can tell a flaky SUT from a deterministic failure at a glance.
std::string RenderErrorTaxonomyTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut);

// Overload benchmark results: one row per SUT run with goodput, shed rate
// and the latency tail under saturation.
std::string RenderOverloadTable(const std::string& title,
                                const std::vector<OverloadResult>& results);

// Execution-stage breakdown from the per-query traces, aggregated per query
// category: where the time goes (parse/plan/exec) and how selective the
// filter-and-refine pipeline is (filter ratio = refine survivors per index
// candidate, refine ratio = survivors per refinement test). Queries whose
// trace recorded nothing (e.g. every repetition failed) still count in the
// `queries` column but contribute zeros.
std::string RenderStageBreakdownTable(const std::string& title,
                                      const std::vector<RunResult>& runs);

// Machine-readable run report. The emitted JSON has a stable schema
// (`schema_version` 1): see DESIGN.md "Observability" for the field-by-field
// contract. Checksums are emitted as hex strings since they exceed the
// double-exact integer range.
struct JsonReportInput {
  std::string title;
  // One entry per SUT, same shape as the table renderers above. Any of the
  // three sections may be empty; empty sections are emitted as [].
  std::vector<std::vector<RunResult>> runs_by_sut;
  std::vector<std::vector<ScenarioResult>> scenarios_by_sut;
  std::vector<OverloadResult> overloads;
};
std::string RenderJsonReport(const JsonReportInput& input);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_REPORT_H_
