// Report rendering: the aligned text tables the bench binaries print, shaped
// like the tables and figures of the paper (rows = queries / scenarios,
// columns = systems under test).

#ifndef JACKPINE_CORE_REPORT_H_
#define JACKPINE_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/statements.h"

namespace jackpine::core {

// Cross-SUT comparison table for a suite run on several SUTs: one row per
// query, one time column per SUT, plus the result-row count (from the first
// SUT) and a marker when SUTs disagree on the checksum.
// `runs_by_sut[i]` must all cover the same query list in the same order.
std::string RenderComparisonTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut);

// One row per scenario: total time per SUT.
std::string RenderScenarioTable(
    const std::string& title,
    const std::vector<std::vector<ScenarioResult>>& scenarios_by_sut);

// Simple two-column table used by the one-off benches (label, value).
std::string RenderKeyValueTable(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& rows);

// Error taxonomy per SUT (DESIGN.md "Fault model"): one row per SUT with
// counts of succeeded/failed queries, observed timeouts, transient errors,
// server sheds, breaker fast-fails and budget-denied retries, total
// attempts (retries included), and the distinct final error codes seen, so
// a reader can tell a flaky SUT from a deterministic failure at a glance.
std::string RenderErrorTaxonomyTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut);

// Overload benchmark results: one row per SUT run with goodput, shed rate
// and the latency tail under saturation.
std::string RenderOverloadTable(const std::string& title,
                                const std::vector<OverloadResult>& results);

// Execution-stage breakdown from the per-query traces, aggregated per query
// category: where the time goes (parse/plan/exec) and how selective the
// filter-and-refine pipeline is (filter ratio = refine survivors per index
// candidate, refine ratio = survivors per refinement test). Queries whose
// trace recorded nothing (e.g. every repetition failed) still count in the
// `queries` column but contribute zeros.
std::string RenderStageBreakdownTable(const std::string& title,
                                      const std::vector<RunResult>& runs);

// Machine-readable run report. The emitted JSON has a stable schema
// (`schema_version` 1): see DESIGN.md "Observability" for the field-by-field
// contract. Checksums are emitted as hex strings since they exceed the
// double-exact integer range.
// Durability counters for a SUT that ran with a data directory attached
// (benchmark_runner --data-dir): what recovery cost at open and what the
// WAL did during the run. Additive within schema_version 1.
struct DurabilityResult {
  std::string sut;
  uint64_t wal_bytes = 0;    // WAL file size at the end of the run
  uint64_t wal_appends = 0;  // records logged (DML on the durable path)
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints = 0;
  double recovery_s = 0.0;   // startup recovery (0 on a fresh directory)
};

// One row of the shard-scaling experiment (benchmark_runner
// --shard-scaling): the same suite driven through a jackpine:shard(...)
// router over N pinedb servers. `checksum` folds every query's
// order-independent result checksum, so checksum_match proves the N-shard
// scatter-gather returned byte-equivalent results to the baseline entry.
struct ShardScalingResult {
  std::string sut;          // router label, e.g. "shard2/pine-rtree"
  size_t shards = 0;
  double load_s = 0.0;      // dataset load through the router
  double suite_s = 0.0;     // summed suite query time
  double throughput_qps = 0.0;  // concurrent-throughput run (0 = not run)
  uint64_t checksum = 0;    // folded per-query checksums
  bool checksum_match = true;   // vs the first (baseline) entry
  double speedup = 1.0;     // baseline suite_s / this suite_s
};

// One row per shard count: suite time, speedup vs the first row, load time,
// throughput, and the checksum-equality verdict.
std::string RenderShardScalingTable(const std::string& title,
                                    const std::vector<ShardScalingResult>& results);

// One degraded-mode HA experiment (benchmark_runner --shard-degraded): a
// replicated shard cluster runs the suite plus an overload round healthy,
// then one replica is SIGKILLed and both repeat against the crippled
// cluster. checksum_match proves the failover scatter still returned
// byte-identical suite results; the goodput/p95 pairs quantify what the
// lost replica cost; the counters show how the router survived (failovers
// re-issued, hedges launched/won, replicas marked stale).
struct DegradedRunResult {
  std::string sut;               // router label, e.g. "shard2/pine-rtree"
  size_t shards = 0;
  size_t replicas = 0;           // replicas per shard
  std::string killed_endpoint;   // host:port that was killed mid-run
  double healthy_goodput_qps = 0.0;
  double degraded_goodput_qps = 0.0;
  double healthy_p95_ms = 0.0;
  double degraded_p95_ms = 0.0;
  uint64_t healthy_checksum = 0;   // folded per-query suite checksums
  uint64_t degraded_checksum = 0;
  bool checksum_match = true;
  uint64_t failovers = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t replicas_stale = 0;
};

// One row per experiment: healthy vs degraded goodput and latency tail,
// the checksum verdict, and the HA counters.
std::string RenderDegradedTable(const std::string& title,
                                const std::vector<DegradedRunResult>& results);

// One cache on/off overload experiment (benchmark_runner --cache-overload):
// the same seeded Zipf-skewed overload run against a pinedb server with the
// result cache on and again with --cache-off. checksum_match proves cached
// replies are bit-identical per workload slot to engine executions; the
// goodput/p95 pairs quantify the win; the cache counters come from the
// cache-on server (exact, per-server).
struct CacheOverloadResult {
  std::string sut;
  int clients = 0;
  int rounds = 0;
  double zipf_s = 0.0;
  double on_goodput_qps = 0.0;
  double off_goodput_qps = 0.0;
  double on_p95_ms = 0.0;
  double off_p95_ms = 0.0;
  uint64_t on_checksum = 0;   // folded per-slot checksums, cache on
  uint64_t off_checksum = 0;  // folded per-slot checksums, cache off
  bool checksum_match = true;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t rejections = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t coalesced = 0;
  uint64_t bytes = 0;  // resident cache bytes at the end of the run
  double hit_rate = 0.0;
};

// One row per experiment: cache-on vs cache-off goodput and p95, speedup,
// hit rate, coalesced count and the checksum verdict.
std::string RenderCacheOverloadTable(
    const std::string& title, const std::vector<CacheOverloadResult>& results);

// Harness-side per-fingerprint statement statistics (DESIGN.md
// "Observability"): the runner's RunConfig::statement_stats tallies,
// ordered most-called first, cut to the top K rows (0 = all). The same
// fingerprint identity a pinedb server's /statements endpoint reports, so
// the harness table and the server scrape cross-check row for row.
std::string RenderStatementsTable(
    const std::string& title,
    const std::vector<obs::StatementStats::Row>& rows, size_t top_k = 0);

struct JsonReportInput {
  std::string title;
  // One entry per SUT, same shape as the table renderers above. Any of the
  // sections may be empty; empty sections are emitted as [].
  std::vector<std::vector<RunResult>> runs_by_sut;
  std::vector<std::vector<ScenarioResult>> scenarios_by_sut;
  std::vector<OverloadResult> overloads;
  std::vector<DurabilityResult> durability;
  std::vector<ShardScalingResult> shard_scaling;
  std::vector<DegradedRunResult> degraded;
  std::vector<CacheOverloadResult> cache;
  // Additive within schema_version 1: the harness-side fingerprint
  // statistics ("statements" section), already cut to the caller's top K.
  std::vector<obs::StatementStats::Row> statements;
};
std::string RenderJsonReport(const JsonReportInput& input);

}  // namespace jackpine::core

#endif  // JACKPINE_CORE_REPORT_H_
