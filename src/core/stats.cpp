#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jackpine::core {

TimingStats Summarize(std::vector<double> seconds) {
  TimingStats s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  s.count = seconds.size();
  for (double v : seconds) s.total_s += v;
  s.mean_s = s.total_s / static_cast<double>(s.count);
  s.min_s = seconds.front();
  s.max_s = seconds.back();
  auto quantile = [&seconds](double q) {
    const double pos = q * static_cast<double>(seconds.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, seconds.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return seconds[lo] * (1.0 - frac) + seconds[hi] * frac;
  };
  s.p50_s = quantile(0.50);
  s.p95_s = quantile(0.95);
  s.p99_s = quantile(0.99);
  double var = 0.0;
  for (double v : seconds) var += (v - s.mean_s) * (v - s.mean_s);
  s.stddev_s = std::sqrt(var / static_cast<double>(s.count));
  // Bin into the registry's standard latency buckets (le semantics: a
  // sample lands in the first bucket whose bound is >= it; the overflow
  // slot catches the rest). The samples are sorted, so upper_bound walks
  // monotonically.
  s.hist_bounds_s = obs::Histogram::DefaultLatencyBounds();
  s.hist_counts.assign(s.hist_bounds_s.size() + 1, 0);
  for (double v : seconds) {
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(s.hist_bounds_s.begin(), s.hist_bounds_s.end(), v) -
        s.hist_bounds_s.begin());
    ++s.hist_counts[bucket];
  }
  return s;
}

std::string TimingStats::ToString() const {
  return StrFormat("mean %.3fms (p50 %.3f, p95 %.3f, p99 %.3f, n=%zu)",
                   mean_s * 1e3, p50_s * 1e3, p95_s * 1e3, p99_s * 1e3, count);
}

}  // namespace jackpine::core
