#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/json.h"

namespace jackpine::core {

namespace {

std::string FormatMs(double seconds) { return StrFormat("%.3f", seconds * 1e3); }

// Renders a grid of cells with left-aligned first column and right-aligned
// data columns.
std::string RenderGrid(const std::string& title,
                       const std::vector<std::vector<std::string>>& grid) {
  std::vector<size_t> widths;
  for (const auto& row : grid) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  out += "== " + title + " ==\n";
  for (size_t r = 0; r < grid.size(); ++r) {
    const auto& row = grid[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        out += StrFormat("%-*s", static_cast<int>(widths[c]), row[c].c_str());
      } else {
        out += StrFormat("  %*s", static_cast<int>(widths[c]), row[c].c_str());
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      out += std::string(total, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace

std::string RenderComparisonTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut) {
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header = {"query"};
  for (const auto& runs : runs_by_sut) {
    header.push_back(runs.empty() ? "?" : runs.front().sut + " (ms)");
  }
  header.push_back("rows");
  header.push_back("agree");
  grid.push_back(header);

  const size_t n_queries = runs_by_sut.empty() ? 0 : runs_by_sut[0].size();
  for (size_t q = 0; q < n_queries; ++q) {
    std::vector<std::string> row;
    row.push_back(runs_by_sut[0][q].query_id + " " +
                  runs_by_sut[0][q].query_name);
    bool all_ok = true;
    for (const auto& runs : runs_by_sut) {
      const RunResult& r = runs[q];
      if (r.ok) {
        row.push_back(FormatMs(r.timing.mean_s));
      } else {
        row.push_back("ERR");
        all_ok = false;
      }
    }
    row.push_back(StrFormat("%zu", runs_by_sut[0][q].result_rows));
    // Checksum agreement across the exact SUTs; pine-mbr legitimately
    // diverges, so it is compared but flagged with '~' instead of '!'.
    bool agree = true;
    bool mbr_only_diff = true;
    for (const auto& runs : runs_by_sut) {
      if (!runs[q].ok) continue;
      if (runs[q].checksum != runs_by_sut[0][q].checksum ||
          runs[q].result_rows != runs_by_sut[0][q].result_rows) {
        agree = false;
        if (runs[q].sut != "pine-mbr" && runs_by_sut[0][q].sut != "pine-mbr") {
          mbr_only_diff = false;
        }
      }
    }
    if (!all_ok) {
      row.push_back("err");
    } else if (agree) {
      row.push_back("yes");
    } else {
      row.push_back(mbr_only_diff ? "~mbr" : "NO");
    }
    grid.push_back(std::move(row));
  }
  return RenderGrid(title, grid);
}

std::string RenderScenarioTable(
    const std::string& title,
    const std::vector<std::vector<ScenarioResult>>& scenarios_by_sut) {
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header = {"scenario"};
  for (const auto& list : scenarios_by_sut) {
    header.push_back(list.empty() ? "?" : list.front().sut + " (ms)");
  }
  header.push_back("queries");
  grid.push_back(header);
  const size_t n = scenarios_by_sut.empty() ? 0 : scenarios_by_sut[0].size();
  for (size_t s = 0; s < n; ++s) {
    std::vector<std::string> row;
    row.push_back(scenarios_by_sut[0][s].scenario_name);
    for (const auto& list : scenarios_by_sut) {
      const ScenarioResult& r = list[s];
      std::string cell = FormatMs(r.total_s);
      if (r.failed > 0) cell += StrFormat(" (%zu ERR)", r.failed);
      row.push_back(std::move(cell));
    }
    row.push_back(StrFormat("%zu", scenarios_by_sut[0][s].queries.size()));
    grid.push_back(std::move(row));
  }
  return RenderGrid(title, grid);
}

std::string RenderErrorTaxonomyTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "queries", "ok", "failed", "timeouts", "transient",
                  "sheds", "breaker", "budget", "attempts", "final errors"});
  for (const auto& runs : runs_by_sut) {
    size_t ok = 0, failed = 0, timeouts = 0, transients = 0, attempts = 0;
    size_t sheds = 0, fast_fails = 0, denied = 0;
    // Distinct final error codes, in first-seen order, with counts.
    std::vector<std::pair<StatusCode, size_t>> codes;
    for (const RunResult& r : runs) {
      (r.ok ? ok : failed)++;
      timeouts += r.timeouts;
      transients += r.transient_errors;
      sheds += r.sheds;
      fast_fails += r.breaker_fast_fails;
      denied += r.budget_denied;
      attempts += r.attempts;
      if (!r.ok) {
        auto it = std::find_if(codes.begin(), codes.end(), [&](const auto& p) {
          return p.first == r.error_code;
        });
        if (it == codes.end()) {
          codes.emplace_back(r.error_code, 1);
        } else {
          ++it->second;
        }
      }
    }
    std::string code_summary = "-";
    for (const auto& [code, count] : codes) {
      if (code_summary == "-") code_summary.clear();
      if (!code_summary.empty()) code_summary += ", ";
      code_summary += StrFormat("%s x%zu", StatusCodeName(code), count);
    }
    grid.push_back({runs.empty() ? "?" : runs.front().sut,
                    StrFormat("%zu", runs.size()), StrFormat("%zu", ok),
                    StrFormat("%zu", failed), StrFormat("%zu", timeouts),
                    StrFormat("%zu", transients), StrFormat("%zu", sheds),
                    StrFormat("%zu", fast_fails), StrFormat("%zu", denied),
                    StrFormat("%zu", attempts), code_summary});
  }
  return RenderGrid(title, grid);
}

std::string RenderOverloadTable(const std::string& title,
                                const std::vector<OverloadResult>& results) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "clients", "ok", "failed", "goodput (q/s)",
                  "shed rate", "sheds", "breaker", "budget", "timeouts",
                  "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"});
  for (const OverloadResult& r : results) {
    grid.push_back({r.sut, StrFormat("%d", r.clients),
                    StrFormat("%zu", r.queries_ok),
                    StrFormat("%zu", r.failures),
                    StrFormat("%.1f", r.GoodputQps()),
                    StrFormat("%.1f%%", r.ShedRate() * 100.0),
                    StrFormat("%zu", r.sheds),
                    StrFormat("%zu", r.breaker_fast_fails),
                    StrFormat("%zu", r.budget_denied),
                    StrFormat("%zu", r.timeouts),
                    FormatMs(r.latency.p50_s), FormatMs(r.latency.p95_s),
                    FormatMs(r.latency.p99_s), FormatMs(r.latency.max_s)});
  }
  return RenderGrid(title, grid);
}

std::string RenderKeyValueTable(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"metric", "value"});
  for (const auto& [key, value] : rows) grid.push_back({key, value});
  return RenderGrid(title, grid);
}

std::string RenderStageBreakdownTable(const std::string& title,
                                      const std::vector<RunResult>& runs) {
  // Aggregate per category, in enum order, skipping empty categories.
  struct Bucket {
    size_t queries = 0;
    obs::QueryTrace trace;
  };
  constexpr QueryCategory kCategories[] = {QueryCategory::kTopoRelation,
                                           QueryCategory::kAnalysis,
                                           QueryCategory::kMacro};
  Bucket buckets[3];
  for (const RunResult& r : runs) {
    Bucket& b = buckets[static_cast<size_t>(r.category)];
    ++b.queries;
    b.trace += r.trace;
  }
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"category", "queries", "candidates", "refined", "survivors",
                  "filter", "refine", "parse (ms)", "plan (ms)", "exec (ms)"});
  for (QueryCategory category : kCategories) {
    const Bucket& b = buckets[static_cast<size_t>(category)];
    if (b.queries == 0) continue;
    const obs::QueryTrace& t = b.trace;
    grid.push_back(
        {QueryCategoryName(category), StrFormat("%zu", b.queries),
         StrFormat("%llu", static_cast<unsigned long long>(t.index_candidates)),
         StrFormat("%llu", static_cast<unsigned long long>(t.refine_checks)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(t.refine_survivors)),
         StrFormat("%.1f%%", t.FilterRatio() * 100.0),
         StrFormat("%.1f%%", t.RefineRatio() * 100.0), FormatMs(t.parse_s),
         FormatMs(t.plan_s), FormatMs(t.exec_s)});
  }
  return RenderGrid(title, grid);
}

std::string RenderShardScalingTable(
    const std::string& title, const std::vector<ShardScalingResult>& results) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "shards", "load (ms)", "suite (ms)", "speedup",
                  "throughput (q/s)", "checksum", "match"});
  for (const ShardScalingResult& r : results) {
    grid.push_back(
        {r.sut, StrFormat("%zu", r.shards), FormatMs(r.load_s),
         FormatMs(r.suite_s), StrFormat("%.2fx", r.speedup),
         r.throughput_qps > 0.0 ? StrFormat("%.0f", r.throughput_qps) : "-",
         StrFormat("%016llx", static_cast<unsigned long long>(r.checksum)),
         r.checksum_match ? "yes" : "MISMATCH"});
  }
  return RenderGrid(title, grid);
}

std::string RenderStatementsTable(
    const std::string& title,
    const std::vector<obs::StatementStats::Row>& rows, size_t top_k) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"calls", "errors", "mean (ms)", "p95 (ms)", "total (ms)",
                  "rows", "hits", "fingerprint"});
  const size_t limit =
      top_k == 0 ? rows.size() : std::min(top_k, rows.size());
  for (size_t i = 0; i < limit; ++i) {
    const obs::StatementStats::Row& r = rows[i];
    const double mean_s =
        r.calls > 0 ? r.latency.sum / static_cast<double>(r.calls) : 0.0;
    grid.push_back(
        {StrFormat("%llu", static_cast<unsigned long long>(r.calls)),
         StrFormat("%llu", static_cast<unsigned long long>(r.errors)),
         StrFormat("%.3f", mean_s * 1e3),
         StrFormat("%.3f", r.latency.Quantile(0.95) * 1e3),
         StrFormat("%.3f", r.latency.sum * 1e3),
         StrFormat("%llu", static_cast<unsigned long long>(r.rows_returned)),
         StrFormat("%llu", static_cast<unsigned long long>(r.cache_hits)),
         r.fingerprint});
  }
  if (limit < rows.size()) {
    // No silent caps: say how much of the tail the cut dropped.
    grid.push_back({"...", "", "", "", "", "", "",
                    StrFormat("(+%zu more fingerprints)",
                              rows.size() - limit)});
  }
  return RenderGrid(title, grid);
}

std::string RenderDegradedTable(const std::string& title,
                                const std::vector<DegradedRunResult>& results) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "shards", "replicas", "killed", "goodput (q/s)",
                  "degraded (q/s)", "p95 (ms)", "degraded p95 (ms)",
                  "failovers", "hedges", "match"});
  for (const DegradedRunResult& r : results) {
    grid.push_back(
        {r.sut, StrFormat("%zu", r.shards), StrFormat("%zu", r.replicas),
         r.killed_endpoint, StrFormat("%.0f", r.healthy_goodput_qps),
         StrFormat("%.0f", r.degraded_goodput_qps),
         StrFormat("%.2f", r.healthy_p95_ms),
         StrFormat("%.2f", r.degraded_p95_ms),
         StrFormat("%llu", static_cast<unsigned long long>(r.failovers)),
         StrFormat("%llu/%llu won",
                   static_cast<unsigned long long>(r.hedges),
                   static_cast<unsigned long long>(r.hedge_wins)),
         r.checksum_match ? "yes" : "MISMATCH"});
  }
  return RenderGrid(title, grid);
}

std::string RenderCacheOverloadTable(
    const std::string& title, const std::vector<CacheOverloadResult>& results) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "clients", "zipf", "goodput on/off (q/s)", "speedup",
                  "p95 on/off (ms)", "hit rate", "coalesced", "match"});
  for (const CacheOverloadResult& r : results) {
    const double speedup = r.off_goodput_qps > 0.0
                               ? r.on_goodput_qps / r.off_goodput_qps
                               : 0.0;
    grid.push_back(
        {r.sut, StrFormat("%d", r.clients), StrFormat("%.2f", r.zipf_s),
         StrFormat("%.0f / %.0f", r.on_goodput_qps, r.off_goodput_qps),
         StrFormat("%.2fx", speedup),
         StrFormat("%.2f / %.2f", r.on_p95_ms, r.off_p95_ms),
         StrFormat("%.1f%%", r.hit_rate * 100.0),
         StrFormat("%llu", static_cast<unsigned long long>(r.coalesced)),
         r.checksum_match ? "yes" : "MISMATCH"});
  }
  return RenderGrid(title, grid);
}

namespace {

obs::Json TimingToJson(const TimingStats& t) {
  obs::Json o = obs::Json::Object();
  o.Set("count", obs::Json::Int(static_cast<int64_t>(t.count)));
  o.Set("total_s", obs::Json::Number(t.total_s));
  o.Set("mean_s", obs::Json::Number(t.mean_s));
  o.Set("min_s", obs::Json::Number(t.min_s));
  o.Set("max_s", obs::Json::Number(t.max_s));
  o.Set("p50_s", obs::Json::Number(t.p50_s));
  o.Set("p95_s", obs::Json::Number(t.p95_s));
  o.Set("p99_s", obs::Json::Number(t.p99_s));
  o.Set("stddev_s", obs::Json::Number(t.stddev_s));
  // Additive within schema_version 1 (DESIGN.md "Observability"): bucket
  // upper bounds plus per-bucket counts, with one overflow slot beyond the
  // last bound. Absent (empty arrays) when the timing had no samples.
  if (!t.hist_bounds_s.empty()) {
    obs::Json bounds = obs::Json::Array();
    for (double b : t.hist_bounds_s) bounds.Append(obs::Json::Number(b));
    obs::Json counts = obs::Json::Array();
    for (uint64_t c : t.hist_counts) {
      counts.Append(obs::Json::Int(static_cast<int64_t>(c)));
    }
    o.Set("hist_bounds_s", std::move(bounds));
    o.Set("hist_counts", std::move(counts));
  }
  return o;
}

obs::Json TraceToJson(const obs::QueryTrace& trace) {
  obs::Json o = obs::Json::Object();
  for (const auto& [name, value] : trace.ToEntries()) {
    o.Set(name, obs::Json::Number(value));
  }
  return o;
}

obs::Json RunResultToJson(const RunResult& r) {
  obs::Json o = obs::Json::Object();
  o.Set("id", obs::Json::Str(r.query_id));
  o.Set("name", obs::Json::Str(r.query_name));
  o.Set("category", obs::Json::Str(QueryCategoryName(r.category)));
  o.Set("ok", obs::Json::Bool(r.ok));
  if (!r.ok) {
    o.Set("error", obs::Json::Str(r.error));
    o.Set("error_code", obs::Json::Str(StatusCodeName(r.error_code)));
  }
  o.Set("rows", obs::Json::Int(static_cast<int64_t>(r.result_rows)));
  // Hex string: checksums use the full 64-bit range, beyond double-exact.
  o.Set("checksum", obs::Json::Str(StrFormat(
                        "%016llx", static_cast<unsigned long long>(r.checksum))));
  o.Set("timing", TimingToJson(r.timing));
  o.Set("attempts", obs::Json::Int(static_cast<int64_t>(r.attempts)));
  o.Set("timeouts", obs::Json::Int(static_cast<int64_t>(r.timeouts)));
  o.Set("transient_errors",
        obs::Json::Int(static_cast<int64_t>(r.transient_errors)));
  o.Set("sheds", obs::Json::Int(static_cast<int64_t>(r.sheds)));
  o.Set("breaker_fast_fails",
        obs::Json::Int(static_cast<int64_t>(r.breaker_fast_fails)));
  o.Set("budget_denied", obs::Json::Int(static_cast<int64_t>(r.budget_denied)));
  o.Set("trace", TraceToJson(r.trace));
  return o;
}

obs::Json ScenarioResultToJson(const ScenarioResult& s) {
  obs::Json o = obs::Json::Object();
  o.Set("id", obs::Json::Str(s.scenario_id));
  o.Set("name", obs::Json::Str(s.scenario_name));
  o.Set("total_s", obs::Json::Number(s.total_s));
  o.Set("failed", obs::Json::Int(static_cast<int64_t>(s.failed)));
  obs::Json& queries = o.Set("queries", obs::Json::Array());
  for (const RunResult& r : s.queries) queries.Append(RunResultToJson(r));
  return o;
}

obs::Json OverloadResultToJson(const OverloadResult& r) {
  obs::Json o = obs::Json::Object();
  o.Set("sut", obs::Json::Str(r.sut));
  o.Set("clients", obs::Json::Int(r.clients));
  o.Set("rounds", obs::Json::Int(r.rounds));
  o.Set("queries_ok", obs::Json::Int(static_cast<int64_t>(r.queries_ok)));
  o.Set("failures", obs::Json::Int(static_cast<int64_t>(r.failures)));
  o.Set("attempts", obs::Json::Int(static_cast<int64_t>(r.attempts)));
  o.Set("sheds", obs::Json::Int(static_cast<int64_t>(r.sheds)));
  o.Set("timeouts", obs::Json::Int(static_cast<int64_t>(r.timeouts)));
  o.Set("transient_errors",
        obs::Json::Int(static_cast<int64_t>(r.transient_errors)));
  o.Set("breaker_fast_fails",
        obs::Json::Int(static_cast<int64_t>(r.breaker_fast_fails)));
  o.Set("budget_denied", obs::Json::Int(static_cast<int64_t>(r.budget_denied)));
  o.Set("elapsed_s", obs::Json::Number(r.elapsed_s));
  o.Set("goodput_qps", obs::Json::Number(r.GoodputQps()));
  o.Set("shed_rate", obs::Json::Number(r.ShedRate()));
  o.Set("latency", TimingToJson(r.latency));
  return o;
}

}  // namespace

std::string RenderJsonReport(const JsonReportInput& input) {
  obs::Json root = obs::Json::Object();
  root.Set("schema_version", obs::Json::Int(1));
  root.Set("title", obs::Json::Str(input.title));
  obs::Json& suts = root.Set("suts", obs::Json::Array());
  for (const auto& runs : input.runs_by_sut) {
    obs::Json& sut = suts.Append(obs::Json::Object());
    sut.Set("name", obs::Json::Str(runs.empty() ? "?" : runs.front().sut));
    obs::Json& queries = sut.Set("queries", obs::Json::Array());
    for (const RunResult& r : runs) queries.Append(RunResultToJson(r));
  }
  obs::Json& scenarios = root.Set("scenarios", obs::Json::Array());
  for (const auto& list : input.scenarios_by_sut) {
    obs::Json& sut = scenarios.Append(obs::Json::Object());
    sut.Set("name", obs::Json::Str(list.empty() ? "?" : list.front().sut));
    obs::Json& entries = sut.Set("scenarios", obs::Json::Array());
    for (const ScenarioResult& s : list) entries.Append(ScenarioResultToJson(s));
  }
  obs::Json& overload = root.Set("overload", obs::Json::Array());
  for (const OverloadResult& r : input.overloads) {
    overload.Append(OverloadResultToJson(r));
  }
  // Additive within schema_version 1: present only for --data-dir runs.
  obs::Json& durability = root.Set("durability", obs::Json::Array());
  for (const DurabilityResult& d : input.durability) {
    obs::Json& entry = durability.Append(obs::Json::Object());
    entry.Set("sut", obs::Json::Str(d.sut));
    entry.Set("wal_bytes", obs::Json::Int(static_cast<int64_t>(d.wal_bytes)));
    entry.Set("wal_appends",
              obs::Json::Int(static_cast<int64_t>(d.wal_appends)));
    entry.Set("wal_fsyncs",
              obs::Json::Int(static_cast<int64_t>(d.wal_fsyncs)));
    entry.Set("checkpoints",
              obs::Json::Int(static_cast<int64_t>(d.checkpoints)));
    entry.Set("recovery_ms", obs::Json::Number(d.recovery_s * 1e3));
  }
  // Additive within schema_version 1: present only for --shard-scaling runs.
  obs::Json& scaling = root.Set("shard_scaling", obs::Json::Array());
  for (const ShardScalingResult& r : input.shard_scaling) {
    obs::Json& entry = scaling.Append(obs::Json::Object());
    entry.Set("sut", obs::Json::Str(r.sut));
    entry.Set("shards", obs::Json::Int(static_cast<int64_t>(r.shards)));
    entry.Set("load_s", obs::Json::Number(r.load_s));
    entry.Set("suite_s", obs::Json::Number(r.suite_s));
    entry.Set("throughput_qps", obs::Json::Number(r.throughput_qps));
    entry.Set("checksum", obs::Json::Str(StrFormat(
                  "%016llx", static_cast<unsigned long long>(r.checksum))));
    entry.Set("checksum_match", obs::Json::Bool(r.checksum_match));
    entry.Set("speedup", obs::Json::Number(r.speedup));
  }
  // Additive within schema_version 1: present only for --shard-degraded runs.
  obs::Json& degraded = root.Set("degraded", obs::Json::Array());
  for (const DegradedRunResult& r : input.degraded) {
    obs::Json& entry = degraded.Append(obs::Json::Object());
    entry.Set("sut", obs::Json::Str(r.sut));
    entry.Set("shards", obs::Json::Int(static_cast<int64_t>(r.shards)));
    entry.Set("replicas", obs::Json::Int(static_cast<int64_t>(r.replicas)));
    entry.Set("killed_endpoint", obs::Json::Str(r.killed_endpoint));
    entry.Set("healthy_goodput_qps",
              obs::Json::Number(r.healthy_goodput_qps));
    entry.Set("degraded_goodput_qps",
              obs::Json::Number(r.degraded_goodput_qps));
    entry.Set("healthy_p95_ms", obs::Json::Number(r.healthy_p95_ms));
    entry.Set("degraded_p95_ms", obs::Json::Number(r.degraded_p95_ms));
    entry.Set("healthy_checksum",
              obs::Json::Str(StrFormat(
                  "%016llx",
                  static_cast<unsigned long long>(r.healthy_checksum))));
    entry.Set("degraded_checksum",
              obs::Json::Str(StrFormat(
                  "%016llx",
                  static_cast<unsigned long long>(r.degraded_checksum))));
    entry.Set("checksum_match", obs::Json::Bool(r.checksum_match));
    entry.Set("failovers", obs::Json::Int(static_cast<int64_t>(r.failovers)));
    entry.Set("hedges", obs::Json::Int(static_cast<int64_t>(r.hedges)));
    entry.Set("hedge_wins",
              obs::Json::Int(static_cast<int64_t>(r.hedge_wins)));
    entry.Set("replicas_stale",
              obs::Json::Int(static_cast<int64_t>(r.replicas_stale)));
  }
  // Additive within schema_version 1: present only for --cache-overload runs.
  obs::Json& cache = root.Set("cache", obs::Json::Array());
  for (const CacheOverloadResult& r : input.cache) {
    obs::Json& entry = cache.Append(obs::Json::Object());
    entry.Set("sut", obs::Json::Str(r.sut));
    entry.Set("clients", obs::Json::Int(r.clients));
    entry.Set("rounds", obs::Json::Int(r.rounds));
    entry.Set("zipf_s", obs::Json::Number(r.zipf_s));
    entry.Set("on_goodput_qps", obs::Json::Number(r.on_goodput_qps));
    entry.Set("off_goodput_qps", obs::Json::Number(r.off_goodput_qps));
    entry.Set("on_p95_ms", obs::Json::Number(r.on_p95_ms));
    entry.Set("off_p95_ms", obs::Json::Number(r.off_p95_ms));
    entry.Set("on_checksum",
              obs::Json::Str(StrFormat(
                  "%016llx", static_cast<unsigned long long>(r.on_checksum))));
    entry.Set("off_checksum",
              obs::Json::Str(StrFormat(
                  "%016llx",
                  static_cast<unsigned long long>(r.off_checksum))));
    entry.Set("checksum_match", obs::Json::Bool(r.checksum_match));
    entry.Set("hits", obs::Json::Int(static_cast<int64_t>(r.hits)));
    entry.Set("misses", obs::Json::Int(static_cast<int64_t>(r.misses)));
    entry.Set("admissions",
              obs::Json::Int(static_cast<int64_t>(r.admissions)));
    entry.Set("rejections",
              obs::Json::Int(static_cast<int64_t>(r.rejections)));
    entry.Set("evictions", obs::Json::Int(static_cast<int64_t>(r.evictions)));
    entry.Set("invalidations",
              obs::Json::Int(static_cast<int64_t>(r.invalidations)));
    entry.Set("coalesced", obs::Json::Int(static_cast<int64_t>(r.coalesced)));
    entry.Set("bytes", obs::Json::Int(static_cast<int64_t>(r.bytes)));
    entry.Set("hit_rate", obs::Json::Number(r.hit_rate));
  }
  // Additive within schema_version 1: harness-side fingerprint statistics,
  // same row shape as a server's /statements document.
  root.Set("statements", obs::StatementStats::RowsToJson(input.statements));
  return root.Dump(/*pretty=*/true);
}

}  // namespace jackpine::core
