#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace jackpine::core {

namespace {

std::string FormatMs(double seconds) { return StrFormat("%.3f", seconds * 1e3); }

// Renders a grid of cells with left-aligned first column and right-aligned
// data columns.
std::string RenderGrid(const std::string& title,
                       const std::vector<std::vector<std::string>>& grid) {
  std::vector<size_t> widths;
  for (const auto& row : grid) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  out += "== " + title + " ==\n";
  for (size_t r = 0; r < grid.size(); ++r) {
    const auto& row = grid[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        out += StrFormat("%-*s", static_cast<int>(widths[c]), row[c].c_str());
      } else {
        out += StrFormat("  %*s", static_cast<int>(widths[c]), row[c].c_str());
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      out += std::string(total, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace

std::string RenderComparisonTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut) {
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header = {"query"};
  for (const auto& runs : runs_by_sut) {
    header.push_back(runs.empty() ? "?" : runs.front().sut + " (ms)");
  }
  header.push_back("rows");
  header.push_back("agree");
  grid.push_back(header);

  const size_t n_queries = runs_by_sut.empty() ? 0 : runs_by_sut[0].size();
  for (size_t q = 0; q < n_queries; ++q) {
    std::vector<std::string> row;
    row.push_back(runs_by_sut[0][q].query_id + " " +
                  runs_by_sut[0][q].query_name);
    bool all_ok = true;
    for (const auto& runs : runs_by_sut) {
      const RunResult& r = runs[q];
      if (r.ok) {
        row.push_back(FormatMs(r.timing.mean_s));
      } else {
        row.push_back("ERR");
        all_ok = false;
      }
    }
    row.push_back(StrFormat("%zu", runs_by_sut[0][q].result_rows));
    // Checksum agreement across the exact SUTs; pine-mbr legitimately
    // diverges, so it is compared but flagged with '~' instead of '!'.
    bool agree = true;
    bool mbr_only_diff = true;
    for (const auto& runs : runs_by_sut) {
      if (!runs[q].ok) continue;
      if (runs[q].checksum != runs_by_sut[0][q].checksum ||
          runs[q].result_rows != runs_by_sut[0][q].result_rows) {
        agree = false;
        if (runs[q].sut != "pine-mbr" && runs_by_sut[0][q].sut != "pine-mbr") {
          mbr_only_diff = false;
        }
      }
    }
    if (!all_ok) {
      row.push_back("err");
    } else if (agree) {
      row.push_back("yes");
    } else {
      row.push_back(mbr_only_diff ? "~mbr" : "NO");
    }
    grid.push_back(std::move(row));
  }
  return RenderGrid(title, grid);
}

std::string RenderScenarioTable(
    const std::string& title,
    const std::vector<std::vector<ScenarioResult>>& scenarios_by_sut) {
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header = {"scenario"};
  for (const auto& list : scenarios_by_sut) {
    header.push_back(list.empty() ? "?" : list.front().sut + " (ms)");
  }
  header.push_back("queries");
  grid.push_back(header);
  const size_t n = scenarios_by_sut.empty() ? 0 : scenarios_by_sut[0].size();
  for (size_t s = 0; s < n; ++s) {
    std::vector<std::string> row;
    row.push_back(scenarios_by_sut[0][s].scenario_name);
    for (const auto& list : scenarios_by_sut) {
      const ScenarioResult& r = list[s];
      std::string cell = FormatMs(r.total_s);
      if (r.failed > 0) cell += StrFormat(" (%zu ERR)", r.failed);
      row.push_back(std::move(cell));
    }
    row.push_back(StrFormat("%zu", scenarios_by_sut[0][s].queries.size()));
    grid.push_back(std::move(row));
  }
  return RenderGrid(title, grid);
}

std::string RenderErrorTaxonomyTable(
    const std::string& title,
    const std::vector<std::vector<RunResult>>& runs_by_sut) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "queries", "ok", "failed", "timeouts", "transient",
                  "sheds", "breaker", "budget", "attempts", "final errors"});
  for (const auto& runs : runs_by_sut) {
    size_t ok = 0, failed = 0, timeouts = 0, transients = 0, attempts = 0;
    size_t sheds = 0, fast_fails = 0, denied = 0;
    // Distinct final error codes, in first-seen order, with counts.
    std::vector<std::pair<StatusCode, size_t>> codes;
    for (const RunResult& r : runs) {
      (r.ok ? ok : failed)++;
      timeouts += r.timeouts;
      transients += r.transient_errors;
      sheds += r.sheds;
      fast_fails += r.breaker_fast_fails;
      denied += r.budget_denied;
      attempts += r.attempts;
      if (!r.ok) {
        auto it = std::find_if(codes.begin(), codes.end(), [&](const auto& p) {
          return p.first == r.error_code;
        });
        if (it == codes.end()) {
          codes.emplace_back(r.error_code, 1);
        } else {
          ++it->second;
        }
      }
    }
    std::string code_summary = "-";
    for (const auto& [code, count] : codes) {
      if (code_summary == "-") code_summary.clear();
      if (!code_summary.empty()) code_summary += ", ";
      code_summary += StrFormat("%s x%zu", StatusCodeName(code), count);
    }
    grid.push_back({runs.empty() ? "?" : runs.front().sut,
                    StrFormat("%zu", runs.size()), StrFormat("%zu", ok),
                    StrFormat("%zu", failed), StrFormat("%zu", timeouts),
                    StrFormat("%zu", transients), StrFormat("%zu", sheds),
                    StrFormat("%zu", fast_fails), StrFormat("%zu", denied),
                    StrFormat("%zu", attempts), code_summary});
  }
  return RenderGrid(title, grid);
}

std::string RenderOverloadTable(const std::string& title,
                                const std::vector<OverloadResult>& results) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"sut", "clients", "ok", "failed", "goodput (q/s)",
                  "shed rate", "sheds", "breaker", "budget", "timeouts",
                  "p50 (ms)", "p95 (ms)", "max (ms)"});
  for (const OverloadResult& r : results) {
    grid.push_back({r.sut, StrFormat("%d", r.clients),
                    StrFormat("%zu", r.queries_ok),
                    StrFormat("%zu", r.failures),
                    StrFormat("%.1f", r.GoodputQps()),
                    StrFormat("%.1f%%", r.ShedRate() * 100.0),
                    StrFormat("%zu", r.sheds),
                    StrFormat("%zu", r.breaker_fast_fails),
                    StrFormat("%zu", r.budget_denied),
                    StrFormat("%zu", r.timeouts),
                    FormatMs(r.latency.p50_s), FormatMs(r.latency.p95_s),
                    FormatMs(r.latency.max_s)});
  }
  return RenderGrid(title, grid);
}

std::string RenderKeyValueTable(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::vector<std::vector<std::string>> grid;
  grid.push_back({"metric", "value"});
  for (const auto& [key, value] : rows) grid.push_back({key, value});
  return RenderGrid(title, grid);
}

}  // namespace jackpine::core
