// Count–min frequency sketch for TinyLFU admission (DESIGN.md "Result
// cache & coalescing").
//
// The cache needs an answer to one question at admission time: "is the
// candidate entry accessed more often than the eviction victim?" — without
// keeping a frequency counter per key ever seen (the key space is unbounded:
// every distinct SQL text is a key). The classic TinyLFU answer is a
// count–min sketch of 8-bit counters with periodic halving: Record() bumps
// one counter per hash row, Estimate() reads the minimum across rows (an
// upper bound on the true count, biased low-error for hot keys), and once
// the total number of recorded accesses reaches `sample_period` every
// counter is halved. The halving is what makes the sketch an *aging*
// frequency estimate — a key that was hot an hour ago but is cold now decays
// toward zero instead of squatting on its historical popularity.

#ifndef JACKPINE_CACHE_FREQUENCY_SKETCH_H_
#define JACKPINE_CACHE_FREQUENCY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jackpine::cache {

class FrequencySketch {
 public:
  // `width` is rounded up to a power of two (minimum 64 slots per row).
  // `sample_period` of 0 picks the conventional 10x width.
  explicit FrequencySketch(size_t width, uint64_t sample_period = 0);

  // Records one access for `hash`. O(kRows) relaxed work under the caller's
  // lock (the cache serialises sketch access with its own mutex).
  void Record(uint64_t hash);

  // Estimated access frequency of `hash` in the current sample window.
  uint32_t Estimate(uint64_t hash) const;

  uint64_t sample_count() const { return samples_; }
  uint64_t halvings() const { return halvings_; }

 private:
  static constexpr int kRows = 4;

  size_t Slot(uint64_t hash, int row) const;
  void Halve();

  size_t width_;       // power of two
  uint64_t mask_;      // width_ - 1
  uint64_t period_;    // halve after this many Record() calls
  uint64_t samples_ = 0;
  uint64_t halvings_ = 0;
  std::vector<uint8_t> counters_;  // kRows * width_
};

// 64-bit mix used for cache-key hashing (splitmix64 finaliser). Exposed so
// the cache and the sketch agree on the hash of a key string.
uint64_t HashKey(const void* data, size_t size, uint64_t seed = 0);

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_FREQUENCY_SKETCH_H_
