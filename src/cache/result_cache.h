// Byte-budgeted LRU result cache with TinyLFU admission (DESIGN.md "Result
// cache & coalescing").
//
// Entries are materialized QueryResults keyed by the composed cache key
// (cache_key.h). Eviction is LRU over a byte budget; admission is TinyLFU:
// when the cache is full, a candidate only displaces the LRU victim if the
// frequency sketch estimates the candidate's key is accessed more often
// than the victim's. That one comparison is what stops a scan of
// one-hit-wonder queries from flushing the hot tile/geofence working set —
// the scan's entries lose the frequency duel and are simply not admitted.
//
// Thread safety: one mutex around the map/LRU/sketch. The hot path does no
// allocation beyond the shared_ptr bump; entries are immutable once
// admitted, so readers hold a shared_ptr and never block writers.

#ifndef JACKPINE_CACHE_RESULT_CACHE_H_
#define JACKPINE_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/frequency_sketch.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jackpine::cache {

// Point-in-time counters. hits/misses count Lookup() outcomes; coalesced
// counts queries served from another session's in-flight execution;
// bypass counts queries that skipped the cache by policy (traced sessions).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t rejections = 0;   // TinyLFU refused admission (or entry > budget)
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // entries purged by a table mutation
  uint64_t coalesced = 0;
  uint64_t bypass = 0;
  uint64_t bytes = 0;    // resident entry bytes
  uint64_t entries = 0;  // resident entry count

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ResultCache {
 public:
  struct Entry {
    engine::QueryResult result;
    // The miss execution's engine trace, replayed into the session trace on
    // a hit so remote per-query counters stay deterministic per entry
    // lifetime instead of dropping to zero.
    obs::QueryTrace trace;
    // Lower-cased tables the result was computed from (purge index).
    std::vector<std::string> tables;
    uint64_t bytes = 0;  // filled by Admit from ApproxBytes if left 0
  };

  // `budget_bytes` caps resident entry bytes; the sketch width scales with
  // the budget (one slot per ~4 KiB, min 1024).
  explicit ResultCache(size_t budget_bytes);

  // Records the access in the frequency sketch and returns the entry, or
  // null on miss. Hits move the entry to the LRU front.
  std::shared_ptr<const Entry> Lookup(const std::string& key);

  // Re-check after a counted miss: a hit counts (and refreshes LRU) as
  // usual, but a miss is silent — no second miss tally, no sketch record.
  // Used by the coalescer's leader double-check, where Lookup() already
  // accounted for this access.
  std::shared_ptr<const Entry> PeekHit(const std::string& key);

  // TinyLFU admission; true when the entry became resident. A rejected
  // entry is still a perfectly good result — callers serve it to their own
  // client either way.
  bool Admit(const std::string& key, std::shared_ptr<const Entry> entry);

  // Purges every entry computed from `table` (lower-cased); returns the
  // number purged and feeds cache.invalidations. Key mismatch already makes
  // stale entries unreachable — this reclaims their bytes promptly.
  size_t InvalidateTable(const std::string& table);

  void NoteCoalesced();
  void NoteBypass();

  CacheStats stats() const;

  static uint64_t ApproxResultBytes(const engine::QueryResult& result);

 private:
  struct Node {
    std::string key;
    uint64_t hash = 0;
    std::shared_ptr<const Entry> entry;
  };
  using LruList = std::list<Node>;

  void EvictNodeLocked(LruList::iterator it, obs::Counter* reason);

  const size_t budget_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> map_;
  FrequencySketch sketch_;
  uint64_t bytes_ = 0;
  CacheStats tallies_;  // local to this instance (registry is process-wide)

  // Process-wide instruments: Stats frame + Prometheus exposition.
  obs::Counter* hits_c_;
  obs::Counter* misses_c_;
  obs::Counter* admissions_c_;
  obs::Counter* rejections_c_;
  obs::Counter* evictions_c_;
  obs::Counter* invalidations_c_;
  obs::Counter* coalesced_c_;
  obs::Counter* bypass_c_;
  obs::Gauge* bytes_g_;
  obs::Gauge* entries_g_;
};

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_RESULT_CACHE_H_
