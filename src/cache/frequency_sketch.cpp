#include "cache/frequency_sketch.h"

namespace jackpine::cache {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

uint64_t HashKey(const void* data, size_t size, uint64_t seed) {
  // FNV-1a over the bytes, then a splitmix64 finaliser so the low bits used
  // for slot selection are well mixed even for short, similar keys.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

FrequencySketch::FrequencySketch(size_t width, uint64_t sample_period) {
  width_ = NextPow2(width < 64 ? 64 : width);
  mask_ = width_ - 1;
  period_ = sample_period > 0 ? sample_period
                              : static_cast<uint64_t>(width_) * 10;
  counters_.assign(static_cast<size_t>(kRows) * width_, 0);
}

size_t FrequencySketch::Slot(uint64_t hash, int row) const {
  // Independent per-row hashes from one 64-bit input: remix with a
  // row-specific odd constant.
  const uint64_t h = Mix64(hash + 0x632be59bd9b4e019ull * (row + 1));
  return static_cast<size_t>(row) * width_ + (h & mask_);
}

void FrequencySketch::Record(uint64_t hash) {
  for (int r = 0; r < kRows; ++r) {
    uint8_t& c = counters_[Slot(hash, r)];
    if (c < 255) ++c;
  }
  if (++samples_ >= period_) Halve();
}

uint32_t FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t est = 255;
  for (int r = 0; r < kRows; ++r) {
    const uint8_t c = counters_[Slot(hash, r)];
    if (c < est) est = c;
  }
  return est;
}

void FrequencySketch::Halve() {
  for (uint8_t& c : counters_) c >>= 1;
  samples_ >>= 1;
  ++halvings_;
}

}  // namespace jackpine::cache
