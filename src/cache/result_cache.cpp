#include "cache/result_cache.h"

#include <algorithm>
#include <utility>

namespace jackpine::cache {
namespace {

size_t SketchWidthForBudget(size_t budget_bytes) {
  const size_t slots = budget_bytes / 4096;
  return slots < 1024 ? 1024 : slots;
}

}  // namespace

ResultCache::ResultCache(size_t budget_bytes)
    : budget_(budget_bytes), sketch_(SketchWidthForBudget(budget_bytes)) {
  obs::Registry& reg = obs::GlobalRegistry();
  hits_c_ = reg.GetCounter("cache.hits");
  misses_c_ = reg.GetCounter("cache.misses");
  admissions_c_ = reg.GetCounter("cache.admissions");
  rejections_c_ = reg.GetCounter("cache.rejections");
  evictions_c_ = reg.GetCounter("cache.evictions");
  invalidations_c_ = reg.GetCounter("cache.invalidations");
  coalesced_c_ = reg.GetCounter("cache.coalesced");
  bypass_c_ = reg.GetCounter("cache.bypass");
  bytes_g_ = reg.GetGauge("cache.bytes");
  entries_g_ = reg.GetGauge("cache.entries");
}

uint64_t ResultCache::ApproxResultBytes(const engine::QueryResult& result) {
  uint64_t bytes = 0;
  for (const std::string& c : result.columns) bytes += c.size() + 16;
  for (const engine::Row& row : result.rows) {
    bytes += 16;  // row vector overhead
    for (const engine::Value& v : row) bytes += v.ApproxBytes();
  }
  return bytes;
}

std::shared_ptr<const ResultCache::Entry> ResultCache::Lookup(
    const std::string& key) {
  const uint64_t hash = HashKey(key.data(), key.size());
  std::lock_guard<std::mutex> lock(mu_);
  sketch_.Record(hash);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++tallies_.misses;
    misses_c_->Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++tallies_.hits;
  hits_c_->Add();
  return it->second->entry;
}

std::shared_ptr<const ResultCache::Entry> ResultCache::PeekHit(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++tallies_.hits;
  hits_c_->Add();
  return it->second->entry;
}

void ResultCache::EvictNodeLocked(LruList::iterator it, obs::Counter* reason) {
  bytes_ -= it->entry->bytes;
  map_.erase(it->key);
  lru_.erase(it);
  reason->Add();
}

bool ResultCache::Admit(const std::string& key,
                        std::shared_ptr<const Entry> entry) {
  if (entry == nullptr) return false;
  const uint64_t hash = HashKey(key.data(), key.size());
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t entry_bytes =
      entry->bytes > 0 ? entry->bytes : ApproxResultBytes(entry->result);
  if (entry_bytes > budget_) {
    ++tallies_.rejections;
    rejections_c_->Add();
    return false;
  }
  // Replace an existing entry for the key (a version-vector refresh lands
  // under a *different* key, so this is re-admission after eviction or a
  // racing duplicate; keep the newest).
  auto existing = map_.find(key);
  if (existing != map_.end()) {
    bytes_ -= existing->second->entry->bytes;
    lru_.erase(existing->second);
    map_.erase(existing);
  }
  // TinyLFU: displace LRU victims only while the candidate's estimated
  // frequency beats theirs; otherwise the candidate is refused.
  const uint32_t candidate_freq = sketch_.Estimate(hash);
  while (bytes_ + entry_bytes > budget_) {
    auto victim = std::prev(lru_.end());
    if (sketch_.Estimate(victim->hash) >= candidate_freq) {
      ++tallies_.rejections;
      rejections_c_->Add();
      bytes_g_->Set(static_cast<double>(bytes_));
      entries_g_->Set(static_cast<double>(lru_.size()));
      return false;
    }
    ++tallies_.evictions;
    EvictNodeLocked(victim, evictions_c_);
  }
  Node node;
  node.key = key;
  node.hash = hash;
  if (entry->bytes == 0) {
    // Entries are immutable once shared; size an unsized one via a copy.
    auto sized = std::make_shared<Entry>(*entry);
    sized->bytes = entry_bytes;
    node.entry = std::move(sized);
  } else {
    node.entry = std::move(entry);
  }
  lru_.push_front(std::move(node));
  map_[key] = lru_.begin();
  bytes_ += entry_bytes;
  ++tallies_.admissions;
  admissions_c_->Add();
  bytes_g_->Set(static_cast<double>(bytes_));
  entries_g_->Set(static_cast<double>(lru_.size()));
  return true;
}

size_t ResultCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t purged = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const std::vector<std::string>& tables = it->entry->tables;
    if (std::find(tables.begin(), tables.end(), table) != tables.end()) {
      auto next = std::next(it);
      ++tallies_.invalidations;
      EvictNodeLocked(it, invalidations_c_);
      ++purged;
      it = next;
    } else {
      ++it;
    }
  }
  if (purged > 0) {
    bytes_g_->Set(static_cast<double>(bytes_));
    entries_g_->Set(static_cast<double>(lru_.size()));
  }
  return purged;
}

void ResultCache::NoteCoalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  ++tallies_.coalesced;
  coalesced_c_->Add();
}

void ResultCache::NoteBypass() {
  std::lock_guard<std::mutex> lock(mu_);
  ++tallies_.bypass;
  bypass_c_->Add();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = tallies_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

}  // namespace jackpine::cache
