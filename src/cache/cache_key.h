// Cache-key derivation: which statements are cacheable, and what their
// canonical text is (DESIGN.md "Result cache & coalescing").
//
// Two spellings of the same SELECT must map to one cache entry, so the key
// is built from the shared token-stream normalization in
// engine/sql_normalize.h — the same canonical text the statement-statistics
// plane (obs/statements.h) uses as its fingerprint, so cache identity and
// stats identity can never drift apart.
//
// Only a plain SELECT is cacheable. EXPLAIN / EXPLAIN ANALYZE must re-run
// the engine so per-operator actuals stay truthful, and DDL/DML are
// mutations. Statements that fail to parse are simply not cacheable — the
// engine will produce the real error.

#ifndef JACKPINE_CACHE_CACHE_KEY_H_
#define JACKPINE_CACHE_CACHE_KEY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jackpine::cache {

struct NormalizedSelect {
  // Canonical single-line form of the statement: tokens joined by single
  // spaces, identifiers lower-cased, literals verbatim.
  std::string text;
  // Tables the SELECT reads, lower-cased, deduplicated, sorted — the order
  // the version vector is composed in.
  std::vector<std::string> tables;
};

// nullopt = not cacheable (not a plain SELECT, or does not tokenize/parse).
std::optional<NormalizedSelect> NormalizeSelect(std::string_view sql);

// Composes the full cache key: canonical text + the table-version vector
// (same order as `tables`) + the result-shaping execution limits. Deadlines
// are deliberately excluded: an ExecContext budget violation is a latched
// error, never a silently truncated result, so a successful SELECT's rows
// do not depend on its deadline. max_rows / max_result_bytes DO shape
// successful results and therefore key the entry.
std::string ComposeKey(const NormalizedSelect& query,
                       const std::vector<uint64_t>& versions,
                       uint64_t max_rows, uint64_t max_result_bytes);

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_CACHE_KEY_H_
