#include "cache/cache_key.h"

#include <algorithm>
#include <variant>

#include "common/string_util.h"
#include "engine/sql_ast.h"
#include "engine/sql_normalize.h"
#include "engine/sql_parser.h"

namespace jackpine::cache {

std::optional<NormalizedSelect> NormalizeSelect(std::string_view sql) {
  auto parsed = engine::ParseSql(sql);
  if (!parsed.ok()) return std::nullopt;
  const auto* select = std::get_if<engine::SelectStatement>(&*parsed);
  if (select == nullptr) return std::nullopt;

  // The canonical text is the shared token-stream normalization
  // (engine/sql_normalize.h) — the same spelling the statement-statistics
  // plane fingerprints on, so a cache hit and its stats row agree on
  // identity by construction.
  std::optional<std::string> text = engine::NormalizeSqlText(sql);
  if (!text.has_value()) return std::nullopt;  // unreachable once parsed

  NormalizedSelect out;
  out.text = *std::move(text);
  out.tables.reserve(select->from.size());
  for (const engine::TableRef& ref : select->from) {
    out.tables.push_back(ToLowerAscii(ref.table));
  }
  std::sort(out.tables.begin(), out.tables.end());
  out.tables.erase(std::unique(out.tables.begin(), out.tables.end()),
                   out.tables.end());
  return out;
}

std::string ComposeKey(const NormalizedSelect& query,
                       const std::vector<uint64_t>& versions,
                       uint64_t max_rows, uint64_t max_result_bytes) {
  std::string key = query.text;
  key.push_back('\0');
  for (size_t i = 0; i < query.tables.size(); ++i) {
    const uint64_t v = i < versions.size() ? versions[i] : 0;
    key += query.tables[i];
    key.push_back('=');
    key += StrFormat("%llu", static_cast<unsigned long long>(v));
    key.push_back(';');
  }
  key.push_back('\0');
  key += StrFormat("rows=%llu;bytes=%llu",
                   static_cast<unsigned long long>(max_rows),
                   static_cast<unsigned long long>(max_result_bytes));
  return key;
}

}  // namespace jackpine::cache
