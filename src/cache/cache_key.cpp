#include "cache/cache_key.h"

#include <algorithm>
#include <variant>

#include "common/string_util.h"
#include "engine/sql_ast.h"
#include "engine/sql_lexer.h"
#include "engine/sql_parser.h"

namespace jackpine::cache {
namespace {

// Re-quotes a string literal whose quotes the lexer stripped, undoing the
// '' unescape so the canonical text is itself valid SQL.
void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('\'');
  for (char c : s) {
    if (c == '\'') out->push_back('\'');
    out->push_back(c);
  }
  out->push_back('\'');
}

}  // namespace

std::optional<NormalizedSelect> NormalizeSelect(std::string_view sql) {
  auto parsed = engine::ParseSql(sql);
  if (!parsed.ok()) return std::nullopt;
  const auto* select = std::get_if<engine::SelectStatement>(&*parsed);
  if (select == nullptr) return std::nullopt;

  auto tokens = engine::Tokenize(sql);
  if (!tokens.ok()) return std::nullopt;  // unreachable once parsing passed

  NormalizedSelect out;
  for (const engine::Token& tok : *tokens) {
    if (tok.kind == engine::TokenKind::kEnd) break;
    if (!out.text.empty()) out.text.push_back(' ');
    switch (tok.kind) {
      case engine::TokenKind::kIdentifier:
        out.text += ToLowerAscii(tok.text);
        break;
      case engine::TokenKind::kString:
        AppendQuoted(tok.text, &out.text);
        break;
      default:
        out.text += tok.text;
        break;
    }
  }

  out.tables.reserve(select->from.size());
  for (const engine::TableRef& ref : select->from) {
    out.tables.push_back(ToLowerAscii(ref.table));
  }
  std::sort(out.tables.begin(), out.tables.end());
  out.tables.erase(std::unique(out.tables.begin(), out.tables.end()),
                   out.tables.end());
  return out;
}

std::string ComposeKey(const NormalizedSelect& query,
                       const std::vector<uint64_t>& versions,
                       uint64_t max_rows, uint64_t max_result_bytes) {
  std::string key = query.text;
  key.push_back('\0');
  for (size_t i = 0; i < query.tables.size(); ++i) {
    const uint64_t v = i < versions.size() ? versions[i] : 0;
    key += query.tables[i];
    key.push_back('=');
    key += StrFormat("%llu", static_cast<unsigned long long>(v));
    key.push_back(';');
  }
  key.push_back('\0');
  key += StrFormat("rows=%llu;bytes=%llu",
                   static_cast<unsigned long long>(max_rows),
                   static_cast<unsigned long long>(max_result_bytes));
  return key;
}

}  // namespace jackpine::cache
