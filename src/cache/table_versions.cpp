#include "cache/table_versions.h"

#include "common/string_util.h"

namespace jackpine::cache {

void TableVersions::AttachTo(engine::Database* db) {
  inner_ = db->mutation_observer();
  db->set_mutation_observer(this);
}

std::vector<uint64_t> TableVersions::Snapshot(
    const std::vector<std::string>& tables) const {
  std::vector<uint64_t> out;
  out.reserve(tables.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& t : tables) {
    auto it = versions_.find(t);
    out.push_back(it == versions_.end() ? 0 : it->second);
  }
  return out;
}

std::mutex& TableVersions::mutation_mutex() {
  return inner_ != nullptr ? inner_->mutation_mutex() : own_mutation_mutex_;
}

void TableVersions::Begin(const std::string& table) {
  const std::string key = ToLowerAscii(table);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& v = versions_[key];
  // Mutations are serialised by mutation_mutex(), so an odd version here
  // means a previous apply failed mid-flight and never closed its bracket;
  // staying odd keeps the table uncacheable, which is the safe reading.
  if ((v & 1) == 0) ++v;
  if (on_mutate_) on_mutate_(key);
}

void TableVersions::OnApplied(const std::string& table) {
  if (inner_ != nullptr) inner_->OnApplied(table);
  const std::string key = ToLowerAscii(table);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(key);
  // Only close a bracket Begin() opened: the engine also reports applies
  // that needed no hook (e.g. DROP INDEX of an absent index), and those
  // must not desync the odd/even protocol.
  if (it != versions_.end() && (it->second & 1)) ++it->second;
}

Result<uint64_t> TableVersions::OnCreateTable(const std::string& name,
                                              const engine::Schema& schema) {
  uint64_t ticket = 0;
  if (inner_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket, inner_->OnCreateTable(name, schema));
  }
  Begin(name);
  return ticket;
}

Result<uint64_t> TableVersions::OnInsert(const std::string& table,
                                         const std::vector<engine::Row>& rows) {
  uint64_t ticket = 0;
  if (inner_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket, inner_->OnInsert(table, rows));
  }
  Begin(table);
  return ticket;
}

Result<uint64_t> TableVersions::OnCreateIndex(const std::string& table,
                                              size_t column) {
  uint64_t ticket = 0;
  if (inner_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket, inner_->OnCreateIndex(table, column));
  }
  Begin(table);
  return ticket;
}

Result<uint64_t> TableVersions::OnDropIndex(const std::string& table,
                                            size_t column) {
  uint64_t ticket = 0;
  if (inner_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket, inner_->OnDropIndex(table, column));
  }
  Begin(table);
  return ticket;
}

Status TableVersions::WaitDurable(uint64_t ticket) {
  if (inner_ != nullptr) return inner_->WaitDurable(ticket);
  return Status::Ok();
}

}  // namespace jackpine::cache
