// Per-table seqlock-style version counters driven through the engine's
// MutationObserver seam (DESIGN.md "Result cache & coalescing").
//
// The result cache keys entries on (normalized SQL, table-version vector),
// so invalidation is by construction: a mutation bumps the touched table's
// version and every entry built against the old version simply never
// matches again. The subtlety is reads that *overlap* a mutation: a SELECT
// that starts before an INSERT applies and finishes after it could observe
// half-applied rows, and naive "bump once per mutation" versioning would
// happily admit that result under the new version. Versions here are
// therefore a seqlock: the pre-apply hook moves the version to ODD, the
// post-apply OnApplied moves it to EVEN, and the cache only admits a result
// whose version vector was captured equal AND all-even both before and
// after execution — any overlap with an in-flight apply shows up as an odd
// or changed version and the admission is refused.
//
// TableVersions chains in front of whatever observer the database already
// has (the durability StorageManager, or nothing): hooks forward to the
// inner observer first and bump only on its success, mutation_mutex() is
// the inner observer's mutex when one exists (checkpointing must keep
// excluding applies), and WaitDurable forwards verbatim.

#ifndef JACKPINE_CACHE_TABLE_VERSIONS_H_
#define JACKPINE_CACHE_TABLE_VERSIONS_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"

namespace jackpine::cache {

class TableVersions : public engine::MutationObserver {
 public:
  TableVersions() = default;

  // Chains this observer in front of `db`'s current one and attaches.
  // Call at most once, before concurrent queries start.
  void AttachTo(engine::Database* db);

  // Current versions of `tables` (names already lower-cased, as produced by
  // NormalizeSelect). Unknown tables report version 0 — which is even, so
  // a table that has never been mutated through this observer is stable.
  std::vector<uint64_t> Snapshot(const std::vector<std::string>& tables) const;

  // All even = no apply in flight.
  static bool Stable(const std::vector<uint64_t>& versions) {
    for (uint64_t v : versions) {
      if (v & 1) return false;
    }
    return true;
  }

  // Invoked (under the versions mutex) whenever a table moves to a new
  // version, i.e. at the pre-apply bump. The cache uses it to proactively
  // purge entries of the touched table — key mismatch already guarantees
  // correctness; the purge reclaims bytes and feeds cache.invalidations.
  void set_on_mutate(std::function<void(const std::string&)> cb) {
    on_mutate_ = std::move(cb);
  }

  // MutationObserver:
  std::mutex& mutation_mutex() override;
  Result<uint64_t> OnCreateTable(const std::string& name,
                                 const engine::Schema& schema) override;
  Result<uint64_t> OnInsert(const std::string& table,
                            const std::vector<engine::Row>& rows) override;
  Result<uint64_t> OnCreateIndex(const std::string& table,
                                 size_t column) override;
  Result<uint64_t> OnDropIndex(const std::string& table,
                               size_t column) override;
  Status WaitDurable(uint64_t ticket) override;
  void OnApplied(const std::string& table) override;

 private:
  void Begin(const std::string& table);  // -> odd

  engine::MutationObserver* inner_ = nullptr;
  std::mutex own_mutation_mutex_;  // used only when there is no inner

  mutable std::mutex mu_;  // guards versions_
  std::unordered_map<std::string, uint64_t> versions_;
  std::function<void(const std::string&)> on_mutate_;
};

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_TABLE_VERSIONS_H_
