// Deduplication of identical in-flight cache misses (DESIGN.md "Result
// cache & coalescing").
//
// Under concurrency a hot query that just missed the cache would execute
// once per session — the thundering herd that makes cold starts and
// invalidation storms expensive. The coalescer keys in-flight executions by
// the same composed cache key as the result cache: the first session to
// Join() a key becomes the leader and executes; every later session becomes
// a follower and waits on the leader's Flight. The leader publishes the
// built cache entry (or failure) through Finish(), which removes the flight
// and wakes all followers.
//
// Deadline semantics: a follower waits at most its own remaining deadline —
// a short-deadline follower is never held hostage by a long-running leader.
// On timeout (and on leader failure) the follower falls back to executing
// solo. Leader errors are deliberately not fanned out: an error may be
// session-specific (deadline, budget), so each follower re-tries for
// itself rather than propagating someone else's failure.

#ifndef JACKPINE_CACHE_REQUEST_COALESCER_H_
#define JACKPINE_CACHE_REQUEST_COALESCER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/result_cache.h"

namespace jackpine::cache {

class RequestCoalescer {
 public:
  class Flight {
   public:
    // Leader side: publish the outcome and wake all waiters. `entry` is
    // null when the execution failed (followers then execute solo).
    void Complete(std::shared_ptr<const ResultCache::Entry> entry);

    struct WaitResult {
      std::shared_ptr<const ResultCache::Entry> entry;  // null: run solo
      bool leader_finished = false;  // false = the wait timed out
    };
    // Follower side: wait up to `timeout_s` (<= 0 waits without bound) for
    // the leader to publish.
    WaitResult Wait(double timeout_s);

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::shared_ptr<const ResultCache::Entry> entry_;
  };

  struct Ticket {
    std::shared_ptr<Flight> flight;
    bool leader = false;
  };

  // Registers interest in `key`: the first caller per key is the leader and
  // MUST eventually call Finish() for that key, success or not.
  Ticket Join(const std::string& key);

  // Leader completion: removes the flight, then publishes `entry` to its
  // followers. Callers admit to the result cache *before* Finish so a
  // session arriving between admission and publication sees a hit instead
  // of becoming a new leader.
  void Finish(const std::string& key,
              std::shared_ptr<const ResultCache::Entry> entry);

  size_t in_flight() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_REQUEST_COALESCER_H_
