#include "cache/query_cache.h"

#include <utility>

namespace jackpine::cache {

QueryCache::QueryCache(const QueryCacheConfig& config)
    : results_(config.budget_bytes) {}

void QueryCache::AttachTo(engine::Database* db) {
  versions_.set_on_mutate(
      [this](const std::string& table) { results_.InvalidateTable(table); });
  versions_.AttachTo(db);
}

std::optional<QueryCache::Prepared> QueryCache::Prepare(
    std::string_view sql, uint64_t max_rows, uint64_t max_result_bytes) const {
  auto normalized = NormalizeSelect(sql);
  if (!normalized.has_value()) return std::nullopt;
  Prepared p;
  p.query = std::move(*normalized);
  p.versions = versions_.Snapshot(p.query.tables);
  p.key = ComposeKey(p.query, p.versions, max_rows, max_result_bytes);
  return p;
}

std::shared_ptr<const ResultCache::Entry> QueryCache::Lookup(
    const Prepared& p) {
  // An odd version in the captured vector means an apply is in flight right
  // now; the key cannot match a (necessarily all-even) admitted entry, so
  // the lookup is an honest miss and the query executes against the engine.
  return results_.Lookup(p.key);
}

RequestCoalescer::Ticket QueryCache::JoinFlight(const Prepared& p) {
  return coalescer_.Join(p.key);
}

std::shared_ptr<const ResultCache::Entry> QueryCache::RecheckAsLeader(
    const Prepared& p) {
  std::shared_ptr<const ResultCache::Entry> entry = results_.PeekHit(p.key);
  if (entry != nullptr) coalescer_.Finish(p.key, entry);
  return entry;
}

std::shared_ptr<const ResultCache::Entry> QueryCache::WaitShared(
    const RequestCoalescer::Ticket& ticket, double timeout_s) {
  RequestCoalescer::Flight::WaitResult waited = ticket.flight->Wait(timeout_s);
  if (waited.entry != nullptr) results_.NoteCoalesced();
  return waited.entry;
}

std::shared_ptr<const ResultCache::Entry> QueryCache::FinishFlight(
    const Prepared& p, engine::QueryResult result,
    const obs::QueryTrace& trace) {
  auto entry = std::make_shared<ResultCache::Entry>();
  entry->result = std::move(result);
  entry->trace = trace;
  entry->tables = p.query.tables;
  entry->bytes = ResultCache::ApproxResultBytes(entry->result);

  // Seqlock admission check: versions unchanged since Prepare and all even
  // means no apply overlapped the execution.
  const std::vector<uint64_t> after = versions_.Snapshot(p.query.tables);
  const bool stable =
      after == p.versions && TableVersions::Stable(after);
  if (stable) {
    results_.Admit(p.key, entry);
    coalescer_.Finish(p.key, entry);
  } else {
    // The result may reflect a half-applied mutation: serve it to the
    // leader's own client (the engine itself ran it, same as uncached),
    // but neither cache it nor fan it out.
    coalescer_.Finish(p.key, nullptr);
  }
  return entry;
}

void QueryCache::AbortFlight(const Prepared& p) {
  coalescer_.Finish(p.key, nullptr);
}

}  // namespace jackpine::cache
