// The facade the server wires in front of the engine: key derivation +
// version snapshots + result cache + coalescer in one object with a
// race-free admission protocol (DESIGN.md "Result cache & coalescing").
//
// Per-query flow on the serve path:
//
//   auto p = cache->Prepare(sql, max_rows, max_bytes);   // null: uncacheable
//   if (auto hit = cache->Lookup(*p)) serve(hit);        // versions matched
//   else {
//     auto ticket = cache->JoinFlight(*p);
//     if (!ticket.leader) {
//       auto shared = cache->WaitShared(&ticket, remaining_deadline);
//       if (shared) serve(shared);                        // coalesced
//       else execute solo (no admission, no Finish);
//     }
//     if (ticket.leader) {
//       execute; entry = cache->FinishFlight(*p, result, trace);  // or Abort
//       serve(entry->result);
//     }
//   }
//
// Admission safety is the seqlock check: FinishFlight re-snapshots the
// table versions and admits only when they are unchanged since Prepare()
// AND all even — a result whose execution overlapped any apply window is
// served to its own client but never cached and never fanned out.

#ifndef JACKPINE_CACHE_QUERY_CACHE_H_
#define JACKPINE_CACHE_QUERY_CACHE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_key.h"
#include "cache/request_coalescer.h"
#include "cache/result_cache.h"
#include "cache/table_versions.h"

namespace jackpine::cache {

struct QueryCacheConfig {
  size_t budget_bytes = 64ull << 20;
};

class QueryCache {
 public:
  explicit QueryCache(const QueryCacheConfig& config);

  // Chains the version observer in front of db's current MutationObserver
  // and hooks proactive purge. Call once, after any storage observer is
  // attached and before queries are served.
  void AttachTo(engine::Database* db);

  struct Prepared {
    NormalizedSelect query;
    std::vector<uint64_t> versions;  // captured before Lookup
    std::string key;
  };

  // nullopt = statement is not a cacheable plain SELECT.
  std::optional<Prepared> Prepare(std::string_view sql, uint64_t max_rows,
                                  uint64_t max_result_bytes) const;

  std::shared_ptr<const ResultCache::Entry> Lookup(const Prepared& p);

  RequestCoalescer::Ticket JoinFlight(const Prepared& p);

  // Leader double-check, closing the Lookup->JoinFlight race: when another
  // leader admitted this key between this session's miss and its Join, the
  // new leader must serve that entry (counted as a hit) and publish it to
  // its own followers instead of executing again. Null = still a genuine
  // miss; execute. Only valid on a ticket that won leadership.
  std::shared_ptr<const ResultCache::Entry> RecheckAsLeader(const Prepared& p);

  // Follower wait; counts cache.coalesced when the shared entry arrives.
  std::shared_ptr<const ResultCache::Entry> WaitShared(
      const RequestCoalescer::Ticket& ticket, double timeout_s);

  // Leader success: builds the entry (taking ownership of `result`),
  // attempts admission under the seqlock check, publishes to followers,
  // and returns the entry for the leader's own reply.
  std::shared_ptr<const ResultCache::Entry> FinishFlight(
      const Prepared& p, engine::QueryResult result,
      const obs::QueryTrace& trace);

  // Leader failure: wakes followers empty-handed (each executes solo).
  void AbortFlight(const Prepared& p);

  // Policy bypass accounting (traced sessions and EXPLAIN stay truthful).
  void NoteBypass() { results_.NoteBypass(); }

  CacheStats stats() const { return results_.stats(); }
  TableVersions& versions() { return versions_; }

 private:
  TableVersions versions_;
  ResultCache results_;
  RequestCoalescer coalescer_;
};

}  // namespace jackpine::cache

#endif  // JACKPINE_CACHE_QUERY_CACHE_H_
