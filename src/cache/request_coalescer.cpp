#include "cache/request_coalescer.h"

#include <chrono>

namespace jackpine::cache {

void RequestCoalescer::Flight::Complete(
    std::shared_ptr<const ResultCache::Entry> entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    entry_ = std::move(entry);
  }
  cv_.notify_all();
}

RequestCoalescer::Flight::WaitResult RequestCoalescer::Flight::Wait(
    double timeout_s) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_s > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    cv_.wait_until(lock, deadline, [this] { return done_; });
  } else {
    cv_.wait(lock, [this] { return done_; });
  }
  WaitResult out;
  out.leader_finished = done_;
  out.entry = entry_;
  return out;
}

RequestCoalescer::Ticket RequestCoalescer::Join(const std::string& key) {
  Ticket ticket;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    ticket.flight = std::make_shared<Flight>();
    ticket.leader = true;
    flights_[key] = ticket.flight;
  } else {
    ticket.flight = it->second;
    ticket.leader = false;
  }
  return ticket;
}

void RequestCoalescer::Finish(const std::string& key,
                              std::shared_ptr<const ResultCache::Entry> entry) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = it->second;
    flights_.erase(it);
  }
  flight->Complete(std::move(entry));
}

size_t RequestCoalescer::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace jackpine::cache
