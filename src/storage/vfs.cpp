#include "storage/vfs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/string_util.h"

namespace jackpine::storage {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  const std::string msg =
      StrFormat("storage: %s '%s': %s", op, path.c_str(), std::strerror(err));
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::Unavailable(msg);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  ~PosixWritableFile() override { Close().code(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("storage: append on closed file");
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        // A short write may have landed before the failure; size_ tracks
        // only what succeeded, the torn tail is recovery's problem.
        size_ += written;
        return ErrnoStatus("write", path_, errno);
      }
      written += static_cast<size_t>(n);
    }
    size_ += written;
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("storage: sync on closed file");
#if defined(__APPLE__)
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
#else
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_, errno);
#endif
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::Ok();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat", path, err);
    }
    return std::unique_ptr<WritableFile>(std::make_unique<PosixWritableFile>(
        fd, path, static_cast<uint64_t>(st.st_size)));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path, errno);
    }
    return Status::Ok();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("opendir", path, errno);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir", path, err);
    return Status::Ok();
  }
};

// Fault-injecting wrapper around a base WritableFile: consults the owning
// FaultVfs before every Append/Sync and delivers the scripted failure.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultVfs* owner, std::unique_ptr<WritableFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    const FaultVfs::AppendFault fault = owner_->NextAppend();
    if (!fault.fail) return base_->Append(data);
    // Torn write: the prefix lands, the call fails. A crash-at-offset test
    // stops using the file here; a live ENOSPC caller sees the error.
    const uint64_t keep =
        fault.torn_bytes < data.size() ? fault.torn_bytes : data.size();
    if (keep > 0) {
      JACKPINE_RETURN_IF_ERROR(base_->Append(data.substr(0, keep)));
    }
    return Status(fault.code,
                  StrFormat("storage: injected write fault (%llu of %zu "
                            "bytes landed)",
                            static_cast<unsigned long long>(keep),
                            data.size()));
  }

  Status Sync() override {
    if (owner_->NextSyncFails()) {
      return Status::Unavailable("storage: injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  FaultVfs* owner_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

Vfs* RealVfs() {
  static PosixVfs* vfs = new PosixVfs();
  return vfs;
}

FaultVfs::AppendFault FaultVfs::NextAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  ++appends_;
  AppendFault fault;
  if (append_armed_) {
    if (append_fail_after_ == 0) {
      append_armed_ = false;  // one-shot
      fault.fail = true;
      fault.torn_bytes = torn_bytes_;
      fault.code = append_code_;
    } else {
      --append_fail_after_;
    }
  }
  return fault;
}

bool FaultVfs::NextSyncFails() {
  std::lock_guard<std::mutex> lock(mu_);
  ++syncs_;
  if (!sync_armed_) return false;
  if (sync_fail_after_ == 0) return true;  // latched: every later sync fails
  --sync_fail_after_;
  return false;
}

Result<std::unique_ptr<WritableFile>> FaultVfs::OpenAppend(
    const std::string& path) {
  JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                            base_->OpenAppend(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(base)));
}

Result<std::string> FaultVfs::ReadFile(const std::string& path) {
  JACKPINE_ASSIGN_OR_RETURN(std::string data, base_->ReadFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  if (!corrupt_substr_.empty() &&
      path.find(corrupt_substr_) != std::string::npos &&
      corrupt_offset_ < data.size()) {
    data[corrupt_offset_] =
        static_cast<char>(static_cast<uint8_t>(data[corrupt_offset_]) ^
                          corrupt_mask_);
  }
  return data;
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  return base_->Rename(from, to);
}

Status FaultVfs::Remove(const std::string& path) {
  return base_->Remove(path);
}

bool FaultVfs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultVfs::Truncate(const std::string& path, uint64_t size) {
  return base_->Truncate(path, size);
}

Status FaultVfs::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultVfs::SyncDir(const std::string& path) {
  return base_->SyncDir(path);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (!out.empty() && out.back() != '/') out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace jackpine::storage
