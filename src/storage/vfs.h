// The filesystem seam under jackpine::storage (DESIGN.md "Durability").
//
// Every byte the durability layer reads or writes goes through a Vfs, for
// the same reason every network byte goes through the chaos driver: the
// recovery paths are only trustworthy if they are tested against the
// failures a real disk produces — short writes, torn tails, ENOSPC, fsync
// errors, bit rot — and those failures must be injectable deterministically.
// RealVfs() is thin POSIX; FaultVfs wraps any Vfs and injects scripted
// failures at exact call counts and byte offsets, so a recovery test replays
// the identical fault sequence on every run.

#ifndef JACKPINE_STORAGE_VFS_H_
#define JACKPINE_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace jackpine::storage {

// An append-only file handle. Append() buffers in the OS (a write syscall);
// Sync() makes everything appended so far durable (fdatasync). Close() is
// idempotent and implied by the destructor (without a final Sync — an
// unsynced tail is exactly the torn-tail case recovery must handle).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  // Bytes in the file: the pre-existing size at open plus every byte
  // successfully appended since.
  virtual uint64_t size() const = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Opens for appending, creating the file when absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;

  // Whole-file read; kNotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Atomic replace (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  // Shrinks the file to `size` bytes (recovery chops torn tails with this).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  // Creates the directory (not recursively); ok when it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  // fsyncs the directory itself so a rename/create survives a crash.
  virtual Status SyncDir(const std::string& path) = 0;
};

// Process-wide POSIX Vfs.
Vfs* RealVfs();

// Deterministic fault injection over a base Vfs. All knobs are scripted
// before the code under test runs; counters are global across files opened
// through this instance, so "fail the 3rd fsync" means the 3rd fsync this
// FaultVfs sees. A torn write models power loss mid-append: the configured
// prefix of the payload reaches the base file and the call still reports an
// error (the caller must treat the tail as untrustworthy — fail-stop).
class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(Vfs* base) : base_(base) {}

  // After `after` more successful Append calls, one Append writes only
  // `torn_bytes` of its payload and fails with `code` (kResourceExhausted
  // models ENOSPC, kUnavailable a generic I/O error).
  void FailAppend(uint64_t after, uint64_t torn_bytes,
                  StatusCode code = StatusCode::kResourceExhausted) {
    std::lock_guard<std::mutex> lock(mu_);
    append_fail_after_ = after;
    append_armed_ = true;
    torn_bytes_ = torn_bytes;
    append_code_ = code;
  }

  // After `after` more successful Sync calls, every subsequent Sync fails
  // (a dying disk does not come back; fsync failure semantics are
  // fail-stop, see DESIGN.md).
  void FailSync(uint64_t after) {
    std::lock_guard<std::mutex> lock(mu_);
    sync_fail_after_ = after;
    sync_armed_ = true;
  }

  // Every ReadFile of a path containing `path_substr` XORs the byte at
  // `offset` with `mask` (injected read corruption / bit rot).
  void CorruptRead(std::string path_substr, uint64_t offset,
                   uint8_t mask = 0xff) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_substr_ = std::move(path_substr);
    corrupt_offset_ = offset;
    corrupt_mask_ = mask;
  }

  void ClearFaults() {
    std::lock_guard<std::mutex> lock(mu_);
    append_armed_ = sync_armed_ = false;
    corrupt_substr_.clear();
  }

  uint64_t appends() const { return appends_; }
  uint64_t syncs() const { return syncs_; }

  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

  // Consulted by the wrapper file handle on every Append/Sync; returns the
  // fault to deliver now, if any. Internal to vfs.cpp, public only because
  // the handle type lives in an anonymous namespace there.
  struct AppendFault {
    bool fail = false;
    uint64_t torn_bytes = 0;
    StatusCode code = StatusCode::kResourceExhausted;
  };
  AppendFault NextAppend();
  bool NextSyncFails();

 private:
  Vfs* base_;
  std::mutex mu_;
  bool append_armed_ = false;
  uint64_t append_fail_after_ = 0;
  uint64_t torn_bytes_ = 0;
  StatusCode append_code_ = StatusCode::kResourceExhausted;
  bool sync_armed_ = false;
  uint64_t sync_fail_after_ = 0;
  std::string corrupt_substr_;
  uint64_t corrupt_offset_ = 0;
  uint8_t corrupt_mask_ = 0xff;
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
};

// Joins a directory and a file name with '/'.
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace jackpine::storage

#endif  // JACKPINE_STORAGE_VFS_H_
