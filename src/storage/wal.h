// The write-ahead log (DESIGN.md "Durability").
//
// Append path: a mutating statement logs its WalRecord *before* the
// in-memory apply and the client ack. Append() assigns the LSN and hands
// the framed record to the OS; WaitSynced(lsn) blocks until an fsync covers
// it. With a zero group-commit window every Append fsyncs inline (strict
// per-statement durability); with a window, the first unsynced append opens
// a `window`-seconds commit window and a background flusher fsyncs the
// accumulated tail when it closes, waking all waiters at once — every
// append inside the window (concurrent or merely nearby in time) shares one
// fsync, at the cost of up to one window of ack latency: the classic
// group-commit trade measured by bench/bench_wal_append.cpp.
//
// Failure model is fail-stop: the first write or fsync error latches, every
// subsequent Append/WaitSynced returns the latched kDataLoss, and the file
// tail is treated as untrustworthy (a partial frame may have landed).
// Recovery handles exactly that tail: an incomplete frame at EOF is a torn
// write and is truncated; a complete frame with a bad CRC *followed by more
// bytes* is mid-log corruption and latches kDataLoss instead of silently
// loading a prefix.

#ifndef JACKPINE_STORAGE_WAL_H_
#define JACKPINE_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/record.h"
#include "storage/vfs.h"

namespace jackpine::obs {
class Counter;
class Histogram;
}  // namespace jackpine::obs

namespace jackpine::storage {

class WalWriter {
 public:
  // Opens (creating with the magic header if empty) for appending.
  // `next_lsn` is where the LSN sequence resumes after recovery;
  // `group_commit_window_s` <= 0 means fsync per append.
  static Result<std::unique_ptr<WalWriter>> Open(Vfs* vfs, std::string path,
                                                 double group_commit_window_s,
                                                 uint64_t next_lsn);

  ~WalWriter();

  // Assigns the next LSN, stamps it into `record`, frames and writes it.
  // With a zero window the record is durable on return; otherwise call
  // WaitSynced before acking. Returns the assigned LSN.
  Result<uint64_t> Append(WalRecord record);

  // Blocks until every record up to `lsn` is durable (fsynced, or folded
  // into a snapshot via MarkDurableThrough). Returns the latched failure
  // if the writer has fail-stopped.
  Status WaitSynced(uint64_t lsn);

  // A checkpoint that snapshotted state through `lsn` makes those records
  // durable by other means; wakes their waiters without an fsync.
  void MarkDurableThrough(uint64_t lsn);

  uint64_t next_lsn() const;
  uint64_t bytes() const;        // current file size, header included
  uint64_t appended_lsn() const;
  uint64_t appends() const;      // records written by this writer
  uint64_t fsyncs() const;       // fsyncs issued by this writer

  // Flushes, syncs and closes. The writer is unusable afterwards.
  Status Close();

 private:
  WalWriter(Vfs* vfs, std::string path, std::unique_ptr<WritableFile> file,
            double window_s, uint64_t next_lsn);

  // Syncs everything appended so far; caller holds mu_. Latches failure.
  Status SyncLocked();
  void FlusherLoop();

  Vfs* vfs_;
  std::string path_;
  double window_s_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // waiters on durable_lsn_
  std::condition_variable flush_cv_;  // flusher wakeup / shutdown
  std::unique_ptr<WritableFile> file_;
  uint64_t next_lsn_;
  uint64_t appended_lsn_ = 0;  // highest LSN written to the OS
  uint64_t durable_lsn_ = 0;   // highest LSN known durable
  uint64_t appends_count_ = 0;
  uint64_t fsyncs_count_ = 0;
  // Group-commit state: the first append after a sync opens the window and
  // fixes its deadline; the flusher syncs only once the deadline passes, so
  // appends inside the window batch into one fsync.
  bool window_open_ = false;
  std::chrono::steady_clock::time_point window_deadline_{};
  Status failed_;              // latched fail-stop error
  bool closing_ = false;
  std::thread flusher_;        // only with a positive window

  // Registry instruments (obs/metrics.h), resolved once in the
  // constructor; never null.
  obs::Counter* appends_metric_;
  obs::Counter* bytes_metric_;
  obs::Counter* fsyncs_metric_;
  obs::Histogram* fsync_latency_metric_;
};

// One pass over a WAL file, enforcing the torn-tail policy above.
struct WalReplay {
  std::vector<WalRecord> records;  // every CRC-valid decoded record
  uint64_t valid_bytes = 0;        // prefix length covering `records`
  uint64_t truncated_bytes = 0;    // torn tail dropped past valid_bytes
  uint64_t next_lsn = 1;           // 1 + highest LSN seen
};

// Reads and validates `path` (kNotFound when absent — callers treat that as
// an empty log). Mid-log corruption returns kDataLoss; a torn tail is
// reported, not an error. Does not modify the file — the caller truncates
// to valid_bytes before re-opening for append.
Result<WalReplay> ReadWal(Vfs* vfs, const std::string& path);

}  // namespace jackpine::storage

#endif  // JACKPINE_STORAGE_WAL_H_
