#include "storage/record.h"

#include <cstring>

#include "common/string_util.h"
#include "geom/wkb.h"
#include "storage/crc32c.h"

namespace jackpine::storage {

namespace {

using engine::DataType;
using engine::Row;
using engine::Value;

// --- Primitive writers (same layout discipline as net/wire.cpp) -------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  AppendU64(out, bits);
}

void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// --- Bounded reader ---------------------------------------------------

// Every Read* checks the remaining byte count before touching memory;
// length-prefixed fields and element counts are validated against the
// remaining input before any allocation, so a corrupted length can neither
// overread nor trigger OOM.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Err("truncated (u8)");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) return Err("truncated (u32)");
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) return Err("truncated (u64)");
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<double> ReadF64() {
    JACKPINE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<std::string> ReadStr() {
    JACKPINE_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > remaining()) return Err("string length exceeds input");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  // Validates an element count against the minimum bytes each element
  // needs, so reserve() below never allocates more than the input could
  // possibly describe.
  Result<uint64_t> ReadCount(uint64_t min_bytes_per_elem, const char* what) {
    JACKPINE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (min_bytes_per_elem > 0 && n > remaining() / min_bytes_per_elem) {
      return Err(what);
    }
    return n;
  }

  size_t remaining() const { return data_.size() - pos_; }

  Status ExpectEnd() const {
    if (remaining() != 0) {
      return Status::DataLoss(StrFormat(
          "storage: %zu trailing bytes in record", remaining()));
    }
    return Status::Ok();
  }

  Status Err(const char* what) const {
    return Status::DataLoss(
        StrFormat("storage: at offset %zu: %s", pos_, what));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Values -----------------------------------------------------------

enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kGeometry = 5,
};

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kNull));
      return;
    case DataType::kBool:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kBool));
      AppendU8(out, v.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kInt64));
      AppendU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case DataType::kDouble:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kDouble));
      AppendF64(out, v.double_value());
      return;
    case DataType::kString:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kString));
      AppendStr(out, v.string_value());
      return;
    case DataType::kGeometry:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kGeometry));
      AppendStr(out, geom::ToWkb(v.geometry_value()));
      return;
  }
}

Result<Value> ReadValue(Reader* r) {
  JACKPINE_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::MakeNull();
    case ValueTag::kBool: {
      JACKPINE_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      return Value::Bool(b != 0);
    }
    case ValueTag::kInt64: {
      JACKPINE_ASSIGN_OR_RETURN(uint64_t v, r->ReadU64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueTag::kDouble: {
      JACKPINE_ASSIGN_OR_RETURN(double v, r->ReadF64());
      return Value::Real(v);
    }
    case ValueTag::kString: {
      JACKPINE_ASSIGN_OR_RETURN(std::string s, r->ReadStr());
      return Value::Str(std::move(s));
    }
    case ValueTag::kGeometry: {
      JACKPINE_ASSIGN_OR_RETURN(std::string wkb, r->ReadStr());
      auto geometry = geom::FromWkb(wkb);
      if (!geometry.ok()) {
        // The frame CRC passed, so this is a codec bug or version skew —
        // structured data loss either way, never a partial load.
        return Status::DataLoss(
            StrFormat("storage: bad WKB in record: %s",
                      geometry.status().message().c_str()));
      }
      return Value::Geo(*std::move(geometry));
    }
  }
  return r->Err("unknown value tag");
}

// --- Rows and schemas -------------------------------------------------

void AppendRow(std::string* out, const Row& row) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) AppendValue(out, v);
}

Result<Row> ReadRow(Reader* r) {
  JACKPINE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  // Each value is at least a 1-byte tag.
  if (n > r->remaining()) return r->Err("row value count exceeds input");
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    JACKPINE_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    row.push_back(std::move(v));
  }
  return row;
}

void AppendRows(std::string* out, const std::vector<Row>& rows) {
  AppendU64(out, rows.size());
  for (const Row& row : rows) AppendRow(out, row);
}

Result<std::vector<Row>> ReadRows(Reader* r) {
  // Each row is at least its 4-byte value count.
  JACKPINE_ASSIGN_OR_RETURN(uint64_t n,
                            r->ReadCount(4, "row count exceeds input"));
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    JACKPINE_ASSIGN_OR_RETURN(Row row, ReadRow(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

void AppendSchema(std::string* out, const engine::Schema& schema) {
  AppendU32(out, static_cast<uint32_t>(schema.NumColumns()));
  for (const engine::Column& col : schema.columns()) {
    AppendStr(out, col.name);
    AppendU8(out, static_cast<uint8_t>(col.type));
  }
}

Result<engine::Schema> ReadSchema(Reader* r) {
  JACKPINE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  // Each column is at least a 4-byte name length plus the type byte.
  if (n > r->remaining() / 5) return r->Err("column count exceeds input");
  std::vector<engine::Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    JACKPINE_ASSIGN_OR_RETURN(std::string name, r->ReadStr());
    JACKPINE_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kGeometry)) {
      return r->Err("unknown column type");
    }
    columns.push_back(
        engine::Column{std::move(name), static_cast<DataType>(type)});
  }
  return engine::Schema(std::move(columns));
}

}  // namespace

const char* WalRecordKindName(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kCreateTable:
      return "CreateTable";
    case WalRecordKind::kInsert:
      return "Insert";
    case WalRecordKind::kUpdate:
      return "Update";
    case WalRecordKind::kDelete:
      return "Delete";
    case WalRecordKind::kCreateIndex:
      return "CreateIndex";
    case WalRecordKind::kDropIndex:
      return "DropIndex";
    case WalRecordKind::kCheckpoint:
      return "Checkpoint";
  }
  return "Unknown";
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(record.kind));
  AppendU64(&out, record.lsn);
  switch (record.kind) {
    case WalRecordKind::kCreateTable:
      AppendStr(&out, record.table);
      AppendSchema(&out, record.schema);
      break;
    case WalRecordKind::kInsert:
      AppendStr(&out, record.table);
      AppendRows(&out, record.rows);
      break;
    case WalRecordKind::kUpdate:
      AppendStr(&out, record.table);
      AppendU64(&out, record.row_index);
      AppendRow(&out, record.rows.empty() ? Row{} : record.rows.front());
      break;
    case WalRecordKind::kDelete:
      AppendStr(&out, record.table);
      AppendU64(&out, record.row_index);
      break;
    case WalRecordKind::kCreateIndex:
    case WalRecordKind::kDropIndex:
      AppendStr(&out, record.table);
      AppendU32(&out, record.column);
      break;
    case WalRecordKind::kCheckpoint:
      break;
  }
  return out;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  Reader r(payload);
  WalRecord record;
  JACKPINE_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind < static_cast<uint8_t>(WalRecordKind::kCreateTable) ||
      kind > static_cast<uint8_t>(WalRecordKind::kCheckpoint)) {
    return r.Err("unknown WAL record kind");
  }
  record.kind = static_cast<WalRecordKind>(kind);
  JACKPINE_ASSIGN_OR_RETURN(record.lsn, r.ReadU64());
  switch (record.kind) {
    case WalRecordKind::kCreateTable: {
      JACKPINE_ASSIGN_OR_RETURN(record.table, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(record.schema, ReadSchema(&r));
      break;
    }
    case WalRecordKind::kInsert: {
      JACKPINE_ASSIGN_OR_RETURN(record.table, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(record.rows, ReadRows(&r));
      break;
    }
    case WalRecordKind::kUpdate: {
      JACKPINE_ASSIGN_OR_RETURN(record.table, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(record.row_index, r.ReadU64());
      JACKPINE_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
      record.rows.push_back(std::move(row));
      break;
    }
    case WalRecordKind::kDelete: {
      JACKPINE_ASSIGN_OR_RETURN(record.table, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(record.row_index, r.ReadU64());
      break;
    }
    case WalRecordKind::kCreateIndex:
    case WalRecordKind::kDropIndex: {
      JACKPINE_ASSIGN_OR_RETURN(record.table, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(record.column, r.ReadU32());
      break;
    }
    case WalRecordKind::kCheckpoint:
      break;
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return record;
}

std::string FrameWalRecord(std::string_view payload) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, MaskCrc(Crc32c(payload)));
  out.append(payload);
  return out;
}

std::string EncodeSnapshot(const Snapshot& snapshot) {
  std::string body;
  AppendU64(&body, snapshot.last_lsn);
  AppendU32(&body, static_cast<uint32_t>(snapshot.tables.size()));
  for (const SnapshotTable& table : snapshot.tables) {
    AppendStr(&body, table.name);
    AppendSchema(&body, table.schema);
    AppendRows(&body, table.rows);
    AppendU32(&body, static_cast<uint32_t>(table.indexed_columns.size()));
    for (const uint32_t col : table.indexed_columns) AppendU32(&body, col);
  }
  std::string out;
  out.append(kSnapshotMagic, kMagicLen);
  AppendU32(&out, MaskCrc(Crc32c(body)));
  AppendU64(&out, body.size());
  out.append(body);
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view file_bytes) {
  if (file_bytes.size() < kMagicLen + 12) {
    return Status::DataLoss("storage: snapshot file too short");
  }
  if (file_bytes.substr(0, kMagicLen) !=
      std::string_view(kSnapshotMagic, kMagicLen)) {
    return Status::DataLoss("storage: bad snapshot magic");
  }
  Reader header(file_bytes.substr(kMagicLen));
  JACKPINE_ASSIGN_OR_RETURN(uint32_t masked_crc, header.ReadU32());
  JACKPINE_ASSIGN_OR_RETURN(uint64_t length, header.ReadU64());
  const std::string_view body = file_bytes.substr(kMagicLen + 12);
  if (length != body.size()) {
    return Status::DataLoss(
        StrFormat("storage: snapshot body length %llu != file remainder %zu",
                  static_cast<unsigned long long>(length), body.size()));
  }
  if (UnmaskCrc(masked_crc) != Crc32c(body)) {
    return Status::DataLoss("storage: snapshot CRC mismatch");
  }
  Reader r(body);
  Snapshot snapshot;
  JACKPINE_ASSIGN_OR_RETURN(snapshot.last_lsn, r.ReadU64());
  JACKPINE_ASSIGN_OR_RETURN(uint32_t table_count, r.ReadU32());
  // Each table needs at least a name length, an empty schema, an empty row
  // list and an empty index list: 4 + 4 + 8 + 4 bytes.
  if (table_count > r.remaining() / 20) {
    return r.Err("table count exceeds input");
  }
  snapshot.tables.reserve(table_count);
  for (uint32_t i = 0; i < table_count; ++i) {
    SnapshotTable table;
    JACKPINE_ASSIGN_OR_RETURN(table.name, r.ReadStr());
    JACKPINE_ASSIGN_OR_RETURN(table.schema, ReadSchema(&r));
    JACKPINE_ASSIGN_OR_RETURN(table.rows, ReadRows(&r));
    JACKPINE_ASSIGN_OR_RETURN(uint32_t idx_count, r.ReadU32());
    if (idx_count > r.remaining() / 4) {
      return r.Err("index count exceeds input");
    }
    table.indexed_columns.reserve(idx_count);
    for (uint32_t k = 0; k < idx_count; ++k) {
      JACKPINE_ASSIGN_OR_RETURN(uint32_t col, r.ReadU32());
      table.indexed_columns.push_back(col);
    }
    snapshot.tables.push_back(std::move(table));
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return snapshot;
}

}  // namespace jackpine::storage
