#include "storage/crc32c.h"

#include <array>

namespace jackpine::storage {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial 0x82F63B78.
// Built once at first use; ~1 GB/s, plenty for WAL records and snapshots
// whose cost is dominated by fsync anyway.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = Table();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace jackpine::storage
