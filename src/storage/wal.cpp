#include "storage/wal.h"

#include <chrono>
#include <cstring>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/crc32c.h"

namespace jackpine::storage {

namespace {

// Converts any write/sync failure into the latched fail-stop form: after a
// storage error the file tail is untrustworthy, so the whole writer is.
Status FailStop(const Status& cause) {
  return Status::DataLoss(
      StrFormat("storage: WAL fail-stop after %s", cause.ToString().c_str()));
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Vfs* vfs, std::string path,
                                                   double group_commit_window_s,
                                                   uint64_t next_lsn) {
  JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            vfs->OpenAppend(path));
  if (file->size() < kMagicLen) {
    // Fresh (or torn-header) log: recovery already truncated it; stamp the
    // magic so the file self-identifies.
    if (file->size() != 0) {
      return Status::DataLoss(
          StrFormat("storage: WAL '%s' has a torn header", path.c_str()));
    }
    JACKPINE_RETURN_IF_ERROR(file->Append({kWalMagic, kMagicLen}));
    JACKPINE_RETURN_IF_ERROR(file->Sync());
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(vfs, std::move(path), std::move(file),
                    group_commit_window_s, next_lsn));
}

WalWriter::WalWriter(Vfs* vfs, std::string path,
                     std::unique_ptr<WritableFile> file, double window_s,
                     uint64_t next_lsn)
    : vfs_(vfs),
      path_(std::move(path)),
      window_s_(window_s),
      file_(std::move(file)),
      next_lsn_(next_lsn == 0 ? 1 : next_lsn) {
  // Everything below the resume point is durable by definition (it is in a
  // snapshot or a replayed log), so WaitSynced on an older LSN returns
  // immediately — a writer reopened after a checkpoint must not strand the
  // checkpointed records' waiters.
  appended_lsn_ = next_lsn_ - 1;
  durable_lsn_ = next_lsn_ - 1;
  obs::Registry& registry = obs::GlobalRegistry();
  appends_metric_ = registry.GetCounter("storage.wal_appends");
  bytes_metric_ = registry.GetCounter("storage.wal_bytes");
  fsyncs_metric_ = registry.GetCounter("storage.wal_fsyncs");
  fsync_latency_metric_ = registry.GetHistogram("storage.wal_fsync_s");
  if (window_s_ > 0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

WalWriter::~WalWriter() { Close().code(); }

Result<uint64_t> WalWriter::Append(WalRecord record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!failed_.ok()) return failed_;
  if (file_ == nullptr) {
    return Status::Internal("storage: append on closed WAL");
  }
  record.lsn = next_lsn_++;
  const uint64_t lsn = record.lsn;
  const std::string framed = FrameWalRecord(EncodeWalRecord(record));
  const Status append = file_->Append(framed);
  if (!append.ok()) {
    // A prefix of the frame may have landed; nothing after it can be
    // trusted, so latch fail-stop (recovery truncates the torn tail).
    failed_ = FailStop(append);
    cv_.notify_all();
    return failed_;
  }
  appended_lsn_ = lsn;
  ++appends_count_;
  appends_metric_->Add();
  bytes_metric_->Add(framed.size());
  if (window_s_ <= 0) {
    JACKPINE_RETURN_IF_ERROR(SyncLocked());
  } else {
    // The window opens at the *first* append after a sync and closes
    // `window_s_` later; later appends ride the open window so a burst —
    // concurrent or sequential — shares one fsync.
    if (!window_open_) {
      window_open_ = true;
      window_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(window_s_));
      flush_cv_.notify_one();
    }
  }
  return lsn;
}

Status WalWriter::WaitSynced(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return durable_lsn_ >= lsn || !failed_.ok(); });
  if (durable_lsn_ >= lsn) return Status::Ok();
  return failed_;
}

void WalWriter::MarkDurableThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn > durable_lsn_) {
    durable_lsn_ = lsn;
    cv_.notify_all();
  }
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr ? file_->size() : 0;
}

uint64_t WalWriter::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

uint64_t WalWriter::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_count_;
}

uint64_t WalWriter::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_count_;
}

Status WalWriter::SyncLocked() {
  Stopwatch sw;
  const Status sync = file_->Sync();
  if (!sync.ok()) {
    failed_ = FailStop(sync);
    cv_.notify_all();
    return failed_;
  }
  ++fsyncs_count_;
  fsyncs_metric_->Add();
  fsync_latency_metric_->Observe(sw.ElapsedSeconds());
  durable_lsn_ = appended_lsn_;
  cv_.notify_all();
  return Status::Ok();
}

void WalWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!closing_) {
    // Sleep until an append opens a window, then hold the sync until the
    // window's deadline — syncing on every wakeup would degenerate to
    // per-append fsyncs whenever appends arrive slower than an fsync.
    flush_cv_.wait(lock, [&] { return closing_ || window_open_; });
    while (!closing_ && window_open_ &&
           std::chrono::steady_clock::now() < window_deadline_) {
      flush_cv_.wait_until(lock, window_deadline_);
    }
    if (closing_) break;
    window_open_ = false;
    if (failed_.ok() && file_ != nullptr && appended_lsn_ > durable_lsn_) {
      SyncLocked().code();  // latches on failure; waiters see failed_
    }
  }
}

Status WalWriter::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ && file_ == nullptr) return failed_;
    closing_ = true;
    flush_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return failed_;
  Status result = failed_;
  if (failed_.ok() && appended_lsn_ > durable_lsn_) {
    result = SyncLocked();
  }
  const Status close = file_->Close();
  if (result.ok() && !close.ok()) result = close;
  file_.reset();
  return result;
}

Result<WalReplay> ReadWal(Vfs* vfs, const std::string& path) {
  JACKPINE_ASSIGN_OR_RETURN(std::string data, vfs->ReadFile(path));
  WalReplay replay;
  if (data.empty()) return replay;  // created but never written: empty log
  if (data.size() < kMagicLen) {
    // Torn header: nothing readable, everything past offset 0 is tail.
    replay.truncated_bytes = data.size();
    return replay;
  }
  if (std::string_view(data).substr(0, kMagicLen) !=
      std::string_view(kWalMagic, kMagicLen)) {
    return Status::DataLoss(
        StrFormat("storage: bad WAL magic in '%s'", path.c_str()));
  }
  size_t pos = kMagicLen;
  replay.valid_bytes = pos;
  uint64_t prev_lsn = 0;
  while (pos < data.size()) {
    const size_t remaining = data.size() - pos;
    if (remaining < 8) {
      // Incomplete frame header at EOF: torn write.
      replay.truncated_bytes = remaining;
      break;
    }
    uint32_t length;
    uint32_t masked_crc;
    std::memcpy(&length, data.data() + pos, 4);
    std::memcpy(&masked_crc, data.data() + pos + 4, 4);
    const uint64_t frame_end =
        static_cast<uint64_t>(pos) + 8 + static_cast<uint64_t>(length);
    if (frame_end > data.size()) {
      // The frame runs past EOF. Either the payload was torn, or the
      // length field itself is the torn bytes — indistinguishable, and
      // both only happen at a real tail, so truncate.
      replay.truncated_bytes = remaining;
      break;
    }
    if (length > kMaxWalPayload) {
      // An implausible length whose frame still fits in the file cannot
      // come from a torn append: mid-log corruption.
      return Status::DataLoss(StrFormat(
          "storage: WAL record at offset %zu claims %u bytes (cap %u)", pos,
          length, kMaxWalPayload));
    }
    const std::string_view payload(data.data() + pos + 8, length);
    if (UnmaskCrc(masked_crc) != Crc32c(payload)) {
      if (frame_end == data.size()) {
        // Bad CRC on the final record: a torn write inside the payload.
        replay.truncated_bytes = remaining;
        break;
      }
      return Status::DataLoss(StrFormat(
          "storage: WAL CRC mismatch at offset %zu (not at tail)", pos));
    }
    JACKPINE_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
    if (record.lsn <= prev_lsn) {
      return Status::DataLoss(StrFormat(
          "storage: WAL LSN went backwards at offset %zu (%llu after %llu)",
          pos, static_cast<unsigned long long>(record.lsn),
          static_cast<unsigned long long>(prev_lsn)));
    }
    prev_lsn = record.lsn;
    replay.records.push_back(std::move(record));
    pos = static_cast<size_t>(frame_end);
    replay.valid_bytes = pos;
  }
  replay.next_lsn = prev_lsn + 1;
  return replay;
}

}  // namespace jackpine::storage
