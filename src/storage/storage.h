// jackpine::storage: crash-safe persistence for a pinedb database
// (DESIGN.md "Durability").
//
// A StorageManager owns one data directory holding two artefacts:
//
//   snapshot.pine   newest complete checkpoint (temp-then-rename atomic)
//   wal.pinelog     every acked mutation since that checkpoint
//
// and is the engine's MutationObserver: mutating statements log to the WAL
// before they apply in memory and only ack once the record is fsynced
// (group commit, storage/wal.h). Checkpoints fold the log into a fresh
// snapshot and reset it; recovery is "load the newest valid snapshot, then
// replay the log's valid prefix", with the torn-tail policy documented in
// wal.h deciding what "valid prefix" means. Recovery is all-or-nothing:
// anything unrecoverable (mid-log corruption, a snapshot that fails its
// CRC, a replay that does not apply) surfaces as kDataLoss from Open — a
// durable pinedb never silently serves a partial state.

#ifndef JACKPINE_STORAGE_STORAGE_H_
#define JACKPINE_STORAGE_STORAGE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace jackpine::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace jackpine::obs

namespace jackpine::storage {

struct StorageOptions {
  std::string dir;
  // Group-commit fsync window (storage/wal.h); <= 0 fsyncs every append.
  double group_commit_window_s = 0.0;
  // Background checkpoint cadence; <= 0 disables the thread (checkpoints
  // then happen only via Checkpoint() / Close()).
  double checkpoint_interval_s = 0.0;
  // WAL size that triggers a background checkpoint early; 0 = no trigger.
  // Only consulted while the background thread runs.
  uint64_t checkpoint_wal_bytes = 64ull << 20;
  // The filesystem seam; null = RealVfs(). Tests inject a FaultVfs here.
  Vfs* vfs = nullptr;
};

// What Open's recovery pass found, for operator logs and the durability
// section of the benchmark report.
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_tables = 0;
  uint64_t snapshot_rows = 0;
  uint64_t wal_records_applied = 0;
  uint64_t wal_records_skipped = 0;  // lsn <= snapshot.last_lsn
  uint64_t wal_truncated_bytes = 0;  // torn tail chopped off
  uint64_t indexes_dropped = 0;      // spatial indexes that failed to rebuild
  double recovery_s = 0.0;
};

class StorageManager : public engine::MutationObserver {
 public:
  // Recovers `options.dir` into `db` (which must be empty), then attaches
  // itself as the database's mutation observer. On kDataLoss the database
  // contents are unspecified and must not be served.
  static Result<std::unique_ptr<StorageManager>> Open(StorageOptions options,
                                                      engine::Database* db);

  ~StorageManager() override;

  const RecoveryInfo& recovery_info() const { return recovery_; }
  const StorageOptions& options() const { return options_; }

  // Current WAL file size (header included) and checkpoint count.
  uint64_t wal_bytes() const;
  uint64_t checkpoints() const { return checkpoints_done_; }
  // Lifetime record-append and fsync counts, accumulated across the WAL
  // writer swaps a checkpoint performs (the benchmark report's durability
  // section reads these).
  uint64_t wal_appends() const;
  uint64_t wal_fsyncs() const;

  // Snapshots the full database (temp file + fsync + atomic rename +
  // directory fsync) and resets the WAL. Serialises against mutations via
  // the mutation mutex. Safe to call at any time; a failure leaves the
  // previous snapshot and the WAL intact.
  Status Checkpoint();

  // Graceful shutdown: final checkpoint, then detach from the database and
  // close the WAL. Idempotent. The destructor deliberately does NOT call
  // it — destruction without Close() models a crash (acked mutations are
  // already fsynced, so nothing acked is lost), which is exactly what the
  // crash-recovery tests exercise.
  Status Close();

  // engine::MutationObserver. Hooks append the matching WAL record and
  // return its LSN as the durability ticket.
  std::mutex& mutation_mutex() override { return mutation_mu_; }
  Result<uint64_t> OnCreateTable(const std::string& name,
                                 const engine::Schema& schema) override;
  Result<uint64_t> OnInsert(const std::string& table,
                            const std::vector<engine::Row>& rows) override;
  Result<uint64_t> OnCreateIndex(const std::string& table,
                                 size_t column) override;
  Result<uint64_t> OnDropIndex(const std::string& table,
                               size_t column) override;
  Status WaitDurable(uint64_t ticket) override;

  static std::string WalPath(const std::string& dir) {
    return JoinPath(dir, "wal.pinelog");
  }
  static std::string SnapshotPath(const std::string& dir) {
    return JoinPath(dir, "snapshot.pine");
  }

 private:
  StorageManager(StorageOptions options, engine::Database* db);

  // The recovery pass (snapshot load + WAL replay + index rebuild); fills
  // recovery_ and leaves wal_ open at the resume LSN.
  Status Recover();
  Status LoadSnapshot(const Snapshot& snapshot);
  // `scratch_opaque` is the recovery pass's index-membership ledger (a
  // file-local type in storage.cpp).
  Status ApplyWalRecordDuringRecovery(const WalRecord& record,
                                      void* scratch_opaque);

  // Appends one record, propagating the writer's fail-stop latch.
  Result<uint64_t> AppendRecord(WalRecord record);

  Status CheckpointLocked();  // caller holds mutation_mu_
  void CheckpointLoop();

  StorageOptions options_;
  Vfs* vfs_;  // options_.vfs resolved (never null)
  engine::Database* db_;
  RecoveryInfo recovery_;

  // Serialises mutations against checkpoints (MutationObserver contract).
  std::mutex mutation_mu_;
  // Guards the wal_ pointer swap at checkpoint; WaitDurable holds it only
  // long enough to copy the shared_ptr, so a checkpoint never destroys a
  // writer out from under a waiter.
  mutable std::mutex wal_mu_;
  std::shared_ptr<WalWriter> wal_;
  Status failed_;  // latched: storage is unusable (fail-stop)
  uint64_t checkpoints_done_ = 0;
  // Counts carried over from WAL writers retired by checkpoints, so the
  // wal_appends()/wal_fsyncs() totals are monotonic across resets.
  uint64_t retired_appends_ = 0;
  uint64_t retired_fsyncs_ = 0;

  std::thread checkpointer_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;

  bool closed_ = false;

  // Registry instruments (obs/metrics.h), resolved once; never null.
  obs::Counter* checkpoints_metric_;
  obs::Histogram* checkpoint_latency_metric_;
  obs::Counter* recoveries_metric_;
  obs::Gauge* recovery_latency_metric_;
};

}  // namespace jackpine::storage

#endif  // JACKPINE_STORAGE_STORAGE_H_
