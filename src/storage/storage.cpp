#include "storage/storage.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/record.h"

namespace jackpine::storage {

namespace {

constexpr char kSnapshotTmpName[] = "snapshot.tmp";

std::string LowerName(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

Status DataLossFrom(const char* what, const Status& cause) {
  return Status::DataLoss(
      StrFormat("storage: %s: %s", what, cause.ToString().c_str()));
}

// Index membership tracked across the replay instead of built record by
// record: UpdateRow/DeleteRow would otherwise bulk-rebuild every index per
// replayed record, and a kDropIndex must cancel a snapshotted index without
// ever paying to build it.
struct RecoveryScratch {
  // lower-cased table name -> columns that should carry an index when the
  // replay finishes.
  std::map<std::string, std::set<size_t>> indexes;
};

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    StorageOptions options, engine::Database* db) {
  std::unique_ptr<StorageManager> manager(
      new StorageManager(std::move(options), db));
  JACKPINE_RETURN_IF_ERROR(manager->Recover());
  db->set_mutation_observer(manager.get());
  if (manager->options_.checkpoint_interval_s > 0) {
    manager->checkpointer_ = std::thread([m = manager.get()] {
      m->CheckpointLoop();
    });
  }
  return manager;
}

StorageManager::StorageManager(StorageOptions options, engine::Database* db)
    : options_(std::move(options)),
      vfs_(options_.vfs != nullptr ? options_.vfs : RealVfs()),
      db_(db) {
  obs::Registry& registry = obs::GlobalRegistry();
  checkpoints_metric_ = registry.GetCounter("storage.checkpoints");
  checkpoint_latency_metric_ = registry.GetHistogram("storage.checkpoint_s");
  recoveries_metric_ = registry.GetCounter("storage.recoveries");
  recovery_latency_metric_ = registry.GetGauge("storage.recovery_s");
}

StorageManager::~StorageManager() {
  // Deliberately NOT Close(): only an explicit Close() is a graceful
  // shutdown (final checkpoint + WAL reset). Destruction without it models
  // a crash — every acked mutation is already fsynced in the WAL, so
  // recovery restores exactly the acked state, and the crash tests rely on
  // abandonment leaving the WAL behind. Just stop the background
  // checkpointer and detach from the database.
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
    bg_cv_.notify_all();
  }
  if (checkpointer_.joinable()) checkpointer_.join();
  if (db_ != nullptr && db_->mutation_observer() == this) {
    db_->set_mutation_observer(nullptr);
  }
}

uint64_t StorageManager::wal_bytes() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_ != nullptr ? wal_->bytes() : 0;
}

uint64_t StorageManager::wal_appends() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return retired_appends_ + (wal_ != nullptr ? wal_->appends() : 0);
}

uint64_t StorageManager::wal_fsyncs() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return retired_fsyncs_ + (wal_ != nullptr ? wal_->fsyncs() : 0);
}

Status StorageManager::Recover() {
  Stopwatch sw;
  JACKPINE_RETURN_IF_ERROR(vfs_->CreateDir(options_.dir));
  obs::SpanRecorder& recorder = obs::GlobalSpanRecorder();
  const uint64_t trace_id = recorder.NewTraceId();
  obs::Span root = recorder.StartSpan("storage.recover", trace_id);
  root.Annotate("dir", options_.dir);

  RecoveryScratch scratch;

  // Phase 1: the newest complete checkpoint, if any. A snapshot that fails
  // its CRC is unrecoverable — there is no older state to fall back to, and
  // serving a guess would be worse than refusing.
  const std::string snapshot_path = SnapshotPath(options_.dir);
  uint64_t snapshot_last_lsn = 0;
  {
    obs::Span span =
        recorder.StartSpan("storage.snapshot_load", trace_id, root.span_id());
    Result<std::string> bytes = vfs_->ReadFile(snapshot_path);
    if (bytes.ok()) {
      JACKPINE_ASSIGN_OR_RETURN(Snapshot snapshot, DecodeSnapshot(*bytes));
      snapshot_last_lsn = snapshot.last_lsn;
      JACKPINE_RETURN_IF_ERROR(LoadSnapshot(snapshot));
      for (const SnapshotTable& table : snapshot.tables) {
        auto& cols = scratch.indexes[LowerName(table.name)];
        for (uint32_t c : table.indexed_columns) cols.insert(c);
      }
      recovery_.snapshot_loaded = true;
      recovery_.snapshot_tables = snapshot.tables.size();
      for (const SnapshotTable& t : snapshot.tables) {
        recovery_.snapshot_rows += t.rows.size();
      }
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      return DataLossFrom("snapshot unreadable", bytes.status());
    }
    span.Annotate("tables", StrFormat("%llu", (unsigned long long)
                                                  recovery_.snapshot_tables));
    span.Annotate(
        "rows", StrFormat("%llu", (unsigned long long)recovery_.snapshot_rows));
  }

  // Phase 2: replay the log's valid prefix over the snapshot, chopping a
  // torn tail off the file so the next append starts on a clean boundary.
  const std::string wal_path = WalPath(options_.dir);
  uint64_t next_lsn = snapshot_last_lsn + 1;
  {
    obs::Span span =
        recorder.StartSpan("storage.wal_replay", trace_id, root.span_id());
    Result<WalReplay> replayed = ReadWal(vfs_, wal_path);
    if (replayed.ok()) {
      const WalReplay& replay = *replayed;
      if (replay.truncated_bytes > 0) {
        JACKPINE_RETURN_IF_ERROR(
            vfs_->Truncate(wal_path, replay.valid_bytes));
        recovery_.wal_truncated_bytes = replay.truncated_bytes;
      }
      for (const WalRecord& record : replay.records) {
        if (record.lsn <= snapshot_last_lsn) {
          // Already folded into the snapshot: the crash window between
          // snapshot rename and WAL reset leaves these behind.
          ++recovery_.wal_records_skipped;
          continue;
        }
        Status applied = ApplyWalRecordDuringRecovery(record, &scratch);
        if (!applied.ok()) return DataLossFrom("WAL replay apply", applied);
        ++recovery_.wal_records_applied;
      }
      next_lsn = std::max(next_lsn, replay.next_lsn);
    } else if (replayed.status().code() != StatusCode::kNotFound) {
      return replayed.status();
    }
    span.Annotate("applied", StrFormat("%llu", (unsigned long long)
                                                   recovery_.wal_records_applied));
    span.Annotate("truncated_bytes",
                  StrFormat("%llu",
                            (unsigned long long)recovery_.wal_truncated_bytes));
  }

  // Phase 3: rebuild spatial indexes (bulk) with this database's configured
  // kind — the index structure is the SUT's configuration, not part of the
  // durable state, so a data dir moves cleanly between pine-rtree and
  // pine-grid.
  if (db_->options().index_kind != index::IndexKind::kNone) {
    for (const auto& [table_name, columns] : scratch.indexes) {
      engine::Table* table = db_->catalog().GetTable(table_name);
      if (table == nullptr) continue;  // created then never inserted? defensive
      for (size_t column : columns) {
        Status built =
            table->BuildSpatialIndex(column, db_->options().index_kind);
        // An unbuildable index (e.g. a poison kCreateIndex from a foreign
        // or buggy writer) is not data loss: every row is intact and the
        // index is SUT configuration, not durable state. Drop it, loudly —
        // the count surfaces in the recovery table — rather than refusing
        // to start on a dir whose acked data is fully recoverable.
        if (!built.ok()) ++recovery_.indexes_dropped;
      }
    }
  }

  JACKPINE_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(vfs_, wal_path, options_.group_commit_window_s,
                      next_lsn));
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_ = std::move(wal);
  }

  recovery_.recovery_s = sw.ElapsedSeconds();
  recoveries_metric_->Add();
  recovery_latency_metric_->Set(recovery_.recovery_s);
  return Status::Ok();
}

Status StorageManager::LoadSnapshot(const Snapshot& snapshot) {
  for (const SnapshotTable& st : snapshot.tables) {
    JACKPINE_ASSIGN_OR_RETURN(engine::Table * table,
                              db_->catalog().CreateTable(st.name, st.schema));
    for (const engine::Row& row : st.rows) {
      JACKPINE_RETURN_IF_ERROR(table->Append(row));
    }
  }
  return Status::Ok();
}

Status StorageManager::ApplyWalRecordDuringRecovery(const WalRecord& record,
                                                    void* scratch_opaque) {
  auto* scratch = static_cast<RecoveryScratch*>(scratch_opaque);
  switch (record.kind) {
    case WalRecordKind::kCreateTable: {
      JACKPINE_ASSIGN_OR_RETURN(
          engine::Table * table,
          db_->catalog().CreateTable(record.table, record.schema));
      (void)table;
      return Status::Ok();
    }
    case WalRecordKind::kInsert: {
      engine::Table* table = db_->catalog().GetTable(record.table);
      if (table == nullptr) {
        return Status::DataLoss(StrFormat(
            "WAL insert into unknown table '%s'", record.table.c_str()));
      }
      for (const engine::Row& row : record.rows) {
        JACKPINE_RETURN_IF_ERROR(table->Append(row));
      }
      return Status::Ok();
    }
    case WalRecordKind::kUpdate: {
      engine::Table* table = db_->catalog().GetTable(record.table);
      if (table == nullptr || record.rows.size() != 1) {
        return Status::DataLoss(StrFormat(
            "WAL update malformed for table '%s'", record.table.c_str()));
      }
      return table->UpdateRow(static_cast<size_t>(record.row_index),
                              record.rows[0]);
    }
    case WalRecordKind::kDelete: {
      engine::Table* table = db_->catalog().GetTable(record.table);
      if (table == nullptr) {
        return Status::DataLoss(StrFormat(
            "WAL delete from unknown table '%s'", record.table.c_str()));
      }
      return table->DeleteRow(static_cast<size_t>(record.row_index));
    }
    case WalRecordKind::kCreateIndex:
      scratch->indexes[LowerName(record.table)].insert(record.column);
      return Status::Ok();
    case WalRecordKind::kDropIndex:
      scratch->indexes[LowerName(record.table)].erase(record.column);
      return Status::Ok();
    case WalRecordKind::kCheckpoint:
      return Status::Ok();  // barrier: informational
  }
  return Status::DataLoss(
      StrFormat("WAL record with unknown kind %u",
                static_cast<unsigned>(record.kind)));
}

Result<uint64_t> StorageManager::AppendRecord(WalRecord record) {
  if (!failed_.ok()) return failed_;
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  if (wal == nullptr) {
    return Status::Internal("storage: append after Close()");
  }
  Result<uint64_t> lsn = wal->Append(std::move(record));
  if (!lsn.ok()) failed_ = lsn.status();  // fail-stop (mutation_mu_ held)
  return lsn;
}

Result<uint64_t> StorageManager::OnCreateTable(const std::string& name,
                                               const engine::Schema& schema) {
  WalRecord record;
  record.kind = WalRecordKind::kCreateTable;
  record.table = name;
  record.schema = schema;
  return AppendRecord(std::move(record));
}

Result<uint64_t> StorageManager::OnInsert(const std::string& table,
                                          const std::vector<engine::Row>& rows) {
  WalRecord record;
  record.kind = WalRecordKind::kInsert;
  record.table = table;
  record.rows = rows;
  return AppendRecord(std::move(record));
}

Result<uint64_t> StorageManager::OnCreateIndex(const std::string& table,
                                               size_t column) {
  WalRecord record;
  record.kind = WalRecordKind::kCreateIndex;
  record.table = table;
  record.column = static_cast<uint32_t>(column);
  return AppendRecord(std::move(record));
}

Result<uint64_t> StorageManager::OnDropIndex(const std::string& table,
                                             size_t column) {
  WalRecord record;
  record.kind = WalRecordKind::kDropIndex;
  record.table = table;
  record.column = static_cast<uint32_t>(column);
  return AppendRecord(std::move(record));
}

Status StorageManager::WaitDurable(uint64_t ticket) {
  if (ticket == 0) return Status::Ok();
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  if (wal == nullptr) {
    return Status::Internal("storage: WaitDurable after Close()");
  }
  return wal->WaitSynced(ticket);
}

Status StorageManager::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return CheckpointLocked();
}

Status StorageManager::CheckpointLocked() {
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  if (wal == nullptr) {
    return Status::Internal("storage: checkpoint after Close()");
  }
  Stopwatch sw;
  // The mutation mutex is held, so the in-memory catalog is exactly the
  // state of every successfully appended record — including when the writer
  // has fail-stopped (the failing statement never applied). A checkpoint is
  // therefore always safe, and doubles as the recovery path from a full or
  // failing log device: on success the WAL resets and the latch clears.
  const uint64_t last_lsn = wal->appended_lsn();

  Snapshot snapshot;
  snapshot.last_lsn = last_lsn;
  for (const std::string& name : db_->catalog().TableNames()) {
    const engine::Table* table = db_->catalog().GetTable(name);
    if (table == nullptr) continue;
    SnapshotTable st;
    st.name = table->name();
    st.schema = table->schema();
    st.rows.reserve(table->NumRows());
    for (size_t i = 0; i < table->NumRows(); ++i) st.rows.push_back(table->row(i));
    for (size_t col : table->IndexedColumns()) {
      st.indexed_columns.push_back(static_cast<uint32_t>(col));
    }
    snapshot.tables.push_back(std::move(st));
  }
  const std::string encoded = EncodeSnapshot(snapshot);

  // Temp file + fsync + atomic rename + directory fsync: a crash at any
  // point leaves either the old snapshot or the new one, never a mix.
  const std::string tmp_path = JoinPath(options_.dir, kSnapshotTmpName);
  if (vfs_->FileExists(tmp_path)) {
    JACKPINE_RETURN_IF_ERROR(vfs_->Remove(tmp_path));
  }
  {
    JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                              vfs_->OpenAppend(tmp_path));
    JACKPINE_RETURN_IF_ERROR(file->Append(encoded));
    JACKPINE_RETURN_IF_ERROR(file->Sync());
    JACKPINE_RETURN_IF_ERROR(file->Close());
  }
  JACKPINE_RETURN_IF_ERROR(
      vfs_->Rename(tmp_path, SnapshotPath(options_.dir)));
  JACKPINE_RETURN_IF_ERROR(vfs_->SyncDir(options_.dir));

  // The snapshot now covers every appended record; wake their waiters
  // without an fsync, then reset the log. A crash before the truncate
  // re-reads the old records and skips them (lsn <= snapshot.last_lsn).
  wal->MarkDurableThrough(last_lsn);
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    retired_appends_ += wal->appends();
    retired_fsyncs_ += wal->fsyncs();
  }
  wal->Close().code();  // folded into the snapshot; a failed final sync is moot
  const std::string wal_path = WalPath(options_.dir);
  Status reset = vfs_->Truncate(wal_path, 0);
  Result<std::unique_ptr<WalWriter>> reopened =
      reset.ok() ? WalWriter::Open(vfs_, wal_path,
                                   options_.group_commit_window_s, last_lsn + 1)
                 : Result<std::unique_ptr<WalWriter>>(reset);
  if (!reopened.ok()) {
    // Snapshot is durable but the log cannot accept new mutations: latch.
    failed_ = DataLossFrom("WAL reset after checkpoint", reopened.status());
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_.reset();
    return failed_;
  }
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_ = std::move(*reopened);
    wal = wal_;
  }
  failed_ = Status::Ok();

  // Barrier record: marks in the log itself that a snapshot through
  // last_lsn completed (diagnostics; replay treats it as a no-op).
  WalRecord barrier;
  barrier.kind = WalRecordKind::kCheckpoint;
  wal->Append(std::move(barrier)).status().code();

  ++checkpoints_done_;
  checkpoints_metric_->Add();
  checkpoint_latency_metric_->Observe(sw.ElapsedSeconds());
  return Status::Ok();
}

void StorageManager::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  const double interval_s = options_.checkpoint_interval_s;
  // Poll faster than the interval so the WAL-size trigger reacts promptly.
  const auto poll = std::chrono::duration<double>(
      std::min(interval_s, 0.2));
  double since_last_s = 0.0;
  while (!bg_stop_) {
    bg_cv_.wait_for(lock, poll);
    if (bg_stop_) break;
    since_last_s += poll.count();
    const bool interval_due = since_last_s >= interval_s;
    const bool size_due = options_.checkpoint_wal_bytes > 0 &&
                          wal_bytes() >= options_.checkpoint_wal_bytes;
    if (!interval_due && !size_due) continue;
    if (wal_bytes() <= kMagicLen) {  // nothing logged since the last reset
      since_last_s = 0.0;
      continue;
    }
    lock.unlock();
    Checkpoint().code();  // a latched failure surfaces on the next mutation
    lock.lock();
    since_last_s = 0.0;
  }
}

Status StorageManager::Close() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (closed_) return Status::Ok();
    bg_stop_ = true;
    bg_cv_.notify_all();
  }
  if (checkpointer_.joinable()) checkpointer_.join();

  std::lock_guard<std::mutex> lock(mutation_mu_);
  Status result = Status::Ok();
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    if (wal_ == nullptr) {
      closed_ = true;
      if (db_->mutation_observer() == this) db_->set_mutation_observer(nullptr);
      return failed_;
    }
  }
  result = CheckpointLocked();
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    wal = std::move(wal_);
    wal_.reset();
  }
  if (wal != nullptr) {
    const Status closed = wal->Close();
    if (result.ok()) result = closed;
  }
  if (db_->mutation_observer() == this) db_->set_mutation_observer(nullptr);
  closed_ = true;
  return result;
}

}  // namespace jackpine::storage
