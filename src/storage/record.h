// On-disk record formats of jackpine::storage (DESIGN.md "Durability").
//
// Two artefacts share one value codec (geometry as WKB via geom/wkb.h,
// every other value as its tagged natural encoding). Fixed-width integers
// and doubles are memcpy'd in host byte order — the same discipline as
// net/wire.cpp — so a data dir is not portable between hosts of different
// endianness (in practice: every supported target is little-endian):
//
//   WAL record  frame := length:u32 crc:u32(masked CRC32C of payload)
//               payload := kind:u8 lsn:u64 body
//   Snapshot    file := magic:"PSNP0001" crc:u32(masked, of body)
//               length:u64 body
//               body := last_lsn:u64 table_count:u32 table*
//               table := name:str schema rows indexed_columns
//
// Both decoders are as defensive as the wire protocol's: every length is
// validated against the remaining input before any allocation, every read
// is bounds-checked, and corrupted input yields a clean Status — the
// bit-flip and truncation sweeps in tests/storage_test.cpp feed them
// garbage under asan/ubsan to keep that true. The CRC is masked
// (LevelDB-style) so a log of records that themselves contain CRCs never
// stores the fixpoint of its own checksum.

#ifndef JACKPINE_STORAGE_RECORD_H_
#define JACKPINE_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/schema.h"
#include "engine/table.h"

namespace jackpine::storage {

// A WAL frame larger than this is treated as corruption, not an allocation
// request (the same defence as net::kMaxFramePayload).
inline constexpr uint32_t kMaxWalPayload = 64u << 20;  // 64 MiB

// 8-byte magic prefixes; the trailing digits version the format.
inline constexpr char kWalMagic[] = "PWAL0001";
inline constexpr char kSnapshotMagic[] = "PSNP0001";
inline constexpr size_t kMagicLen = 8;

enum class WalRecordKind : uint8_t {
  kCreateTable = 1,  // table + schema
  kInsert = 2,       // table + rows (one acked DML batch)
  kUpdate = 3,       // table + row_index + rows[0] (the replacement row)
  kDelete = 4,       // table + row_index
  kCreateIndex = 5,  // table + column
  kDropIndex = 6,    // table + column
  kCheckpoint = 7,   // barrier: a snapshot through `lsn` completed
};

const char* WalRecordKindName(WalRecordKind kind);

// One logical mutation. Which fields are meaningful depends on `kind` (see
// the enum); unused fields stay default.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kInsert;
  uint64_t lsn = 0;
  std::string table;
  engine::Schema schema;            // kCreateTable
  std::vector<engine::Row> rows;    // kInsert (batch), kUpdate (one row)
  uint64_t row_index = 0;           // kUpdate / kDelete
  uint32_t column = 0;              // kCreateIndex / kDropIndex
};

// Payload codec (no frame). DecodeWalRecord rejects trailing bytes.
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

// Adds the length + masked-CRC frame around an encoded payload.
std::string FrameWalRecord(std::string_view payload);

// One table's persistent state inside a snapshot.
struct SnapshotTable {
  std::string name;
  engine::Schema schema;
  std::vector<engine::Row> rows;
  // Columns that had a spatial index when the snapshot was taken; recovery
  // rebuilds them with the recovering database's own index kind.
  std::vector<uint32_t> indexed_columns;
};

struct Snapshot {
  // Every WAL record with lsn <= last_lsn is already folded into the
  // tables; replay skips them (the crash window between snapshot rename
  // and WAL reset would otherwise double-apply).
  uint64_t last_lsn = 0;
  std::vector<SnapshotTable> tables;
};

// Whole-file codec, magic + CRC frame included.
std::string EncodeSnapshot(const Snapshot& snapshot);
Result<Snapshot> DecodeSnapshot(std::string_view file_bytes);

}  // namespace jackpine::storage

#endif  // JACKPINE_STORAGE_RECORD_H_
