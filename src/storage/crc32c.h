// CRC32C (Castagnoli) — the checksum framing every durable byte of
// jackpine::storage carries. Chosen over CRC32 for its better error
// detection on short records and because it is what most storage systems
// (ext4, LevelDB, iSCSI) standardised on, so test vectors abound.

#ifndef JACKPINE_STORAGE_CRC32C_H_
#define JACKPINE_STORAGE_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace jackpine::storage {

// One-shot CRC32C of `data` (initial CRC 0, standard reflected polynomial
// 0x1EDC6F41, final XOR). Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(std::string_view data);

// Streaming form: `crc` is the value returned by a previous call (or 0 to
// start); equivalent to Crc32c over the concatenation.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

// Masked CRC, LevelDB-style: storing a CRC of data that itself contains
// CRCs is error-prone, so the stored form is rotated and offset. Recovery
// unmasks before comparing.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace jackpine::storage

#endif  // JACKPINE_STORAGE_CRC32C_H_
