file(REMOVE_RECURSE
  "CMakeFiles/tigergen_test.dir/tigergen_test.cpp.o"
  "CMakeFiles/tigergen_test.dir/tigergen_test.cpp.o.d"
  "tigergen_test"
  "tigergen_test.pdb"
  "tigergen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tigergen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
