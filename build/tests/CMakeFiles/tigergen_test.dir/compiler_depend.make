# Empty compiler generated dependencies file for tigergen_test.
# This may be replaced when dependencies are built.
