# Empty dependencies file for de9im_test.
# This may be replaced when dependencies are built.
