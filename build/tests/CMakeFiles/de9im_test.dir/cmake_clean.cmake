file(REMOVE_RECURSE
  "CMakeFiles/de9im_test.dir/de9im_test.cpp.o"
  "CMakeFiles/de9im_test.dir/de9im_test.cpp.o.d"
  "de9im_test"
  "de9im_test.pdb"
  "de9im_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de9im_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
