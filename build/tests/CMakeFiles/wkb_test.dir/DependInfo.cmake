
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wkb_test.cpp" "tests/CMakeFiles/wkb_test.dir/wkb_test.cpp.o" "gcc" "tests/CMakeFiles/wkb_test.dir/wkb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_tigergen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
