file(REMOVE_RECURSE
  "CMakeFiles/algo_basic_test.dir/algo_basic_test.cpp.o"
  "CMakeFiles/algo_basic_test.dir/algo_basic_test.cpp.o.d"
  "algo_basic_test"
  "algo_basic_test.pdb"
  "algo_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
