# Empty dependencies file for algo_basic_test.
# This may be replaced when dependencies are built.
