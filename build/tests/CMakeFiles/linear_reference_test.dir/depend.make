# Empty dependencies file for linear_reference_test.
# This may be replaced when dependencies are built.
