file(REMOVE_RECURSE
  "CMakeFiles/linear_reference_test.dir/linear_reference_test.cpp.o"
  "CMakeFiles/linear_reference_test.dir/linear_reference_test.cpp.o.d"
  "linear_reference_test"
  "linear_reference_test.pdb"
  "linear_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
