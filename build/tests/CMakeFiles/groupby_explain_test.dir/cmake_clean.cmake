file(REMOVE_RECURSE
  "CMakeFiles/groupby_explain_test.dir/groupby_explain_test.cpp.o"
  "CMakeFiles/groupby_explain_test.dir/groupby_explain_test.cpp.o.d"
  "groupby_explain_test"
  "groupby_explain_test.pdb"
  "groupby_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
