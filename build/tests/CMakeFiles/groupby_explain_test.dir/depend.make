# Empty dependencies file for groupby_explain_test.
# This may be replaced when dependencies are built.
