file(REMOVE_RECURSE
  "CMakeFiles/core_harness_test.dir/core_harness_test.cpp.o"
  "CMakeFiles/core_harness_test.dir/core_harness_test.cpp.o.d"
  "core_harness_test"
  "core_harness_test.pdb"
  "core_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
