file(REMOVE_RECURSE
  "libjackpine_algo.a"
)
