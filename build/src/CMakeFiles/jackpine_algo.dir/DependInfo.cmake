
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/affine.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/affine.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/affine.cpp.o.d"
  "/root/repo/src/algo/buffer.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/buffer.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/buffer.cpp.o.d"
  "/root/repo/src/algo/convex_hull.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/convex_hull.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/convex_hull.cpp.o.d"
  "/root/repo/src/algo/distance.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/distance.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/distance.cpp.o.d"
  "/root/repo/src/algo/linear_reference.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/linear_reference.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/linear_reference.cpp.o.d"
  "/root/repo/src/algo/measures.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/measures.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/measures.cpp.o.d"
  "/root/repo/src/algo/orientation.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/orientation.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/orientation.cpp.o.d"
  "/root/repo/src/algo/overlay.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/overlay.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/overlay.cpp.o.d"
  "/root/repo/src/algo/point_in_polygon.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/point_in_polygon.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/point_in_polygon.cpp.o.d"
  "/root/repo/src/algo/segment_intersection.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/segment_intersection.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/segment_intersection.cpp.o.d"
  "/root/repo/src/algo/simplify.cpp" "src/CMakeFiles/jackpine_algo.dir/algo/simplify.cpp.o" "gcc" "src/CMakeFiles/jackpine_algo.dir/algo/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
