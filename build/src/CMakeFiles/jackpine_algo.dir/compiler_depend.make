# Empty compiler generated dependencies file for jackpine_algo.
# This may be replaced when dependencies are built.
