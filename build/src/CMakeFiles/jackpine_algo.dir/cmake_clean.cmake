file(REMOVE_RECURSE
  "CMakeFiles/jackpine_algo.dir/algo/affine.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/affine.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/buffer.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/buffer.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/convex_hull.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/convex_hull.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/distance.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/distance.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/linear_reference.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/linear_reference.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/measures.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/measures.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/orientation.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/orientation.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/overlay.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/overlay.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/point_in_polygon.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/point_in_polygon.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/segment_intersection.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/segment_intersection.cpp.o.d"
  "CMakeFiles/jackpine_algo.dir/algo/simplify.cpp.o"
  "CMakeFiles/jackpine_algo.dir/algo/simplify.cpp.o.d"
  "libjackpine_algo.a"
  "libjackpine_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
