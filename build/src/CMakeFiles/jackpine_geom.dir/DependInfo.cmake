
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/envelope.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/envelope.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/envelope.cpp.o.d"
  "/root/repo/src/geom/geojson.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/geojson.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/geojson.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/geometry.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/geometry.cpp.o.d"
  "/root/repo/src/geom/wkb.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/wkb.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/wkb.cpp.o.d"
  "/root/repo/src/geom/wkt_reader.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/wkt_reader.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/wkt_reader.cpp.o.d"
  "/root/repo/src/geom/wkt_writer.cpp" "src/CMakeFiles/jackpine_geom.dir/geom/wkt_writer.cpp.o" "gcc" "src/CMakeFiles/jackpine_geom.dir/geom/wkt_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
