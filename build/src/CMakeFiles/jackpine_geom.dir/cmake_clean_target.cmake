file(REMOVE_RECURSE
  "libjackpine_geom.a"
)
