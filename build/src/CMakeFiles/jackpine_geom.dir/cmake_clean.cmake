file(REMOVE_RECURSE
  "CMakeFiles/jackpine_geom.dir/geom/envelope.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/envelope.cpp.o.d"
  "CMakeFiles/jackpine_geom.dir/geom/geojson.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/geojson.cpp.o.d"
  "CMakeFiles/jackpine_geom.dir/geom/geometry.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/geometry.cpp.o.d"
  "CMakeFiles/jackpine_geom.dir/geom/wkb.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/wkb.cpp.o.d"
  "CMakeFiles/jackpine_geom.dir/geom/wkt_reader.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/wkt_reader.cpp.o.d"
  "CMakeFiles/jackpine_geom.dir/geom/wkt_writer.cpp.o"
  "CMakeFiles/jackpine_geom.dir/geom/wkt_writer.cpp.o.d"
  "libjackpine_geom.a"
  "libjackpine_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
