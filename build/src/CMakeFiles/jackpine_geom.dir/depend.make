# Empty dependencies file for jackpine_geom.
# This may be replaced when dependencies are built.
