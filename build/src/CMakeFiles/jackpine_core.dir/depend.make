# Empty dependencies file for jackpine_core.
# This may be replaced when dependencies are built.
