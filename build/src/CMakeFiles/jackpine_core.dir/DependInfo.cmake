
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/loader.cpp" "src/CMakeFiles/jackpine_core.dir/core/loader.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/loader.cpp.o.d"
  "/root/repo/src/core/micro_suite.cpp" "src/CMakeFiles/jackpine_core.dir/core/micro_suite.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/micro_suite.cpp.o.d"
  "/root/repo/src/core/query_spec.cpp" "src/CMakeFiles/jackpine_core.dir/core/query_spec.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/query_spec.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/jackpine_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/jackpine_core.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/CMakeFiles/jackpine_core.dir/core/scenarios.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/scenarios.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/jackpine_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/jackpine_core.dir/core/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_tigergen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
