file(REMOVE_RECURSE
  "CMakeFiles/jackpine_core.dir/core/loader.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/loader.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/micro_suite.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/micro_suite.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/query_spec.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/query_spec.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/report.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/report.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/runner.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/scenarios.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/scenarios.cpp.o.d"
  "CMakeFiles/jackpine_core.dir/core/stats.cpp.o"
  "CMakeFiles/jackpine_core.dir/core/stats.cpp.o.d"
  "libjackpine_core.a"
  "libjackpine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
