file(REMOVE_RECURSE
  "libjackpine_core.a"
)
