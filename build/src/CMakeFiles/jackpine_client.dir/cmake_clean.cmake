file(REMOVE_RECURSE
  "CMakeFiles/jackpine_client.dir/client/client.cpp.o"
  "CMakeFiles/jackpine_client.dir/client/client.cpp.o.d"
  "libjackpine_client.a"
  "libjackpine_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
