file(REMOVE_RECURSE
  "libjackpine_client.a"
)
