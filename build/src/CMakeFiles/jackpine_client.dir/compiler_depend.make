# Empty compiler generated dependencies file for jackpine_client.
# This may be replaced when dependencies are built.
