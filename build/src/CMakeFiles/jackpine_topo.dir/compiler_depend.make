# Empty compiler generated dependencies file for jackpine_topo.
# This may be replaced when dependencies are built.
