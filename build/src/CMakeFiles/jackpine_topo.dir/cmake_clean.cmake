file(REMOVE_RECURSE
  "CMakeFiles/jackpine_topo.dir/topo/de9im.cpp.o"
  "CMakeFiles/jackpine_topo.dir/topo/de9im.cpp.o.d"
  "CMakeFiles/jackpine_topo.dir/topo/predicates.cpp.o"
  "CMakeFiles/jackpine_topo.dir/topo/predicates.cpp.o.d"
  "CMakeFiles/jackpine_topo.dir/topo/relate.cpp.o"
  "CMakeFiles/jackpine_topo.dir/topo/relate.cpp.o.d"
  "libjackpine_topo.a"
  "libjackpine_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
