
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/de9im.cpp" "src/CMakeFiles/jackpine_topo.dir/topo/de9im.cpp.o" "gcc" "src/CMakeFiles/jackpine_topo.dir/topo/de9im.cpp.o.d"
  "/root/repo/src/topo/predicates.cpp" "src/CMakeFiles/jackpine_topo.dir/topo/predicates.cpp.o" "gcc" "src/CMakeFiles/jackpine_topo.dir/topo/predicates.cpp.o.d"
  "/root/repo/src/topo/relate.cpp" "src/CMakeFiles/jackpine_topo.dir/topo/relate.cpp.o" "gcc" "src/CMakeFiles/jackpine_topo.dir/topo/relate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
