file(REMOVE_RECURSE
  "libjackpine_topo.a"
)
