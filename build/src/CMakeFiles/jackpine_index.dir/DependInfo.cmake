
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid_index.cpp" "src/CMakeFiles/jackpine_index.dir/index/grid_index.cpp.o" "gcc" "src/CMakeFiles/jackpine_index.dir/index/grid_index.cpp.o.d"
  "/root/repo/src/index/linear_scan.cpp" "src/CMakeFiles/jackpine_index.dir/index/linear_scan.cpp.o" "gcc" "src/CMakeFiles/jackpine_index.dir/index/linear_scan.cpp.o.d"
  "/root/repo/src/index/rtree.cpp" "src/CMakeFiles/jackpine_index.dir/index/rtree.cpp.o" "gcc" "src/CMakeFiles/jackpine_index.dir/index/rtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
