# Empty dependencies file for jackpine_index.
# This may be replaced when dependencies are built.
