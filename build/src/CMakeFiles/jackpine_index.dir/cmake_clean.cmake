file(REMOVE_RECURSE
  "CMakeFiles/jackpine_index.dir/index/grid_index.cpp.o"
  "CMakeFiles/jackpine_index.dir/index/grid_index.cpp.o.d"
  "CMakeFiles/jackpine_index.dir/index/linear_scan.cpp.o"
  "CMakeFiles/jackpine_index.dir/index/linear_scan.cpp.o.d"
  "CMakeFiles/jackpine_index.dir/index/rtree.cpp.o"
  "CMakeFiles/jackpine_index.dir/index/rtree.cpp.o.d"
  "libjackpine_index.a"
  "libjackpine_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
