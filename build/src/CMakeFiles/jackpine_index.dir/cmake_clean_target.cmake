file(REMOVE_RECURSE
  "libjackpine_index.a"
)
