# Empty compiler generated dependencies file for jackpine_index.
# This may be replaced when dependencies are built.
