file(REMOVE_RECURSE
  "CMakeFiles/jackpine_tigergen.dir/tigergen/csv_io.cpp.o"
  "CMakeFiles/jackpine_tigergen.dir/tigergen/csv_io.cpp.o.d"
  "CMakeFiles/jackpine_tigergen.dir/tigergen/tigergen.cpp.o"
  "CMakeFiles/jackpine_tigergen.dir/tigergen/tigergen.cpp.o.d"
  "libjackpine_tigergen.a"
  "libjackpine_tigergen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_tigergen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
