
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tigergen/csv_io.cpp" "src/CMakeFiles/jackpine_tigergen.dir/tigergen/csv_io.cpp.o" "gcc" "src/CMakeFiles/jackpine_tigergen.dir/tigergen/csv_io.cpp.o.d"
  "/root/repo/src/tigergen/tigergen.cpp" "src/CMakeFiles/jackpine_tigergen.dir/tigergen/tigergen.cpp.o" "gcc" "src/CMakeFiles/jackpine_tigergen.dir/tigergen/tigergen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
