# Empty dependencies file for jackpine_tigergen.
# This may be replaced when dependencies are built.
