file(REMOVE_RECURSE
  "libjackpine_tigergen.a"
)
