file(REMOVE_RECURSE
  "libjackpine_common.a"
)
