# Empty dependencies file for jackpine_common.
# This may be replaced when dependencies are built.
