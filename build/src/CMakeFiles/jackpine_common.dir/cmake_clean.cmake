file(REMOVE_RECURSE
  "CMakeFiles/jackpine_common.dir/common/random.cpp.o"
  "CMakeFiles/jackpine_common.dir/common/random.cpp.o.d"
  "CMakeFiles/jackpine_common.dir/common/status.cpp.o"
  "CMakeFiles/jackpine_common.dir/common/status.cpp.o.d"
  "CMakeFiles/jackpine_common.dir/common/stopwatch.cpp.o"
  "CMakeFiles/jackpine_common.dir/common/stopwatch.cpp.o.d"
  "CMakeFiles/jackpine_common.dir/common/string_util.cpp.o"
  "CMakeFiles/jackpine_common.dir/common/string_util.cpp.o.d"
  "libjackpine_common.a"
  "libjackpine_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
