
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/catalog.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/catalog.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/catalog.cpp.o.d"
  "/root/repo/src/engine/database.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/database.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/database.cpp.o.d"
  "/root/repo/src/engine/executor.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/executor.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/executor.cpp.o.d"
  "/root/repo/src/engine/expression.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/expression.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/expression.cpp.o.d"
  "/root/repo/src/engine/functions.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/functions.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/functions.cpp.o.d"
  "/root/repo/src/engine/planner.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/planner.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/planner.cpp.o.d"
  "/root/repo/src/engine/schema.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/schema.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/schema.cpp.o.d"
  "/root/repo/src/engine/sql_lexer.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/sql_lexer.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/sql_lexer.cpp.o.d"
  "/root/repo/src/engine/sql_parser.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/sql_parser.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/sql_parser.cpp.o.d"
  "/root/repo/src/engine/table.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/table.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/table.cpp.o.d"
  "/root/repo/src/engine/value.cpp" "src/CMakeFiles/jackpine_engine.dir/engine/value.cpp.o" "gcc" "src/CMakeFiles/jackpine_engine.dir/engine/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jackpine_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jackpine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
