file(REMOVE_RECURSE
  "libjackpine_engine.a"
)
