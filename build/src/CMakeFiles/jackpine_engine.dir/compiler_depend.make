# Empty compiler generated dependencies file for jackpine_engine.
# This may be replaced when dependencies are built.
