file(REMOVE_RECURSE
  "CMakeFiles/jackpine_engine.dir/engine/catalog.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/catalog.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/database.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/database.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/executor.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/executor.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/expression.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/expression.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/functions.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/functions.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/planner.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/planner.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/schema.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/schema.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/sql_lexer.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/sql_lexer.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/sql_parser.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/sql_parser.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/table.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/table.cpp.o.d"
  "CMakeFiles/jackpine_engine.dir/engine/value.cpp.o"
  "CMakeFiles/jackpine_engine.dir/engine/value.cpp.o.d"
  "libjackpine_engine.a"
  "libjackpine_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jackpine_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
