# Empty compiler generated dependencies file for bench_index_structures.
# This may be replaced when dependencies are built.
