file(REMOVE_RECURSE
  "CMakeFiles/bench_index_structures.dir/bench_index_structures.cpp.o"
  "CMakeFiles/bench_index_structures.dir/bench_index_structures.cpp.o.d"
  "bench_index_structures"
  "bench_index_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
