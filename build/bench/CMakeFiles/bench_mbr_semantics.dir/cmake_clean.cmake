file(REMOVE_RECURSE
  "CMakeFiles/bench_mbr_semantics.dir/bench_mbr_semantics.cpp.o"
  "CMakeFiles/bench_mbr_semantics.dir/bench_mbr_semantics.cpp.o.d"
  "bench_mbr_semantics"
  "bench_mbr_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mbr_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
