# Empty compiler generated dependencies file for bench_mbr_semantics.
# This may be replaced when dependencies are built.
