file(REMOVE_RECURSE
  "CMakeFiles/bench_index_effect.dir/bench_index_effect.cpp.o"
  "CMakeFiles/bench_index_effect.dir/bench_index_effect.cpp.o.d"
  "bench_index_effect"
  "bench_index_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
