# Empty dependencies file for bench_index_effect.
# This may be replaced when dependencies are built.
