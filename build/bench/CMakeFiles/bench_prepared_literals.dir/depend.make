# Empty dependencies file for bench_prepared_literals.
# This may be replaced when dependencies are built.
