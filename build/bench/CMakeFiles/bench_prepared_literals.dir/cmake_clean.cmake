file(REMOVE_RECURSE
  "CMakeFiles/bench_prepared_literals.dir/bench_prepared_literals.cpp.o"
  "CMakeFiles/bench_prepared_literals.dir/bench_prepared_literals.cpp.o.d"
  "bench_prepared_literals"
  "bench_prepared_literals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prepared_literals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
