file(REMOVE_RECURSE
  "CMakeFiles/bench_macro_scenarios.dir/bench_macro_scenarios.cpp.o"
  "CMakeFiles/bench_macro_scenarios.dir/bench_macro_scenarios.cpp.o.d"
  "bench_macro_scenarios"
  "bench_macro_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_macro_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
