# Empty dependencies file for bench_macro_scenarios.
# This may be replaced when dependencies are built.
