file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cpp.o"
  "CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cpp.o.d"
  "bench_micro_topology"
  "bench_micro_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
