file(REMOVE_RECURSE
  "CMakeFiles/pinedb_shell.dir/pinedb_shell.cpp.o"
  "CMakeFiles/pinedb_shell.dir/pinedb_shell.cpp.o.d"
  "pinedb_shell"
  "pinedb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinedb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
