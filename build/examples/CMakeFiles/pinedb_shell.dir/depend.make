# Empty dependencies file for pinedb_shell.
# This may be replaced when dependencies are built.
