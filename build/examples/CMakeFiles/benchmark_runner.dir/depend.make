# Empty dependencies file for benchmark_runner.
# This may be replaced when dependencies are built.
