file(REMOVE_RECURSE
  "CMakeFiles/gis_explorer.dir/gis_explorer.cpp.o"
  "CMakeFiles/gis_explorer.dir/gis_explorer.cpp.o.d"
  "gis_explorer"
  "gis_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
