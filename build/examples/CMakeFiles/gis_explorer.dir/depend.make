# Empty dependencies file for gis_explorer.
# This may be replaced when dependencies are built.
