// Quickstart: open a SUT connection, load a small synthetic TIGER dataset,
// and run a few spatial SQL queries through the JDBC-like client API.
//
//   ./build/examples/quickstart [sut-name]
//
// SUT names: pine-rtree (default), pine-mbr, pine-grid, pine-scan.

#include <cstdio>
#include <string>

#include "client/client.h"
#include "core/loader.h"

using jackpine::client::Connection;
using jackpine::client::ResultSet;
using jackpine::client::Statement;

int main(int argc, char** argv) {
  const std::string sut = argc > 1 ? argv[1] : "pine-rtree";
  auto conn_result = Connection::Open("jackpine:" + sut);
  if (!conn_result.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 conn_result.status().ToString().c_str());
    return 1;
  }
  Connection conn = std::move(conn_result).value();
  std::printf("connected to %s (%s)\n", conn.config().name.c_str(),
              conn.config().role.c_str());

  // Generate and load a small dataset (deterministic in seed + scale).
  jackpine::tigergen::TigerGenOptions gen;
  gen.seed = 42;
  gen.scale = 0.25;
  auto load = jackpine::core::GenerateAndLoad(gen, &conn);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows (insert %.1fms, index %.1fms)\n", load->rows,
              load->insert_s * 1e3, load->index_s * 1e3);

  Statement stmt = conn.CreateStatement();

  // 1. How many roads are there per class?
  for (const char* mtfcc : {"S1100", "S1200", "S1400"}) {
    std::string sql = "SELECT COUNT(*) FROM edges WHERE mtfcc = '";
    sql += mtfcc;
    sql += "'";
    auto rs = stmt.ExecuteQuery(sql);
    if (rs.ok() && rs->Next()) {
      std::printf("roads of class %s: %lld\n", mtfcc,
                  static_cast<long long>(rs->GetInt64(0).value_or(-1)));
    }
  }

  // 2. A spatial join: which parks touch water?
  auto rs = stmt.ExecuteQuery(
      "SELECT COUNT(*) FROM arealm a, areawater w "
      "WHERE ST_Intersects(a.geom, w.geom)");
  if (!rs.ok()) {
    std::fprintf(stderr, "query failed: %s\n", rs.status().ToString().c_str());
    return 1;
  }
  if (rs->Next()) {
    std::printf("parks intersecting water: %lld\n",
                static_cast<long long>(rs->GetInt64(0).value_or(-1)));
  }

  // 3. Nearest roads to a point (k-NN through the index).
  rs = stmt.ExecuteQuery(
      "SELECT fullname, ST_Distance(geom, ST_MakePoint(50, 50)) AS d "
      "FROM edges ORDER BY ST_Distance(geom, ST_MakePoint(50, 50)) LIMIT 3");
  if (rs.ok()) {
    std::printf("three roads nearest to (50, 50):\n");
    while (rs->Next()) {
      std::printf("  %-16s %.4f\n", rs->GetString(0).value_or("?").c_str(),
                  rs->GetDouble(1).value_or(-1));
    }
  }

  // 4. Spatial analysis: total road length inside a window.
  rs = stmt.ExecuteQuery(
      "SELECT SUM(ST_Length(ST_Intersection(geom, "
      "ST_MakeEnvelope(40, 40, 60, 60)))) FROM edges "
      "WHERE ST_Intersects(geom, ST_MakeEnvelope(40, 40, 60, 60))");
  if (rs.ok() && rs->Next()) {
    std::printf("road length inside window: %.3f\n",
                rs->GetDouble(0).value_or(-1));
  }

  std::printf("engine stats: %llu index probes, %llu candidates, "
              "%llu refine checks, %llu heap rows scanned\n",
              static_cast<unsigned long long>(conn.database().stats().index_probes),
              static_cast<unsigned long long>(conn.database().stats().index_candidates),
              static_cast<unsigned long long>(conn.database().stats().refine_checks),
              static_cast<unsigned long long>(conn.database().stats().rows_scanned));
  return 0;
}
