// GIS explorer example: map browsing, geocoding and reverse geocoding against
// the synthetic TIGER dataset — the paper's "map search and browsing"
// workflow as an application.
//
//   ./build/examples/gis_explorer [sut-name]

#include <cstdio>
#include <string>

#include "client/client.h"
#include "common/string_util.h"
#include "core/loader.h"

using jackpine::StrFormat;
using jackpine::client::Connection;
using jackpine::client::Statement;

namespace {

// Renders a coarse ASCII map of road density inside a window.
void RenderAsciiMap(Statement* stmt, double cx, double cy, double half) {
  constexpr int kW = 56;
  constexpr int kH = 20;
  std::printf("viewport [%.1f..%.1f] x [%.1f..%.1f]\n", cx - half, cx + half,
              cy - half, cy + half);
  for (int row = kH - 1; row >= 0; --row) {
    std::string line;
    for (int col = 0; col < kW; ++col) {
      const double x0 = cx - half + 2 * half * col / kW;
      const double x1 = cx - half + 2 * half * (col + 1) / kW;
      const double y0 = cy - half + 2 * half * row / kH;
      const double y1 = cy - half + 2 * half * (row + 1) / kH;
      auto rs = stmt->ExecuteQuery(StrFormat(
          "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
          "ST_MakeEnvelope(%.4f, %.4f, %.4f, %.4f))",
          x0, y0, x1, y1));
      long long n = 0;
      if (rs.ok() && rs->Next()) n = rs->GetInt64(0).value_or(0);
      line += n == 0 ? ' ' : (n < 3 ? '.' : (n < 8 ? '+' : '#'));
    }
    std::printf("|%s|\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sut = argc > 1 ? argv[1] : "pine-rtree";
  auto conn_result = Connection::Open("jackpine:" + sut);
  if (!conn_result.ok()) {
    std::fprintf(stderr, "%s\n", conn_result.status().ToString().c_str());
    return 1;
  }
  Connection conn = std::move(conn_result).value();
  jackpine::tigergen::TigerGenOptions gen;
  gen.seed = 7;
  gen.scale = 0.5;
  if (auto load = jackpine::core::GenerateAndLoad(gen, &conn); !load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.status().ToString().c_str());
    return 1;
  }
  Statement stmt = conn.CreateStatement();

  // 1. Search for a school by name prefix-ish match (exact name here).
  auto rs = stmt.ExecuteQuery(
      "SELECT fullname, ST_X(geom), ST_Y(geom) FROM pointlm "
      "WHERE mtfcc = 'K2543' LIMIT 1");
  double cx = 50, cy = 50;
  if (rs.ok() && rs->Next()) {
    std::printf("found landmark: %s\n", rs->GetString(0).value_or("?").c_str());
    cx = rs->GetDouble(1).value_or(50);
    cy = rs->GetDouble(2).value_or(50);
  }

  // 2. Browse: road-density map around it.
  RenderAsciiMap(&stmt, cx, cy, 8.0);

  // 3. Reverse geocode the viewport centre.
  rs = stmt.ExecuteQuery(StrFormat(
      "SELECT fullname, lfromadd + (ltoadd - lfromadd) * "
      "ST_LineLocatePoint(geom, ST_MakePoint(%.4f, %.4f)) "
      "FROM edges ORDER BY ST_Distance(geom, ST_MakePoint(%.4f, %.4f)) "
      "LIMIT 1",
      cx, cy, cx, cy));
  if (rs.ok() && rs->Next()) {
    std::printf("nearest address: ~%.0f %s\n", rs->GetDouble(1).value_or(0),
                rs->GetString(0).value_or("?").c_str());

    // 4. Geocode that street back: middle of its address range.
    const std::string street = rs->GetString(0).value_or("");
    auto geo = stmt.ExecuteQuery(StrFormat(
        "SELECT ST_AsText(ST_LineInterpolatePoint(geom, 0.5)), lfromadd, "
        "ltoadd FROM edges WHERE fullname = '%s' LIMIT 1",
        street.c_str()));
    if (geo.ok() && geo->Next()) {
      std::printf("geocode midpoint of %s: %s (range %lld-%lld)\n",
                  street.c_str(), geo->GetString(0).value_or("?").c_str(),
                  static_cast<long long>(geo->GetInt64(1).value_or(0)),
                  static_cast<long long>(geo->GetInt64(2).value_or(0)));
    }
  }
  return 0;
}
