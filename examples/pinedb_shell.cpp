// pinedb_shell: an interactive SQL shell over a loaded SUT — the
// "developers poking at their spatial database" use case from the paper's
// introduction.
//
//   ./build/examples/pinedb_shell [sut-name] [--scale S] [--csv DIR]
//                                 [--no-load]
//
// --no-load skips the startup dataset load — for poking a remote pinedb
// that already holds state (e.g. one recovered from --data-dir).
//
// Reads one SQL statement per line (EXPLAIN and EXPLAIN ANALYZE work too).
// Meta commands:
//   \tables          list tables
//   \stats           session trace + engine counters since the last \stats,
//                    then the process-wide metrics registry
//   \statements      per-fingerprint statement statistics for everything
//                    this shell session executed (calls, errors, latency,
//                    rows) — pg_stat_statements at the prompt
//   \prom            the metrics registry in Prometheus text exposition
//                    format (counters, gauges, histogram buckets)
//   \timing on|off   toggle per-query timing (default on)
//   \quit            exit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "client/client.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/loader.h"
#include "engine/sql_normalize.h"
#include "obs/metrics.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "net/remote_driver.h"
#include "tigergen/csv_io.h"

using namespace jackpine;  // example code; the library itself never does this

int main(int argc, char** argv) {
  // Explicit registration: the linker may drop the remote driver's
  // self-registering static when nothing else references that TU, and the
  // shell is the tool of choice for poking a remote pinedb.
  net::RegisterRemoteDriver();
  std::string sut = "pine-rtree";
  double scale = 0.25;
  std::string csv_dir;
  bool no_load = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
      csv_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-load")) {
      no_load = true;
    } else {
      sut = argv[i];
    }
  }

  auto conn_result = client::Connection::Open("jackpine:" + sut);
  if (!conn_result.ok()) {
    std::fprintf(stderr, "%s\n", conn_result.status().ToString().c_str());
    return 1;
  }
  client::Connection conn = std::move(conn_result).value();

  if (no_load) {
    std::printf("connected to %s without loading a dataset\n", sut.c_str());
  } else if (!csv_dir.empty()) {
    auto dataset = tigergen::LoadDatasetCsv(csv_dir);
    if (!dataset.ok()) {
      std::fprintf(stderr, "CSV load failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    if (auto t = core::LoadDataset(*dataset, &conn); !t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu rows from %s into %s\n", dataset->TotalRows(),
                csv_dir.c_str(), sut.c_str());
  } else {
    tigergen::TigerGenOptions gen;
    gen.scale = scale;
    if (auto t = core::GenerateAndLoad(gen, &conn); !t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded synthetic dataset (scale %.2f) into %s\n", scale,
                sut.c_str());
  }
  std::printf("tables: county, edges, pointlm, arealm, areawater\n");
  std::printf("type SQL, or \\tables \\stats \\statements \\prom \\timing \\quit\n");

  client::Statement stmt = conn.CreateStatement();
  // Per-fingerprint tallies for everything this shell executes; \statements
  // prints the most-called rows. Registry-less: the shell's own counts stay
  // distinct from any server-side statistics it might be talking to.
  obs::StatementStats::Options stmt_stats_options;
  stmt_stats_options.capacity = 256;
  obs::StatementStats statement_stats(stmt_stats_options);
  // Accumulates across queries; \stats prints and resets it.
  obs::QueryTrace session_trace;
  stmt.SetTrace(&session_trace);
  bool timing = true;
  std::string line;
  while (true) {
    std::printf("%s> ", sut.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string input(StripAscii(line));
    if (input.empty()) continue;
    if (input == "\\quit" || input == "\\q") break;
    if (input == "\\tables") {
      for (const std::string& name : conn.database().catalog().TableNames()) {
        const engine::Table* table = conn.database().catalog().GetTable(name);
        std::printf("  %-12s %6zu rows  %s\n", name.c_str(), table->NumRows(),
                    table->schema().ToString().c_str());
      }
      continue;
    }
    if (input == "\\stats") {
      std::printf("  session trace: %s\n", session_trace.ToString().c_str());
      const engine::ExecStats& s = conn.database().stats();
      std::printf(
          "  index probes %llu, candidates %llu, refine checks %llu, "
          "heap rows scanned %llu\n",
          static_cast<unsigned long long>(s.index_probes),
          static_cast<unsigned long long>(s.index_candidates),
          static_cast<unsigned long long>(s.refine_checks),
          static_cast<unsigned long long>(s.rows_scanned));
      std::printf("%s", obs::GlobalRegistry().Render().c_str());
      session_trace.Reset();
      conn.database().ResetStats();
      continue;
    }
    if (input == "\\statements") {
      const auto rows = statement_stats.Snapshot();
      if (rows.empty()) {
        std::printf("  no statements recorded yet\n");
        continue;
      }
      std::printf("  %-8s %-7s %-10s %-10s %-8s  %s\n", "calls", "errors",
                  "mean_ms", "p95_ms", "rows", "fingerprint");
      for (const auto& row : rows) {
        const double mean_ms =
            row.calls > 0 ? row.latency.sum / row.calls * 1e3 : 0.0;
        std::printf("  %-8llu %-7llu %-10.3f %-10.3f %-8llu  %s\n",
                    static_cast<unsigned long long>(row.calls),
                    static_cast<unsigned long long>(row.errors),
                    mean_ms, row.latency.Quantile(0.95) * 1e3,
                    static_cast<unsigned long long>(row.rows_returned),
                    row.fingerprint.c_str());
      }
      continue;
    }
    if (input == "\\prom") {
      // In-process exposition: full histogram bucket structure, unlike the
      // flattened `pinedb stats --prom` wire scrape.
      std::printf("%s", obs::GlobalRegistry().RenderProm().c_str());
      continue;
    }
    if (StartsWith(input, "\\timing")) {
      timing = !EndsWith(input, "off");
      std::printf("  timing %s\n", timing ? "on" : "off");
      continue;
    }
    if (input[0] == '\\') {
      std::printf("  unknown meta command\n");
      continue;
    }

    Stopwatch watch;
    auto rs = stmt.ExecuteQuery(input);
    const double elapsed_ms = watch.ElapsedMillis();
    obs::StatementUpdate stmt_update;
    stmt_update.code = rs.ok() ? StatusCode::kOk : rs.status().code();
    stmt_update.latency_s = elapsed_ms / 1e3;
    stmt_update.rows_returned = rs.ok() ? rs->RowCount() : 0;
    statement_stats.Record(engine::SqlFingerprint(input), stmt_update);
    if (!rs.ok()) {
      std::printf("ERROR: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s", rs->raw().ToString(/*max_rows=*/25).c_str());
    if (timing) {
      std::printf("(%zu rows, %.3f ms)\n", rs->RowCount(), elapsed_ms);
    }
  }
  return 0;
}
