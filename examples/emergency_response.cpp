// Emergency response example: the toxic-spill workflow from the paper's
// macro scenarios, written as an application against the public API.
//
//   ./build/examples/emergency_response [x y radius]
//
// Given a spill site, the app reports the affected roads, the landmarks to
// evacuate, threatened water bodies, the closest hospitals, and the total
// road mileage to close.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/client.h"
#include "common/string_util.h"
#include "core/loader.h"

using jackpine::StrFormat;
using jackpine::client::Connection;
using jackpine::client::Statement;

int main(int argc, char** argv) {
  const double x = argc > 1 ? std::atof(argv[1]) : 48.0;
  const double y = argc > 2 ? std::atof(argv[2]) : 52.0;
  const double radius = argc > 3 ? std::atof(argv[3]) : 2.5;

  Connection conn =
      Connection::Open(jackpine::client::StandardSuts().front());
  jackpine::tigergen::TigerGenOptions gen;
  gen.seed = 42;
  gen.scale = 0.5;
  auto load = jackpine::core::GenerateAndLoad(gen, &conn);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.status().ToString().c_str());
    return 1;
  }
  Statement stmt = conn.CreateStatement();
  const std::string site = StrFormat("ST_MakePoint(%.4f, %.4f)", x, y);
  std::printf("== Toxic spill at (%.2f, %.2f), plume radius %.2f ==\n\n", x, y,
              radius);

  auto count_query = [&](const std::string& sql) -> long long {
    auto rs = stmt.ExecuteQuery(sql);
    if (!rs.ok() || !rs->Next()) return -1;
    return static_cast<long long>(rs->GetInt64(0).value_or(-1));
  };

  std::printf("roads inside the plume:      %lld\n",
              count_query(StrFormat(
                  "SELECT COUNT(*) FROM edges WHERE ST_DWithin(geom, %s, %.4f)",
                  site.c_str(), radius)));
  std::printf("water bodies within 2x:      %lld\n",
              count_query(StrFormat("SELECT COUNT(*) FROM areawater WHERE "
                                    "ST_DWithin(geom, %s, %.4f)",
                                    site.c_str(), 2 * radius)));

  auto rs = stmt.ExecuteQuery(
      StrFormat("SELECT fullname, mtfcc FROM pointlm WHERE "
                "ST_DWithin(geom, %s, %.4f)",
                site.c_str(), radius));
  if (rs.ok()) {
    std::printf("\nlandmarks to evacuate (%zu):\n", rs->RowCount());
    while (rs->Next()) {
      std::printf("  %-28s [%s]\n", rs->GetString(0).value_or("?").c_str(),
                  rs->GetString(1).value_or("?").c_str());
    }
  }

  rs = stmt.ExecuteQuery(StrFormat(
      "SELECT fullname, ST_Distance(geom, %s) AS d FROM pointlm "
      "WHERE mtfcc = 'K1231' ORDER BY ST_Distance(geom, %s) LIMIT 3",
      site.c_str(), site.c_str()));
  if (rs.ok()) {
    std::printf("\nclosest hospitals:\n");
    while (rs->Next()) {
      std::printf("  %-28s %.3f away\n",
                  rs->GetString(0).value_or("?").c_str(),
                  rs->GetDouble(1).value_or(-1));
    }
  }

  rs = stmt.ExecuteQuery(StrFormat(
      "SELECT SUM(ST_Length(ST_Intersection(geom, ST_Buffer(%s, %.4f)))) "
      "FROM edges WHERE ST_DWithin(geom, %s, %.4f)",
      site.c_str(), radius, site.c_str(), radius));
  if (rs.ok() && rs->Next() && !rs->IsNull(0)) {
    std::printf("\nroad mileage to close: %.3f units\n",
                rs->GetDouble(0).value_or(0));
  } else {
    std::printf("\nroad mileage to close: none\n");
  }
  return 0;
}
