// The full Jackpine benchmark as a command-line tool: loads the dataset into
// every SUT and runs the micro suites and macro scenarios, printing the
// paper-style comparison tables.
//
//   ./build/examples/benchmark_runner [--scale S] [--seed N] [--reps R]
//                                     [--suts a,b,c] [--deadline SECONDS]
//                                     [--chaos seed,rate,latency_ms]
//                                     [--throughput-clients N]
//                                     [--throughput-rounds R] [--no-load]
//                                     [--overload-clients N]
//                                     [--overload-rounds R]
//                                     [--retry-budget TOKENS]
//                                     [--json PATH] [--trace-out PATH]
//
// --suts entries are either local SUT names (pine-rtree, ...) or remote
// endpoints of a running pinedb server (tcp://host:port/sut); remote entries
// drive the whole benchmark through the wire protocol, the true
// client/server round-trip the paper measured over JDBC. --deadline bounds
// every query attempt; --chaos wraps each SUT (local or remote) in the
// fault-injecting driver. --throughput-clients N adds a concurrent
// throughput run (N client threads, --throughput-rounds passes over the
// topological suite) after the micro/macro suites. --no-load skips dataset
// loading for servers started with `pinedb serve --preload`.
//
// --overload-clients N runs the overload benchmark: N saturating client
// threads hammer the topological suite for --overload-rounds passes and the
// report shows goodput, shed rate and tail latency — point it at a pinedb
// server with a small --max-sessions to watch graceful degradation instead
// of collapse. --retry-budget T (0 = unlimited) caps the run's aggregate
// retries with a shared token bucket: each retry spends a token, each
// success earns back a tenth, so retry traffic cannot amplify an overload.
//
// --overload-skew zipf:S reshapes the overload mix: query slots are drawn
// from a seeded Zipf(S) distribution over the workload (slot 0 hottest)
// instead of round-robin — the repeat-heavy traffic shape under which a
// result cache earns its keep. Draws are deterministic per client, so two
// runs against differently configured servers issue identical sequences.
//
// --cache-overload runs the paired experiment: the same skewed overload mix
// (so --overload-skew is required) drives a fresh in-process pinedb server
// (--shard-sut picks the engine) once with the result cache on and once
// with --cache-off, over the wire. The report compares goodput and p95,
// prints the cache-on server's hit/coalesce counters, and fails unless the
// per-slot result checksums of both passes fold to the same digest —
// cached replies must be byte-identical to engine executions.
//
// --overload-only skips the sequential micro/macro suites (the dataset is
// still loaded) and jumps straight to the concurrent overload run. Against
// a cache-enabled pinedb server this keeps every query cold until the
// saturating clients arrive together, which is what makes request
// coalescing observable in the server's cache.coalesced counter.
//
// --json PATH additionally writes the whole run — every per-query timing,
// trace, scenario and overload result — as a schema_version-1 JSON document
// (see DESIGN.md "Observability"), the machine-readable companion to the
// printed tables.
//
// --data-dir DIR attaches durable storage (jackpine::storage, DESIGN.md
// "Durability") to every *local* SUT, each in its own DIR/<sut> subdirectory:
// startup recovers whatever the directory holds, the bulk load is folded
// into a checkpoint, DML during the run goes through the WAL, and the report
// gains a durability section (wal_bytes, wal_appends, wal_fsyncs,
// checkpoints, recovery_ms). Remote SUTs manage their own durability via
// `pinedb serve --data-dir`.
//
// --trace-out PATH turns on span tracing and writes the merged client+server
// timeline as Chrome trace-event JSON — open it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Against a remote SUT the
// server-side spans arrive over the wire and are clock-offset-corrected
// onto the client timeline (DESIGN.md "Observability").
//
// --shard-replicas R gives every shard of a --shard-scaling or
// --shard-degraded cluster R replicas (R in-process servers per slot,
// joined with '|' in the router URL).
//
// --shard-degraded runs the high-availability experiment: a 2-shard cluster
// with --shard-replicas (>= 2) replicas each runs the topological suite and
// an overload round healthy, then one replica is shut down *while the
// degraded overload round is in flight* and the suite repeats against the
// crippled cluster. The run fails unless every degraded query succeeded and
// the folded suite checksum is bit-identical to the healthy baseline; the
// report (table, --json, and a one-line `shard HA:` summary for CI greps)
// records healthy vs degraded goodput/p95 plus the failover/hedge/stale
// counters. See DESIGN.md § Sharding, "High availability".
//
// --metrics-port P starts the embedded HTTP telemetry endpoint (DESIGN.md
// "Observability") on 127.0.0.1:P (0 = ephemeral; the bound port is printed
// as `METRICS <port>`): GET /metrics exposes the harness process registry —
// including the shard router's shard.* / ha counters when a shard(...) SUT
// or experiment is running — in Prometheus text format, /statements the
// harness-side fingerprint statistics as JSON, /healthz liveness.
//
// Every measured execution also feeds a harness-side fingerprint statistics
// table (the client's view of pg_stat_statements, same normalized-SQL
// identity as a server's /statements endpoint): the report prints the top
// --statements-top rows and --json carries them in the additive
// "statements" section.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/report.h"
#include "core/runner.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "obs/http_exposition.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/statements.h"
#include "shard/shard_router.h"
#include "storage/storage.h"

using namespace jackpine;  // example code; the library itself never does this

namespace {

// --suts split that respects parentheses, so a shard(ep1,ep2,...)/sut entry
// survives with its internal commas intact.
std::vector<std::string> SplitSutList(std::string_view list) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == '(') ++depth;
    if (list[i] == ')') --depth;
    if (list[i] == ',' && depth == 0) {
      out.emplace_back(list.substr(start, i - start));
      start = i + 1;
    }
  }
  out.emplace_back(list.substr(start));
  return out;
}

// Folds per-query checksums into one order-sensitive digest (the suite's
// query order is fixed, so equal digests mean every query agreed).
uint64_t FoldChecksums(const std::vector<core::RunResult>& runs) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const core::RunResult& r : runs) {
    h = (h ^ r.checksum) * 1099511628211ull;
  }
  return h;
}

// The shard-scaling experiment: for each N, start N in-process pinedb
// servers hosting `sut`, drive load + the topological suite through one
// jackpine:shard(...) router URL, and record suite time plus the folded
// result checksum. The first N is the baseline every later row's speedup
// and checksum verdict compare against.
Result<std::vector<core::ShardScalingResult>> RunShardScaling(
    const std::vector<int>& shard_counts, const std::string& sut,
    int replicas, const tigergen::TigerDataset& dataset,
    const core::RunConfig& config, int throughput_clients,
    int throughput_rounds, const std::string& data_dir) {
  const auto topo_suite = core::BuildTopologicalSuite(dataset);
  std::vector<core::ShardScalingResult> results;
  for (int n : shard_counts) {
    if (n < 1) return Status::InvalidArgument("--shard-scaling counts must be >= 1");
    std::vector<std::unique_ptr<net::Server>> servers;
    std::vector<std::unique_ptr<storage::StorageManager>> stores;
    std::vector<std::string> slots;
    for (int i = 0; i < n; ++i) {
      std::vector<std::string> group;
      for (int r = 0; r < replicas; ++r) {
        net::ServerOptions sopts;
        sopts.sut = sut;
        JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<net::Server> server,
                                  net::Server::Create(sopts));
        if (!data_dir.empty()) {
          // Per-replica durable directory, so each server recovers its own
          // slice: DIR/shard<N>-<i> (replicas append -r<R>).
          storage::StorageOptions store_opts;
          store_opts.dir =
              r == 0 ? StrFormat("%s/shard%d-%d", data_dir.c_str(), n, i)
                     : StrFormat("%s/shard%d-%d-r%d", data_dir.c_str(), n, i, r);
          std::error_code ec;
          std::filesystem::create_directories(store_opts.dir, ec);
          JACKPINE_ASSIGN_OR_RETURN(
              std::unique_ptr<storage::StorageManager> store,
              storage::StorageManager::Open(store_opts,
                                            &server->connection().database()));
          stores.push_back(std::move(store));
        }
        server->StartServing();
        group.push_back(StrFormat("127.0.0.1:%u", unsigned{server->port()}));
        servers.push_back(std::move(server));
      }
      slots.push_back(Join(group, "|"));
    }
    const std::string url =
        StrFormat("jackpine:shard(%s)/%s", Join(slots, ",").c_str(),
                  sut.c_str());
    JACKPINE_ASSIGN_OR_RETURN(client::Connection conn,
                              client::Connection::Open(url));

    core::ShardScalingResult row;
    row.sut = conn.config().name;
    row.shards = static_cast<size_t>(n);

    JACKPINE_ASSIGN_OR_RETURN(core::LoadTiming load,
                              core::LoadDataset(dataset, &conn));
    row.load_s = load.create_s + load.insert_s + load.index_s;
    for (auto& store : stores) {
      JACKPINE_RETURN_IF_ERROR(store->Checkpoint());
    }

    const std::vector<core::RunResult> runs =
        core::RunSuite(&conn, topo_suite, config);
    for (const core::RunResult& r : runs) {
      if (!r.ok) {
        return Status::Internal(StrFormat("shard-scaling %d: query %s failed: %s",
                                          n, r.query_id.c_str(),
                                          r.error.c_str()));
      }
      row.suite_s += r.timing.total_s;
    }
    row.checksum = FoldChecksums(runs);

    if (throughput_clients > 0) {
      const core::ThroughputResult tp = core::RunConcurrentThroughput(
          &conn, topo_suite, throughput_clients, throughput_rounds, config);
      row.throughput_qps = tp.QueriesPerSecond();
    }

    for (auto& store : stores) {
      JACKPINE_RETURN_IF_ERROR(store->Close());
    }
    for (auto& server : servers) server->Shutdown();
    results.push_back(std::move(row));
  }
  for (core::ShardScalingResult& row : results) {
    row.checksum_match = row.checksum == results.front().checksum;
    row.speedup =
        row.suite_s > 0.0 ? results.front().suite_s / row.suite_s : 1.0;
  }
  return results;
}

uint64_t HaCounter(const char* name) {
  return obs::GlobalRegistry().GetCounter(name)->value();
}

// The degraded-mode HA experiment (--shard-degraded): healthy baseline
// (suite checksums + overload goodput), then one replica dies mid-overload
// and both measurements repeat. health_ms=0 keeps the run deterministic —
// with probing off the router cannot steer reads away before the kill is
// observed, so the first post-kill read on the crippled shard *must* fail
// over (shard.failover provably moves); hedge_ms=0 arms hedging so the
// hedge counters are exercised and reported. Caveat for reading the
// numbers: the servers are in-process and share one machine, so killing a
// replica also frees its CPU — degraded goodput can *exceed* healthy here,
// unlike a real fleet. The load-bearing signals are the checksum verdict
// and the failover/hedge counters; the goodput pair becomes meaningful
// when the endpoints are real remote servers.
Result<core::DegradedRunResult> RunShardDegraded(
    const std::string& sut, int shards, int replicas,
    const tigergen::TigerDataset& dataset, const core::RunConfig& config,
    int overload_clients, int overload_rounds) {
  if (shards < 1 || replicas < 2) {
    return Status::InvalidArgument(
        "--shard-degraded needs >= 1 shard and --shard-replicas >= 2 "
        "(killing the only copy of a slice cannot degrade gracefully)");
  }
  const auto topo_suite = core::BuildTopologicalSuite(dataset);
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<std::string> slots;
  for (int i = 0; i < shards; ++i) {
    std::vector<std::string> group;
    for (int r = 0; r < replicas; ++r) {
      net::ServerOptions sopts;
      sopts.sut = sut;
      JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<net::Server> server,
                                net::Server::Create(sopts));
      server->StartServing();
      group.push_back(StrFormat("127.0.0.1:%u", unsigned{server->port()}));
      servers.push_back(std::move(server));
    }
    slots.push_back(Join(group, "|"));
  }
  const std::string url =
      StrFormat("jackpine:shard(%s;health_ms=0;hedge_ms=0)/%s",
                Join(slots, ",").c_str(), sut.c_str());
  JACKPINE_ASSIGN_OR_RETURN(client::Connection conn,
                            client::Connection::Open(url));

  core::DegradedRunResult row;
  row.sut = conn.config().name;
  row.shards = static_cast<size_t>(shards);
  row.replicas = static_cast<size_t>(replicas);

  const uint64_t failover0 = HaCounter("shard.failover");
  const uint64_t hedges0 = HaCounter("shard.hedges");
  const uint64_t hedge_wins0 = HaCounter("shard.hedge_wins");
  const uint64_t stale0 = HaCounter("shard.replica_stale");

  JACKPINE_RETURN_IF_ERROR(core::LoadDataset(dataset, &conn).status());

  const std::vector<core::RunResult> healthy_runs =
      core::RunSuite(&conn, topo_suite, config);
  for (const core::RunResult& r : healthy_runs) {
    if (!r.ok) {
      return Status::Internal(StrFormat("healthy run: query %s failed: %s",
                                        r.query_id.c_str(), r.error.c_str()));
    }
  }
  row.healthy_checksum = FoldChecksums(healthy_runs);

  // One unmeasured round first: the healthy baseline must not eat the cold
  // caches (server-side plans, session dials) that the degraded round —
  // running second — would otherwise get for free.
  (void)core::RunOverload(&conn, topo_suite, overload_clients, 1, config);
  const core::OverloadResult healthy_ov = core::RunOverload(
      &conn, topo_suite, overload_clients, overload_rounds, config);
  row.healthy_goodput_qps = healthy_ov.GoodputQps();
  row.healthy_p95_ms = healthy_ov.latency.p95_s * 1e3;

  // Kill the primary replica of shard 0 while the degraded overload round
  // is in flight: with probing off the URL order stands, so every shard-0
  // read from here on must fail over to the sibling.
  row.killed_endpoint = Split(slots[0], '|')[0];
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    servers[0]->Shutdown();
  });
  const core::OverloadResult degraded_ov = core::RunOverload(
      &conn, topo_suite, overload_clients, overload_rounds, config);
  killer.join();
  row.degraded_goodput_qps = degraded_ov.GoodputQps();
  row.degraded_p95_ms = degraded_ov.latency.p95_s * 1e3;

  // The fully-degraded suite: every query must still succeed (failover is
  // transparent) and fold to the healthy checksum bit-for-bit.
  const std::vector<core::RunResult> degraded_runs =
      core::RunSuite(&conn, topo_suite, config);
  for (const core::RunResult& r : degraded_runs) {
    if (!r.ok) {
      return Status::Internal(StrFormat("degraded run: query %s failed: %s",
                                        r.query_id.c_str(), r.error.c_str()));
    }
  }
  row.degraded_checksum = FoldChecksums(degraded_runs);
  row.checksum_match = row.degraded_checksum == row.healthy_checksum;

  row.failovers = HaCounter("shard.failover") - failover0;
  row.hedges = HaCounter("shard.hedges") - hedges0;
  row.hedge_wins = HaCounter("shard.hedge_wins") - hedge_wins0;
  row.replicas_stale = HaCounter("shard.replica_stale") - stale0;

  for (auto& server : servers) server->Shutdown();
  return row;
}

// The cache on/off overload experiment (--cache-overload): the same seeded
// Zipf-skewed overload run is driven twice against a fresh in-process pinedb
// server hosting `sut` — once with the result cache on, once with
// --cache-off — over the wire protocol, so the measurement includes the
// full client/server round-trip the cache short-circuits. Because every
// client draws its query sequence from its own seeded skew stream advanced
// once per slot (core::RunConfig::overload_zipf_s), both passes issue
// bit-identical workloads; the per-slot first-seen checksums must therefore
// fold to the same digest, proving cached replies byte-equivalent to engine
// executions. The cache counters come from the cache-on server's own
// ResultCache tallies (exact, not the process-global registry, which both
// passes would pollute).
Result<core::CacheOverloadResult> RunCacheOverload(
    const std::string& sut, const tigergen::TigerDataset& dataset,
    const core::RunConfig& config, int clients, int rounds) {
  if (config.overload_zipf_s <= 0.0) {
    return Status::InvalidArgument(
        "--cache-overload needs --overload-skew zipf:S (a uniform round-robin "
        "mix understates repeat traffic and the comparison is uninteresting)");
  }
  const auto topo_suite = core::BuildTopologicalSuite(dataset);
  core::CacheOverloadResult row;
  row.clients = clients;
  row.rounds = rounds;
  row.zipf_s = config.overload_zipf_s;
  for (const bool cache_on : {true, false}) {
    net::ServerOptions sopts;
    sopts.sut = sut;
    sopts.cache_off = !cache_on;
    JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<net::Server> server,
                              net::Server::Create(sopts));
    server->StartServing();
    const std::string url = StrFormat("jackpine:tcp://127.0.0.1:%u/%s",
                                      unsigned{server->port()}, sut.c_str());
    JACKPINE_ASSIGN_OR_RETURN(client::Connection conn,
                              client::Connection::Open(url));
    if (cache_on) row.sut = conn.config().name;
    JACKPINE_RETURN_IF_ERROR(core::LoadDataset(dataset, &conn).status());
    // One unmeasured round eats the cold costs both passes share (plans,
    // session dials); for the cache-on pass it also pre-warms the cache the
    // way sustained map-tile traffic would. The warm round replays the same
    // seeded draws as measured round 1, so warming is itself deterministic.
    (void)core::RunOverload(&conn, topo_suite, clients, 1, config);
    const core::OverloadResult ov =
        core::RunOverload(&conn, topo_suite, clients, rounds, config);
    if (ov.failures > 0 || ov.checksum_mismatches > 0) {
      return Status::Internal(StrFormat(
          "cache-overload (cache %s): %zu failures, %llu checksum mismatches "
          "— the on/off comparison needs every slot served",
          cache_on ? "on" : "off", ov.failures,
          static_cast<unsigned long long>(ov.checksum_mismatches)));
    }
    if (cache_on) {
      row.on_goodput_qps = ov.GoodputQps();
      row.on_p95_ms = ov.latency.p95_s * 1e3;
      row.on_checksum = ov.FoldedChecksum();
      const cache::CacheStats cs = server->query_cache()->stats();
      row.hits = cs.hits;
      row.misses = cs.misses;
      row.admissions = cs.admissions;
      row.rejections = cs.rejections;
      row.evictions = cs.evictions;
      row.invalidations = cs.invalidations;
      row.coalesced = cs.coalesced;
      row.bytes = cs.bytes;
      row.hit_rate = cs.HitRate();
    } else {
      row.off_goodput_qps = ov.GoodputQps();
      row.off_p95_ms = ov.latency.p95_s * 1e3;
      row.off_checksum = ov.FoldedChecksum();
    }
    server->Shutdown();
  }
  row.checksum_match = row.on_checksum == row.off_checksum;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  net::RegisterRemoteDriver();
  shard::RegisterShardDriver();

  double scale = 0.5;
  uint64_t seed = 42;
  core::RunConfig config;
  std::string chaos_spec;
  int throughput_clients = 0;
  int throughput_rounds = 3;
  int overload_clients = 0;
  int overload_rounds = 3;
  double retry_budget = 0.0;
  bool no_load = false;
  std::string json_path;
  std::string trace_path;
  std::string data_dir;
  std::vector<int> shard_scaling;
  std::string shard_sut = "pine-rtree";
  int shard_replicas = 1;
  bool shard_degraded = false;
  bool cache_overload = false;
  bool overload_only = false;
  int metrics_port = -1;       // -1 = telemetry endpoint disabled
  size_t statements_top = 20;  // rows in the statement-statistics table
  std::vector<std::string> sut_names = {"pine-rtree", "pine-mbr", "pine-grid",
                                        "pine-scan"};
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      config.repetitions = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--suts") && i + 1 < argc) {
      sut_names = SplitSutList(argv[++i]);
    } else if (!std::strcmp(argv[i], "--deadline") && i + 1 < argc) {
      config.limits.deadline_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--chaos") && i + 1 < argc) {
      chaos_spec = argv[++i];
    } else if (!std::strcmp(argv[i], "--throughput-clients") && i + 1 < argc) {
      throughput_clients = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--throughput-rounds") && i + 1 < argc) {
      throughput_rounds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--overload-clients") && i + 1 < argc) {
      overload_clients = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--overload-rounds") && i + 1 < argc) {
      overload_rounds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--overload-skew") && i + 1 < argc) {
      const std::string spec = argv[++i];
      if (spec.rfind("zipf:", 0) != 0 ||
          std::atof(spec.c_str() + 5) <= 0.0) {
        std::fprintf(stderr,
                     "--overload-skew wants zipf:S with S > 0 (got '%s')\n",
                     spec.c_str());
        return 2;
      }
      config.overload_zipf_s = std::atof(spec.c_str() + 5);
    } else if (!std::strcmp(argv[i], "--cache-overload")) {
      cache_overload = true;
    } else if (!std::strcmp(argv[i], "--overload-only")) {
      overload_only = true;
    } else if (!std::strcmp(argv[i], "--retry-budget") && i + 1 < argc) {
      retry_budget = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-load")) {
      no_load = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--data-dir") && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--shard-scaling") && i + 1 < argc) {
      for (const std::string& c : Split(argv[++i], ',')) {
        shard_scaling.push_back(std::atoi(c.c_str()));
      }
    } else if (!std::strcmp(argv[i], "--shard-sut") && i + 1 < argc) {
      shard_sut = argv[++i];
    } else if (!std::strcmp(argv[i], "--shard-replicas") && i + 1 < argc) {
      shard_replicas = std::atoi(argv[++i]);
      if (shard_replicas < 1) {
        std::fprintf(stderr, "--shard-replicas must be >= 1\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--shard-degraded")) {
      shard_degraded = true;
    } else if (!std::strcmp(argv[i], "--metrics-port") && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
      if (metrics_port < 0 || metrics_port > 65535) {
        std::fprintf(stderr, "--metrics-port must be 0..65535\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--statements-top") && i + 1 < argc) {
      statements_top = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--reps R] [--suts a,b] "
                   "[--deadline SEC] [--chaos seed,rate,latency_ms] "
                   "[--throughput-clients N] [--throughput-rounds R] "
                   "[--overload-clients N] [--overload-rounds R] "
                   "[--overload-skew zipf:S] [--cache-overload] "
                   "[--overload-only] "
                   "[--retry-budget TOKENS] [--no-load] [--json PATH] "
                   "[--trace-out PATH] [--data-dir DIR] "
                   "[--shard-scaling N1,N2,...] [--shard-sut NAME] "
                   "[--shard-replicas R] [--shard-degraded] "
                   "[--metrics-port P] [--statements-top K]\n"
                   "  --suts entries: local SUT names, tcp://host:port/sut, "
                   "or shard(host:port,...)/sut cluster routers\n"
                   "  --shard-scaling: run the topological suite through an "
                   "in-process N-shard cluster per N and print the scaling "
                   "table\n"
                   "  --shard-degraded: kill one replica of a replicated "
                   "2-shard cluster mid-run and compare degraded goodput, "
                   "p95 and suite checksums against the healthy baseline\n"
                   "  --overload-skew zipf:S: draw overload query slots from "
                   "a seeded Zipf(S) distribution instead of round-robin\n"
                   "  --cache-overload: run the skewed overload mix against "
                   "an in-process pinedb server with the result cache on and "
                   "again with --cache-off, compare goodput/p95 and verify "
                   "per-slot checksums match (needs --overload-skew)\n"
                   "  --overload-only: skip the sequential micro/macro "
                   "suites so the concurrent overload clients are the first "
                   "to touch every query (cold server-side caches)\n"
                   "  --metrics-port P: serve GET /metrics /statements "
                   "/healthz over HTTP on 127.0.0.1:P (0 = ephemeral, "
                   "printed as 'METRICS <port>')\n"
                   "  --statements-top K: rows in the per-fingerprint "
                   "statement-statistics table and JSON section (0 = all)\n",
                   argv[0]);
      return 2;
    }
  }

  if (!trace_path.empty()) {
    // Enable before any connection opens so client.connect spans and the
    // Hello trace negotiation (against remote SUTs) are captured too.
    obs::GlobalSpanRecorder().set_enabled(true);
    config.limits.spans = &obs::GlobalSpanRecorder();
  }

  if (overload_only && overload_clients <= 0) {
    std::fprintf(stderr, "--overload-only needs --overload-clients N\n");
    return 2;
  }

  // Harness-side fingerprint statistics: every measured execution of every
  // mode below (suite reps, throughput, overload slots — experiments
  // included, since they run through the same RunConfig) records here under
  // the shared normalized-SQL identity. The meta-counters land in the
  // process registry so /metrics shows jackpine_statements_* moving.
  obs::StatementStats::Options stats_options;
  stats_options.registry = &obs::GlobalRegistry();
  obs::StatementStats statement_stats(stats_options);
  config.statement_stats = &statement_stats;

  // The embedded telemetry endpoint over the *process* registry: against a
  // shard(...) SUT this is where the router's shard.* and HA counters are
  // scraped from, the same exposition a pinedb server serves.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (metrics_port >= 0) {
    obs::TelemetryServer::Options topt;
    topt.port = static_cast<uint16_t>(metrics_port);
    auto created = obs::TelemetryServer::Create(topt);
    if (!created.ok()) {
      std::fprintf(stderr, "telemetry endpoint: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    telemetry = std::move(created).value();
    telemetry->Handle("/metrics", [] {
      obs::HttpResponse resp;
      resp.content_type = obs::kPromContentType;
      resp.body = obs::RenderPromPreamble();
      resp.body +=
          obs::GlobalRegistry().RenderProm("jackpine_", /*build_info=*/false);
      return resp;
    });
    telemetry->Handle("/statements", [stats = &statement_stats] {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = stats->ToJson(0).Dump();
      return resp;
    });
    telemetry->StartServing();
    // Machine-parseable, like the server's LISTENING line: CI and wrapper
    // scripts read the bound port from here when --metrics-port 0.
    std::printf("METRICS %u\n", telemetry->port());
    std::fflush(stdout);
  }

  tigergen::TigerGenOptions gen;
  gen.seed = seed;
  gen.scale = scale;
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  std::printf("dataset: scale %.2f -> %zu rows (%zu edges, %zu counties)\n\n",
              scale, dataset.TotalRows(), dataset.edges.size(),
              dataset.counties.size());

  if (cache_overload) {
    const int clients = overload_clients > 0 ? overload_clients : 8;
    auto result = RunCacheOverload(shard_sut, dataset, config, clients,
                                   overload_rounds);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                core::RenderCacheOverloadTable(
                    StrFormat("E8: result cache under overload (%s, "
                              "zipf %.2f)",
                              shard_sut.c_str(), config.overload_zipf_s),
                    {*result})
                    .c_str());
    // One grep-able line for the CI cache smoke step.
    std::printf("cache overload: hits=%llu coalesced=%llu hit_rate=%.3f "
                "speedup=%.2f checksum_match=%d\n",
                static_cast<unsigned long long>(result->hits),
                static_cast<unsigned long long>(result->coalesced),
                result->hit_rate,
                result->off_goodput_qps > 0.0
                    ? result->on_goodput_qps / result->off_goodput_qps
                    : 0.0,
                result->checksum_match ? 1 : 0);
    if (!json_path.empty()) {
      core::JsonReportInput report;
      report.title = StrFormat(
          "jackpine result cache under overload (scale %.2f, seed %llu, %s)",
          scale, static_cast<unsigned long long>(seed), shard_sut.c_str());
      report.cache.push_back(*result);
      report.statements = statement_stats.TopK(statements_top);
      const std::string doc = core::RenderJsonReport(report);
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    if (!result->checksum_match) {
      std::fprintf(stderr,
                   "cache overload: cached replies diverged from engine "
                   "executions (checksum mismatch)\n");
      return 1;
    }
    return 0;
  }

  if (shard_degraded) {
    const int replicas = std::max(shard_replicas, 2);
    const int shards = shard_scaling.empty() ? 2 : shard_scaling.front();
    const int clients = overload_clients > 0 ? overload_clients : 4;
    auto result = RunShardDegraded(shard_sut, shards, replicas, dataset,
                                   config, clients, overload_rounds);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                core::RenderDegradedTable(
                    StrFormat("E7: degraded-mode goodput (%s, kill one "
                              "replica mid-run)",
                              shard_sut.c_str()),
                    {*result})
                    .c_str());
    // One grep-able line for the CI kill-a-shard smoke step.
    std::printf("shard HA: failover=%llu hedges=%llu hedge_wins=%llu "
                "stale=%llu\n",
                static_cast<unsigned long long>(result->failovers),
                static_cast<unsigned long long>(result->hedges),
                static_cast<unsigned long long>(result->hedge_wins),
                static_cast<unsigned long long>(result->replicas_stale));
    if (!json_path.empty()) {
      core::JsonReportInput report;
      report.title =
          StrFormat("jackpine degraded-mode goodput (scale %.2f, seed %llu, "
                    "%s)",
                    scale, static_cast<unsigned long long>(seed),
                    shard_sut.c_str());
      report.degraded.push_back(*result);
      report.statements = statement_stats.TopK(statements_top);
      const std::string doc = core::RenderJsonReport(report);
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    if (!result->checksum_match) {
      std::fprintf(stderr,
                   "shard degraded: checksum mismatch vs healthy baseline\n");
      return 1;
    }
    return 0;
  }

  if (!shard_scaling.empty()) {
    auto results =
        RunShardScaling(shard_scaling, shard_sut, shard_replicas, dataset,
                        config, throughput_clients, throughput_rounds,
                        data_dir);
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                core::RenderShardScalingTable(
                    StrFormat("E6: shard scaling (%s, topological suite)",
                              shard_sut.c_str()),
                    *results)
                    .c_str());
    bool all_match = true;
    for (const core::ShardScalingResult& r : *results) {
      all_match = all_match && r.checksum_match;
    }
    if (!json_path.empty()) {
      core::JsonReportInput report;
      report.title =
          StrFormat("jackpine shard scaling (scale %.2f, seed %llu, %s)",
                    scale, static_cast<unsigned long long>(seed),
                    shard_sut.c_str());
      report.shard_scaling = std::move(*results);
      report.statements = statement_stats.TopK(statements_top);
      const std::string doc = core::RenderJsonReport(report);
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    if (!all_match) {
      std::fprintf(stderr, "shard scaling: checksum mismatch vs baseline\n");
      return 1;
    }
    return 0;
  }

  const auto topo_suite = core::BuildTopologicalSuite(dataset);
  const auto analysis_suite = core::BuildAnalysisSuite(dataset);
  const auto scenarios = core::BuildScenarios(dataset, seed);

  std::vector<std::vector<core::RunResult>> topo_by_sut, analysis_by_sut;
  std::vector<std::vector<core::ScenarioResult>> scenarios_by_sut;
  std::vector<core::ThroughputResult> throughput_by_sut;
  std::vector<core::OverloadResult> overload_by_sut;
  std::vector<core::DurabilityResult> durability_by_sut;

  for (const std::string& name : sut_names) {
    // A fresh bucket per SUT run, shared by all of that SUT's client
    // threads, so one SUT's retry storm cannot starve the next one's run.
    if (retry_budget > 0.0) {
      config.retry.budget = std::make_shared<core::RetryBudget>(
          retry_budget, retry_budget, 0.1);
    }
    std::string url = "jackpine:" + name;
    if (!chaos_spec.empty()) {
      url = "jackpine:chaos(" + chaos_spec + "):" + name;
    }
    auto conn_or = client::Connection::Open(url);
    if (!conn_or.ok()) {
      std::fprintf(stderr, "%s\n", conn_or.status().ToString().c_str());
      return 1;
    }
    client::Connection conn = std::move(conn_or).value();

    bool skip_load = no_load;
    std::unique_ptr<storage::StorageManager> store;
    if (!data_dir.empty() && conn.is_local()) {
      std::error_code ec;
      std::filesystem::create_directories(data_dir, ec);
      storage::StorageOptions sopts;
      sopts.dir = data_dir + "/" + name;
      auto opened = storage::StorageManager::Open(sopts, &conn.database());
      if (!opened.ok()) {
        std::fprintf(stderr, "storage recovery for %s failed: %s\n",
                     name.c_str(), opened.status().ToString().c_str());
        return 1;
      }
      store = std::move(opened).value();
      const storage::RecoveryInfo& r = store->recovery_info();
      if (r.snapshot_rows > 0 || r.wal_records_applied > 0) {
        std::printf("recovered %s in %.2fms (%llu snapshot rows, %llu WAL "
                    "records); skipping dataset load\n",
                    sopts.dir.c_str(), r.recovery_s * 1e3,
                    static_cast<unsigned long long>(r.snapshot_rows),
                    static_cast<unsigned long long>(r.wal_records_applied));
        skip_load = true;  // the directory already holds the dataset
      }
    }

    if (!skip_load) {
      auto load = core::LoadDataset(dataset, &conn);
      if (!load.ok()) {
        std::fprintf(stderr, "load into %s failed: %s\n", name.c_str(),
                     load.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded %s: insert %.1fms, index %.1fms\n", name.c_str(),
                  load->insert_s * 1e3, load->index_s * 1e3);
      if (store != nullptr) {
        // The bulk loader runs below the WAL seam; fold the loaded dataset
        // into a checkpoint so the directory is durable before measuring.
        if (auto ckpt = store->Checkpoint(); !ckpt.ok()) {
          std::fprintf(stderr, "post-load checkpoint for %s failed: %s\n",
                       name.c_str(), ckpt.ToString().c_str());
          return 1;
        }
      }
    }

    if (overload_only) {
      // Cold-path mode for the overload harness: skip the sequential
      // micro/macro suites so the concurrent clients below are the first
      // to touch every query (a warmed server-side result cache would
      // otherwise leave nothing in flight to coalesce).
      topo_by_sut.emplace_back();
      analysis_by_sut.emplace_back();
      scenarios_by_sut.emplace_back();
    } else {
      topo_by_sut.push_back(core::RunSuite(&conn, topo_suite, config));
      analysis_by_sut.push_back(
          core::RunSuite(&conn, analysis_suite, config));
      std::vector<core::ScenarioResult> scenario_results;
      for (const core::Scenario& s : scenarios) {
        scenario_results.push_back(core::RunScenario(&conn, s, config));
      }
      scenarios_by_sut.push_back(std::move(scenario_results));
    }

    if (throughput_clients > 0) {
      core::ThroughputResult tp = core::RunConcurrentThroughput(
          &conn, topo_suite, throughput_clients, throughput_rounds, config);
      tp.sut = name;
      throughput_by_sut.push_back(std::move(tp));
    }

    if (overload_clients > 0) {
      core::OverloadResult ov = core::RunOverload(
          &conn, topo_suite, overload_clients, overload_rounds, config);
      ov.sut = name;
      overload_by_sut.push_back(std::move(ov));
    }

    if (store != nullptr) {
      core::DurabilityResult d;
      d.sut = name;
      d.wal_bytes = store->wal_bytes();
      d.wal_appends = store->wal_appends();
      d.wal_fsyncs = store->wal_fsyncs();
      d.checkpoints = store->checkpoints();
      d.recovery_s = store->recovery_info().recovery_s;
      durability_by_sut.push_back(std::move(d));
      if (auto closed = store->Close(); !closed.ok()) {
        std::fprintf(stderr, "final checkpoint for %s failed: %s\n",
                     name.c_str(), closed.ToString().c_str());
        return 1;
      }
    }
  }

  if (!overload_only) {
    std::printf("\n%s\n",
                core::RenderComparisonTable(
                    "E1: DE-9IM topological micro benchmark", topo_by_sut)
                    .c_str());
    std::printf("%s\n", core::RenderComparisonTable(
                            "E2: spatial analysis micro benchmark",
                            analysis_by_sut)
                            .c_str());
    std::printf("%s\n", core::RenderScenarioTable("E3: macro scenarios",
                                                  scenarios_by_sut)
                            .c_str());
  }
  if (!throughput_by_sut.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (const core::ThroughputResult& tp : throughput_by_sut) {
      rows.emplace_back(
          tp.sut,
          StrFormat("%.0f q/s (%zu ok, %zu err, %zu timeouts, %.2fs wall)",
                    tp.QueriesPerSecond(), tp.queries_executed, tp.errors,
                    tp.timeouts, tp.elapsed_s));
    }
    std::printf("%s\n",
                core::RenderKeyValueTable(
                    StrFormat("E4: concurrent throughput (%d clients, "
                              "%d rounds of the topological suite)",
                              throughput_clients, throughput_rounds),
                    rows)
                    .c_str());
  }
  // Per-SUT fault breakdown over every micro query that ran: all zeros on a
  // clean run, and the place to look when --deadline or --chaos is active.
  std::vector<std::vector<core::RunResult>> all_runs_by_sut;
  for (size_t i = 0; i < topo_by_sut.size(); ++i) {
    std::vector<core::RunResult> merged = topo_by_sut[i];
    merged.insert(merged.end(), analysis_by_sut[i].begin(),
                  analysis_by_sut[i].end());
    all_runs_by_sut.push_back(std::move(merged));
  }
  std::printf("%s\n", core::RenderErrorTaxonomyTable("error taxonomy",
                                                     all_runs_by_sut)
                          .c_str());
  // Per-SUT execution-stage breakdown: where the time goes and how selective
  // the filter-and-refine pipeline was, per query category.
  for (const auto& runs : all_runs_by_sut) {
    if (runs.empty()) continue;
    std::printf("%s\n",
                core::RenderStageBreakdownTable(
                    StrFormat("stage breakdown: %s", runs.front().sut.c_str()),
                    runs)
                    .c_str());
  }
  if (!overload_by_sut.empty()) {
    std::printf("%s\n",
                core::RenderOverloadTable(
                    StrFormat("E5: overload benchmark (%d clients, %d rounds "
                              "of the topological suite)",
                              overload_clients, overload_rounds),
                    overload_by_sut)
                    .c_str());
  }
  // The harness-side pg_stat_statements view: which statement shapes the
  // whole run issued, how often, and at what latency — same fingerprint
  // identity as a pinedb server's /statements endpoint, so the two tables
  // cross-check row for row.
  {
    const std::vector<obs::StatementStats::Row> statement_rows =
        statement_stats.Snapshot();
    if (!statement_rows.empty()) {
      std::printf("%s\n", core::RenderStatementsTable(
                              "statement statistics (all SUTs, measured "
                              "executions)",
                              statement_rows, statements_top)
                              .c_str());
    }
  }
  if (!durability_by_sut.empty()) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (const core::DurabilityResult& d : durability_by_sut) {
      rows.emplace_back(
          d.sut,
          StrFormat("wal %llu B, %llu appends, %llu fsyncs, %llu "
                    "checkpoints, recovery %.2fms",
                    static_cast<unsigned long long>(d.wal_bytes),
                    static_cast<unsigned long long>(d.wal_appends),
                    static_cast<unsigned long long>(d.wal_fsyncs),
                    static_cast<unsigned long long>(d.checkpoints),
                    d.recovery_s * 1e3));
    }
    std::printf("%s\n", core::RenderKeyValueTable(
                            StrFormat("durability (--data-dir %s)",
                                      data_dir.c_str()),
                            rows)
                            .c_str());
  }
  if (!json_path.empty()) {
    core::JsonReportInput report;
    report.title = StrFormat("jackpine benchmark (scale %.2f, seed %llu)",
                             scale, static_cast<unsigned long long>(seed));
    report.runs_by_sut = std::move(all_runs_by_sut);
    report.scenarios_by_sut = std::move(scenarios_by_sut);
    report.overloads = std::move(overload_by_sut);
    report.durability = std::move(durability_by_sut);
    report.statements = statement_stats.TopK(statements_top);
    const std::string doc = core::RenderJsonReport(report);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::SpanRecorder& recorder = obs::GlobalSpanRecorder();
    const std::vector<obs::SpanRecord> spans = recorder.Drain();
    const std::string doc = obs::SpansToChromeTrace(spans).Dump(true);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote Chrome trace (%zu spans, %llu dropped) to %s\n",
                spans.size(),
                static_cast<unsigned long long>(recorder.dropped()),
                trace_path.c_str());
  }
  return 0;
}
