// The full Jackpine benchmark as a command-line tool: loads the dataset into
// every SUT and runs the micro suites and macro scenarios, printing the
// paper-style comparison tables.
//
//   ./build/examples/benchmark_runner [--scale S] [--seed N] [--reps R]
//                                     [--suts a,b,c] [--deadline SECONDS]
//                                     [--chaos seed,rate,latency_ms]
//
// --deadline bounds every query attempt; --chaos wraps each SUT in the
// fault-injecting driver. Either one makes the final error-taxonomy table
// interesting.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/report.h"
#include "core/runner.h"

using namespace jackpine;  // example code; the library itself never does this

int main(int argc, char** argv) {
  double scale = 0.5;
  uint64_t seed = 42;
  core::RunConfig config;
  std::string chaos_spec;
  std::vector<std::string> sut_names = {"pine-rtree", "pine-mbr", "pine-grid",
                                        "pine-scan"};
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      config.repetitions = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--suts") && i + 1 < argc) {
      sut_names = Split(argv[++i], ',');
    } else if (!std::strcmp(argv[i], "--deadline") && i + 1 < argc) {
      config.limits.deadline_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--chaos") && i + 1 < argc) {
      chaos_spec = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--seed N] [--reps R] [--suts a,b] "
                   "[--deadline SEC] [--chaos seed,rate,latency_ms]\n",
                   argv[0]);
      return 2;
    }
  }

  tigergen::TigerGenOptions gen;
  gen.seed = seed;
  gen.scale = scale;
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  std::printf("dataset: scale %.2f -> %zu rows (%zu edges, %zu counties)\n\n",
              scale, dataset.TotalRows(), dataset.edges.size(),
              dataset.counties.size());

  const auto topo_suite = core::BuildTopologicalSuite(dataset);
  const auto analysis_suite = core::BuildAnalysisSuite(dataset);
  const auto scenarios = core::BuildScenarios(dataset, seed);

  std::vector<std::vector<core::RunResult>> topo_by_sut, analysis_by_sut;
  std::vector<std::vector<core::ScenarioResult>> scenarios_by_sut;

  for (const std::string& name : sut_names) {
    std::string url = "jackpine:" + name;
    if (!chaos_spec.empty()) {
      url = "jackpine:chaos(" + chaos_spec + "):" + name;
    }
    auto conn_or = client::Connection::Open(url);
    if (!conn_or.ok()) {
      std::fprintf(stderr, "%s\n", conn_or.status().ToString().c_str());
      return 1;
    }
    client::Connection conn = std::move(conn_or).value();
    auto load = core::LoadDataset(dataset, &conn);
    if (!load.ok()) {
      std::fprintf(stderr, "load into %s failed: %s\n", name.c_str(),
                   load.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: insert %.1fms, index %.1fms\n", name.c_str(),
                load->insert_s * 1e3, load->index_s * 1e3);

    topo_by_sut.push_back(core::RunSuite(&conn, topo_suite, config));
    analysis_by_sut.push_back(core::RunSuite(&conn, analysis_suite, config));
    std::vector<core::ScenarioResult> scenario_results;
    for (const core::Scenario& s : scenarios) {
      scenario_results.push_back(core::RunScenario(&conn, s, config));
    }
    scenarios_by_sut.push_back(std::move(scenario_results));
  }

  std::printf("\n%s\n",
              core::RenderComparisonTable(
                  "E1: DE-9IM topological micro benchmark", topo_by_sut)
                  .c_str());
  std::printf("%s\n", core::RenderComparisonTable(
                          "E2: spatial analysis micro benchmark",
                          analysis_by_sut)
                          .c_str());
  std::printf("%s\n", core::RenderScenarioTable("E3: macro scenarios",
                                                scenarios_by_sut)
                          .c_str());
  // Per-SUT fault breakdown over every micro query that ran: all zeros on a
  // clean run, and the place to look when --deadline or --chaos is active.
  std::vector<std::vector<core::RunResult>> all_runs_by_sut;
  for (size_t i = 0; i < topo_by_sut.size(); ++i) {
    std::vector<core::RunResult> merged = topo_by_sut[i];
    merged.insert(merged.end(), analysis_by_sut[i].begin(),
                  analysis_by_sut[i].end());
    all_runs_by_sut.push_back(std::move(merged));
  }
  std::printf("%s\n", core::RenderErrorTaxonomyTable("error taxonomy",
                                                     all_runs_by_sut)
                          .c_str());
  return 0;
}
